"""Schema linking: connect SQL queries and NL text to schema elements.

Two uses inside BenchPress:

* the retrieval step (paper step 4) finds the *relevant tables with all their
  columns* for a SQL query — either by parsing the SQL (sqlglot in the paper,
  our own parser here) or by embedding similarity; both are implemented,
* the simulated text-to-SQL models and the backtranslation step need to map NL
  tokens back onto schema elements.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.schema.model import DatabaseSchema, TableSchema
from repro.sql.analyzer import extract_columns, extract_tables
from repro.sql.ast_nodes import Select
from repro.sql.parser import parse_select


_CAMEL_SPLIT = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")
_NON_ALNUM = re.compile(r"[^a-z0-9]+")


def split_identifier(identifier: str) -> list[str]:
    """Split a SQL identifier into lower-case word tokens.

    Handles snake_case, CamelCase and ALL_CAPS_WITH_UNDERSCORES, which covers
    the naming conventions in both public benchmarks and enterprise warehouses.
    """
    decamel = _CAMEL_SPLIT.sub(" ", identifier)
    return [token for token in _NON_ALNUM.split(decamel.lower()) if token]


@dataclass
class SchemaLink:
    """A single link between a query/NL and a schema element."""

    table: str
    column: str | None = None
    score: float = 1.0
    source: str = "sql"  # "sql" or "text"


@dataclass
class LinkingResult:
    """Result of linking a query (or NL utterance) to a schema."""

    tables: list[str] = field(default_factory=list)
    columns: list[tuple[str, str]] = field(default_factory=list)  # (table, column)
    links: list[SchemaLink] = field(default_factory=list)
    unresolved_tables: list[str] = field(default_factory=list)
    unresolved_columns: list[str] = field(default_factory=list)


def link_sql_to_schema(sql: str | Select, schema: DatabaseSchema) -> LinkingResult:
    """Resolve the tables/columns a SQL query references against a schema.

    Accepts either SQL text or an already-parsed :class:`Select` (linking
    depends only on the AST, so callers that have parsed already can skip
    the re-parse).  Tables that are referenced but absent from the schema end
    up in ``unresolved_tables`` (a signal of schema drift in real logs).
    """
    select = parse_select(sql) if isinstance(sql, str) else sql
    referenced_tables = extract_tables(select)
    referenced_columns = extract_columns(select)

    result = LinkingResult()
    matched_tables: list[TableSchema] = []
    for table_name in referenced_tables:
        if schema.has_table(table_name):
            table = schema.table(table_name)
            matched_tables.append(table)
            result.tables.append(table.name)
            result.links.append(SchemaLink(table=table.name, source="sql"))
        else:
            result.unresolved_tables.append(table_name)

    for column_name in referenced_columns:
        owners = [table for table in matched_tables if table.has_column(column_name)]
        if not owners:
            owners = [table for table in schema.tables if table.has_column(column_name)]
        if owners:
            owner = owners[0]
            result.columns.append((owner.name, owner.column(column_name).name))
            result.links.append(
                SchemaLink(table=owner.name, column=column_name, source="sql")
            )
        else:
            result.unresolved_columns.append(column_name)
    return result


def link_text_to_schema(
    text: str, schema: DatabaseSchema, max_tables: int = 5
) -> LinkingResult:
    """Heuristically link an NL utterance to the schema tables it mentions.

    Scoring: token overlap between the utterance and each table name plus its
    column names, normalised by table vocabulary size.  The top ``max_tables``
    tables (score > 0) are returned, which is what the simulated text-to-SQL
    models and the embedding-free fallback of the retriever use.
    """
    text_tokens = set(split_identifier(text))
    result = LinkingResult()
    scored: list[tuple[float, TableSchema]] = []
    for table in schema.tables:
        vocabulary: set[str] = set(split_identifier(table.name))
        for column in table.columns:
            vocabulary.update(split_identifier(column.name))
        if not vocabulary:
            continue
        overlap = len(text_tokens & vocabulary)
        if overlap == 0:
            continue
        score = overlap / len(vocabulary) + 0.1 * overlap
        scored.append((score, table))

    scored.sort(key=lambda pair: (-pair[0], pair[1].name))
    for score, table in scored[:max_tables]:
        result.tables.append(table.name)
        result.links.append(SchemaLink(table=table.name, score=score, source="text"))
        for column in table.columns:
            column_tokens = set(split_identifier(column.name))
            if column_tokens & text_tokens:
                result.columns.append((table.name, column.name))
                result.links.append(
                    SchemaLink(table=table.name, column=column.name, score=score, source="text")
                )
    return result


def ambiguous_column_names(schema: DatabaseSchema) -> dict[str, list[str]]:
    """Column names that appear in more than one table, with their owners.

    This is the paper's schema-ambiguity signal ("multiple tables with
    identically named columns such as ``user_id``"); BenchPress surfaces prior
    query usage for these columns in the annotation context.
    """
    owners: dict[str, list[str]] = {}
    for table in schema.tables:
        for column in table.columns:
            owners.setdefault(column.name.lower(), []).append(table.name)
    return {name: tables for name, tables in owners.items() if len(tables) > 1}
