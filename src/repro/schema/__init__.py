"""Schema model, DDL ingestion, profiling, and schema linking."""

from repro.schema.ddl_parser import parse_ddl_script
from repro.schema.linking import (
    LinkingResult,
    SchemaLink,
    ambiguous_column_names,
    link_sql_to_schema,
    link_text_to_schema,
    split_identifier,
)
from repro.schema.model import (
    ColumnSchema,
    DatabaseSchema,
    ForeignKey,
    TableSchema,
    schema_from_database,
)
from repro.schema.profiler import (
    DataProfile,
    profile_database,
    profile_schema,
    relative_difference,
)

__all__ = [
    "ColumnSchema",
    "DataProfile",
    "DatabaseSchema",
    "ForeignKey",
    "LinkingResult",
    "SchemaLink",
    "TableSchema",
    "ambiguous_column_names",
    "link_sql_to_schema",
    "link_text_to_schema",
    "parse_ddl_script",
    "profile_database",
    "profile_schema",
    "relative_difference",
    "schema_from_database",
    "split_identifier",
]
