"""Parse DDL scripts into :class:`~repro.schema.model.DatabaseSchema` objects.

Dataset ingestion (paper step 2) accepts schema files as ``CREATE TABLE``
scripts; this module converts them into the logical schema model used by the
rest of the system.  It re-uses the SQL parser rather than implementing a
second grammar.
"""

from __future__ import annotations

from repro.errors import IngestionError
from repro.schema.model import ColumnSchema, DatabaseSchema, ForeignKey, TableSchema
from repro.sql.ast_nodes import CreateTable
from repro.sql.parser import parse_many


def parse_ddl_script(ddl: str, schema_name: str = "uploaded") -> DatabaseSchema:
    """Parse a DDL script (one or more CREATE TABLE statements) into a schema.

    Non-DDL statements in the script are ignored so users can upload mixed
    dumps.  Raises :class:`IngestionError` when the script contains no tables.
    """
    try:
        statements = parse_many(ddl)
    except Exception as exc:
        raise IngestionError(f"could not parse schema DDL: {exc}") from exc

    schema = DatabaseSchema(name=schema_name)
    for statement in statements:
        if isinstance(statement, CreateTable):
            schema.add_table(_table_from_create(statement))
    if not schema.tables:
        raise IngestionError("schema DDL contained no CREATE TABLE statements")
    return schema


def _table_from_create(statement: CreateTable) -> TableSchema:
    pk_columns = {name.lower() for name in statement.primary_key}
    columns: list[ColumnSchema] = []
    foreign_keys: list[ForeignKey] = []

    for column_def in statement.columns:
        columns.append(
            ColumnSchema(
                name=column_def.name,
                type_name=column_def.type_name,
                nullable=not (column_def.not_null or column_def.primary_key),
                primary_key=column_def.primary_key or column_def.name.lower() in pk_columns,
            )
        )
        if column_def.references is not None:
            ref_table, ref_column = column_def.references
            foreign_keys.append(
                ForeignKey(
                    column=column_def.name,
                    referenced_table=ref_table,
                    referenced_column=ref_column or column_def.name,
                )
            )

    for local_columns, ref_table, ref_columns in statement.foreign_keys:
        for index, local_column in enumerate(local_columns):
            referenced = ref_columns[index] if index < len(ref_columns) else local_column
            foreign_keys.append(
                ForeignKey(
                    column=local_column,
                    referenced_table=ref_table,
                    referenced_column=referenced,
                )
            )

    return TableSchema(name=statement.name, columns=columns, foreign_keys=foreign_keys)
