"""Schema and data profiling — the data-level complexity metrics of Table 2.

Given a populated :class:`repro.engine.Database`, the profiler computes:

* ``columns_per_table`` — average number of columns per table,
* ``rows_per_table`` — average number of rows per table,
* ``tables_per_db`` — number of tables in the database,
* ``uniqueness`` — fraction of column *names* that are unique across the
  schema (lower uniqueness means more repeated/ambiguous names, the paper's
  schema-ambiguity signal),
* ``sparsity`` — fraction of NULL cells across all tables,
* ``data_type_diversity`` — number of distinct declared data types.

These six quantities are exactly the columns of the paper's Table 2.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.engine.database import Database
from repro.errors import SchemaError
from repro.schema.model import DatabaseSchema


@dataclass
class DataProfile:
    """Data-level complexity metrics for one database (a row of Table 2)."""

    columns_per_table: float
    rows_per_table: float
    tables_per_db: int
    uniqueness: float
    sparsity: float
    data_type_diversity: int

    def as_dict(self) -> dict[str, float]:
        """Return the profile as a plain dict keyed like the Table 2 columns."""
        return {
            "columns_per_table": self.columns_per_table,
            "rows_per_table": self.rows_per_table,
            "tables_per_db": self.tables_per_db,
            "uniqueness": self.uniqueness,
            "sparsity": self.sparsity,
            "data_types": self.data_type_diversity,
        }


def profile_database(database: Database) -> DataProfile:
    """Compute the Table 2 metrics over a populated engine database."""
    tables = database.tables()
    if not tables:
        raise SchemaError("cannot profile an empty database")

    total_columns = sum(len(table.columns) for table in tables)
    total_rows = sum(len(table) for table in tables)

    column_name_counts = Counter(
        column.name.lower() for table in tables for column in table.columns
    )
    unique_names = sum(1 for count in column_name_counts.values() if count == 1)
    uniqueness = unique_names / len(column_name_counts) if column_name_counts else 1.0

    null_cells = 0
    total_cells = 0
    for table in tables:
        width = len(table.columns)
        total_cells += width * len(table)
        for row in table.rows:
            null_cells += sum(1 for value in row if value is None)
    sparsity = null_cells / total_cells if total_cells else 0.0

    data_types = {column.data_type for table in tables for column in table.columns}

    return DataProfile(
        columns_per_table=total_columns / len(tables),
        rows_per_table=total_rows / len(tables),
        tables_per_db=len(tables),
        uniqueness=uniqueness,
        sparsity=sparsity,
        data_type_diversity=len(data_types),
    )


def profile_schema(schema: DatabaseSchema) -> DataProfile:
    """Compute schema-only metrics (row counts and sparsity are zero).

    Useful when only DDL was ingested (no data upload); the annotation
    pipeline does not need data, but the Table 2 experiment does, so that
    experiment always profiles populated engine databases instead.
    """
    if not schema.tables:
        raise SchemaError(f"schema {schema.name!r} has no tables")
    total_columns = schema.column_count()
    column_name_counts = Counter(
        column.name.lower() for _, column in schema.all_columns()
    )
    unique_names = sum(1 for count in column_name_counts.values() if count == 1)
    uniqueness = unique_names / len(column_name_counts) if column_name_counts else 1.0
    data_types = {
        column.type_name.upper().split("(")[0] for _, column in schema.all_columns()
    }
    return DataProfile(
        columns_per_table=total_columns / len(schema.tables),
        rows_per_table=0.0,
        tables_per_db=len(schema.tables),
        uniqueness=uniqueness,
        sparsity=0.0,
        data_type_diversity=len(data_types),
    )


def relative_difference(value: float, baseline: float) -> float:
    """Relative difference of ``value`` w.r.t. ``baseline`` as used in Tables 1–2.

    Returns a signed fraction: ``(value - baseline) / baseline``.  The paper
    reports these as percentages with ↑/↓ arrows.
    """
    if baseline == 0:
        return 0.0 if value == 0 else float("inf")
    return (value - baseline) / baseline
