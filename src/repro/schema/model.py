"""Logical schema model.

The schema model is the contract between the workload generators, the
retrieval component (which surfaces "relevant tables with all their columns"
to the LLM prompt — paper step 4), the schema profiler (Table 2 metrics) and
the annotation UI abstractions in :mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaError


@dataclass
class ColumnSchema:
    """One column of a table."""

    name: str
    type_name: str = "TEXT"
    nullable: bool = True
    primary_key: bool = False
    description: str = ""

    def render(self) -> str:
        """Render the column as it appears in DDL/prompt context."""
        suffix = " PRIMARY KEY" if self.primary_key else ""
        return f"{self.name} {self.type_name}{suffix}"


@dataclass
class ForeignKey:
    """A foreign-key relationship between two tables."""

    column: str
    referenced_table: str
    referenced_column: str


@dataclass
class TableSchema:
    """One table of a database schema."""

    name: str
    columns: list[ColumnSchema] = field(default_factory=list)
    foreign_keys: list[ForeignKey] = field(default_factory=list)
    description: str = ""

    @property
    def column_names(self) -> list[str]:
        """Column names in declaration order."""
        return [column.name for column in self.columns]

    def column(self, name: str) -> ColumnSchema:
        """Look up a column by case-insensitive name."""
        for column in self.columns:
            if column.name.lower() == name.lower():
                return column
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        """Whether the table declares a column with the given name."""
        return any(column.name.lower() == name.lower() for column in self.columns)

    def to_ddl(self) -> str:
        """Render a CREATE TABLE statement for this table."""
        elements = [column.render() for column in self.columns]
        for foreign_key in self.foreign_keys:
            elements.append(
                f"FOREIGN KEY ({foreign_key.column}) REFERENCES "
                f"{foreign_key.referenced_table} ({foreign_key.referenced_column})"
            )
        return f"CREATE TABLE {self.name} ({', '.join(elements)})"


@dataclass
class DatabaseSchema:
    """A whole database schema: a named collection of tables."""

    name: str
    tables: list[TableSchema] = field(default_factory=list)
    description: str = ""

    @property
    def table_names(self) -> list[str]:
        """Table names in declaration order."""
        return [table.name for table in self.tables]

    def table(self, name: str) -> TableSchema:
        """Look up a table by case-insensitive name."""
        for table in self.tables:
            if table.name.lower() == name.lower():
                return table
        raise SchemaError(f"schema {self.name!r} has no table {name!r}")

    def has_table(self, name: str) -> bool:
        """Whether the schema declares a table with this name."""
        return any(table.name.lower() == name.lower() for table in self.tables)

    def add_table(self, table: TableSchema) -> None:
        """Add a table, rejecting duplicates."""
        if self.has_table(table.name):
            raise SchemaError(f"schema {self.name!r} already has a table {table.name!r}")
        self.tables.append(table)

    def all_columns(self) -> list[tuple[str, ColumnSchema]]:
        """Every (table name, column) pair in the schema."""
        return [(table.name, column) for table in self.tables for column in table.columns]

    def to_ddl(self) -> str:
        """Render the whole schema as a DDL script."""
        return ";\n".join(table.to_ddl() for table in self.tables) + (";" if self.tables else "")

    def column_count(self) -> int:
        """Total number of columns across all tables."""
        return sum(len(table.columns) for table in self.tables)

    def serialize_for_prompt(self, table_names: list[str] | None = None) -> str:
        """Render schema context for LLM prompts.

        When ``table_names`` is given only those tables are rendered; this is
        how BenchPress keeps prompts focused on the retrieved relevant tables.
        """
        selected = self.tables
        if table_names is not None:
            wanted = {name.lower() for name in table_names}
            selected = [table for table in self.tables if table.name.lower() in wanted]
        lines: list[str] = []
        for table in selected:
            columns = ", ".join(column.render() for column in table.columns)
            lines.append(f"TABLE {table.name} ({columns})")
            for foreign_key in table.foreign_keys:
                lines.append(
                    f"  -- {table.name}.{foreign_key.column} references "
                    f"{foreign_key.referenced_table}.{foreign_key.referenced_column}"
                )
        return "\n".join(lines)


def schema_from_database(database: "Database", name: str | None = None) -> DatabaseSchema:  # noqa: F821
    """Derive a :class:`DatabaseSchema` from an engine :class:`Database` catalog."""
    from repro.engine.database import Database as EngineDatabase

    if not isinstance(database, EngineDatabase):
        raise SchemaError("schema_from_database expects a repro.engine.Database")
    schema = DatabaseSchema(name=name or database.name)
    for table in database.tables():
        columns = [
            ColumnSchema(
                name=column.name,
                type_name=column.data_type.value,
                nullable=not column.not_null,
                primary_key=column.primary_key,
            )
            for column in table.columns
        ]
        schema.add_table(TableSchema(name=table.name, columns=columns))
    return schema
