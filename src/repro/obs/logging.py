"""Structured logging adapter that stamps records with span context.

Built on the stdlib ``logging`` module so existing handlers, levels and
propagation all keep working.  Two pieces:

* :class:`SpanContextFilter` — a ``logging.Filter`` that copies the current
  span's ids (and its ``project``/``job_id`` attributes, when set) onto every
  record, so *any* formatter can reference ``%(trace_id)s`` etc.;
* :class:`StructuredLogger` — an event-oriented front end
  (``log.event("job_quarantined", project="Spider", error_type=...)``) that
  renders ``event key=value`` messages with the span ids appended, keeping
  log lines grep-able and machine-parseable without a JSON dependency.
"""

from __future__ import annotations

import logging

from repro.obs.trace import current_span

__all__ = ["SpanContextFilter", "StructuredLogger", "get_structured_logger"]

#: Record attributes stamped by :class:`SpanContextFilter`.
_SPAN_FIELDS = ("trace_id", "span_id", "project", "job_id")


def _span_context() -> dict[str, object]:
    """Span-derived fields for the log record (empty strings off-span)."""
    span = current_span()
    if span is None:
        return {field: "" for field in _SPAN_FIELDS}
    return {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "project": span.attributes.get("project", ""),
        "job_id": span.attributes.get("job_id", ""),
    }


class SpanContextFilter(logging.Filter):
    """Stamp every record with the current span's ids (or empty strings)."""

    def filter(self, record: logging.LogRecord) -> bool:
        for field, value in _span_context().items():
            if not hasattr(record, field):
                setattr(record, field, value)
        return True


class StructuredLogger:
    """Event-style logging with span context folded into each line."""

    def __init__(self, name: str = "repro", level: int = logging.INFO) -> None:
        self._logger = logging.getLogger(name)
        self._logger.setLevel(level)
        if not any(
            isinstance(existing, SpanContextFilter)
            for existing in self._logger.filters
        ):
            self._logger.addFilter(SpanContextFilter())

    @property
    def logger(self) -> logging.Logger:
        """The underlying stdlib logger (attach handlers here)."""
        return self._logger

    def event(self, event: str, level: int = logging.INFO, **fields: object) -> None:
        """Log one structured event: ``event key=value ...`` plus span ids."""
        if not self._logger.isEnabledFor(level):
            return
        context = _span_context()
        parts = [event]
        parts.extend(f"{key}={fields[key]}" for key in sorted(fields))
        parts.extend(
            f"{field}={context[field]}"
            for field in _SPAN_FIELDS
            if context[field] != "" and field not in fields
        )
        self._logger.log(level, " ".join(parts), extra=context)


def get_structured_logger(name: str = "repro", level: int = logging.INFO) -> StructuredLogger:
    """Create (or re-wrap) the structured logger for ``name``."""
    return StructuredLogger(name, level=level)
