"""The injectable telemetry facade the instrumented layers hang off.

Every instrumented component (service, scheduler, pipeline, LLM client,
journal, snapshot store, vector stores, database) holds a ``telemetry``
reference that defaults to :data:`NULL_TELEMETRY` — a no-op whose methods do
nothing and whose ``enabled`` flag is ``False``.  Hot paths gate their
bookkeeping on that flag::

    tel = self.telemetry
    if tel.enabled:
        tel.count("journal_appends_total", type=event_type)

so with the default no-op the instrumented code performs one attribute read
and one branch — the drained results stay bit-identical and the overhead is
unmeasurable (asserted by ``benchmarks/bench_observability.py``).

A real :class:`Telemetry` bundles the three observability primitives:

* :class:`~repro.obs.metrics.MetricsRegistry` — counters/gauges/histograms,
* :class:`~repro.obs.trace.Tracer` — spans with a bounded ring buffer,
* :class:`~repro.obs.logging.StructuredLogger` — span-stamped log events.
"""

from __future__ import annotations

import logging

from repro.obs.logging import StructuredLogger
from repro.obs.metrics import DEFAULT_SIZE_BUCKETS, MetricsRegistry
from repro.obs.trace import Tracer

__all__ = ["Telemetry", "NullTelemetry", "NULL_TELEMETRY"]


class Telemetry:
    """Live telemetry: a metrics registry + tracer + structured logger."""

    enabled = True

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        logger: StructuredLogger | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.logger = logger if logger is not None else StructuredLogger()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def count(self, name: str, value: float = 1.0, **labels: object) -> None:
        """Increment the counter series ``name`` + ``labels``."""
        self.metrics.counter(name, **labels).inc(value)

    def gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge series ``name`` + ``labels``."""
        self.metrics.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record one sample into the (latency-bucketed) histogram series."""
        self.metrics.histogram(name, **labels).observe(value)

    def observe_size(self, name: str, value: float, **labels: object) -> None:
        """Record one sample into a count-bucketed histogram series."""
        self.metrics.histogram(name, buckets=DEFAULT_SIZE_BUCKETS, **labels).observe(
            value
        )

    def span(self, name: str, **attributes: object):
        """Open a (context-managed, nestable) span."""
        return self.tracer.span(name, **attributes)

    def event(self, event: str, level: int = logging.INFO, **fields: object) -> None:
        """Emit one structured log event."""
        self.logger.event(event, level=level, **fields)

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------

    def metrics_dict(self) -> dict:
        return self.metrics.as_dict()

    def render_prometheus(self) -> str:
        return self.metrics.render_prometheus()


class _NullSpanScope:
    """Shared, stateless, re-entrant stand-in for a span context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanScope":
        return self

    def __exit__(self, *_exc) -> bool:
        return False

    def set_attribute(self, key: str, value: object) -> None:
        pass


_NULL_SPAN_SCOPE = _NullSpanScope()


class NullTelemetry(Telemetry):
    """Do-nothing telemetry; the default for every instrumented component."""

    enabled = False

    def __init__(self) -> None:
        # No registry/tracer/logger: nothing may be allocated or recorded.
        pass

    def count(self, name: str, value: float = 1.0, **labels: object) -> None:
        pass

    def gauge(self, name: str, value: float, **labels: object) -> None:
        pass

    def observe(self, name: str, value: float, **labels: object) -> None:
        pass

    def observe_size(self, name: str, value: float, **labels: object) -> None:
        pass

    def span(self, name: str, **attributes: object) -> _NullSpanScope:
        return _NULL_SPAN_SCOPE

    def event(self, event: str, level: int = logging.INFO, **fields: object) -> None:
        pass

    def metrics_dict(self) -> dict:
        return {}

    def render_prometheus(self) -> str:
        return ""


#: Process-wide no-op instance shared by every un-instrumented component.
NULL_TELEMETRY = NullTelemetry()
