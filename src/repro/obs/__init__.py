"""Observability: metrics registry, tracing spans, structured logging.

The package is dependency-free and import-light so every layer of the system
can hold a :class:`Telemetry` reference (defaulting to the no-op
:data:`NULL_TELEMETRY`) without pulling anything heavy onto its import path.
See ``README.md`` ("Observability") for the metric catalogue and span
taxonomy.
"""

from repro.obs.logging import (
    SpanContextFilter,
    StructuredLogger,
    get_structured_logger,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry
from repro.obs.trace import DEFAULT_RING_CAPACITY, Span, Tracer, current_span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "Span",
    "Tracer",
    "current_span",
    "DEFAULT_RING_CAPACITY",
    "SpanContextFilter",
    "StructuredLogger",
    "get_structured_logger",
    "Telemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
]
