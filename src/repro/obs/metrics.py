"""Thread-safe metrics registry: counters, gauges, fixed-bucket histograms.

The registry is the process-wide aggregation point for the service's runtime
counters (jobs submitted/quarantined, LLM retries, journal fsyncs, ...) keyed
by a metric *family* name plus a small set of labels (tenant/project, model,
event type).  It is deliberately tiny and dependency-free:

* every mutation goes through a per-metric lock, so worker threads draining
  concurrent waves can hammer the same counter without losing increments;
* histograms use **fixed** bucket boundaries chosen at creation time, so
  merging/rendering never has to re-bucket and exposition output is stable;
* two export formats — :meth:`MetricsRegistry.as_dict` (JSON-safe snapshot)
  and :meth:`MetricsRegistry.render_prometheus` (Prometheus text exposition
  format) — share one deterministic ordering (families by name, series by
  sorted label items), so both are byte-stable for a given set of recordings.

Metric and label names follow Prometheus conventions (``snake_case``,
counters end in ``_total``); values are floats throughout.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]

#: Default histogram boundaries for durations in seconds (sub-millisecond
#: journal fsyncs up to multi-second drains).
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

#: Default histogram boundaries for counts (wave sizes, batch sizes).
DEFAULT_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


def _format_number(value: float) -> str:
    """Render a sample value the way Prometheus text format expects."""
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class Counter:
    """A monotonically increasing sample."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, value: float = 1.0) -> None:
        """Add ``value`` (must be non-negative) to the counter."""
        if value < 0:
            raise ValueError("counters can only increase")
        with self._lock:
            self._value += value

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A sample that can go up and down."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, value: float = 1.0) -> None:
        with self._lock:
            self._value += value

    def dec(self, value: float = 1.0) -> None:
        with self._lock:
            self._value -= value

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-boundary histogram with cumulative-bucket exposition.

    ``buckets`` are the *upper* bounds of each bucket in strictly increasing
    order; an implicit ``+Inf`` bucket catches everything above the last
    boundary (so ``observe`` never drops a sample).
    """

    __slots__ = ("_lock", "buckets", "_counts", "_sum", "_count")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError("histogram buckets must be strictly increasing")
        self._lock = threading.Lock()
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one sample."""
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending with ``+Inf``."""
        with self._lock:
            counts = list(self._counts)
        running = 0
        out: list[tuple[float, int]] = []
        for bound, count in zip(self.buckets + (float("inf"),), counts):
            running += count
            out.append((bound, running))
        return out


class _Family:
    """All series of one metric name (same type, help text and buckets)."""

    __slots__ = ("name", "type", "help", "buckets", "series")

    def __init__(self, name: str, type_: str, help_: str, buckets) -> None:
        self.name = name
        self.type = type_
        self.help = help_
        self.buckets = buckets
        self.series: dict[tuple[tuple[str, str], ...], object] = {}


class MetricsRegistry:
    """Create-on-first-use registry of labelled metric families."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # ------------------------------------------------------------------
    # metric accessors
    # ------------------------------------------------------------------

    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        """The counter series for ``name`` + ``labels`` (created on demand)."""
        return self._series(name, "counter", help, None, labels)

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        """The gauge series for ``name`` + ``labels`` (created on demand)."""
        return self._series(name, "gauge", help, None, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
        **labels: object,
    ) -> Histogram:
        """The histogram series for ``name`` + ``labels`` (created on demand).

        ``buckets`` fixes the family's boundaries on first use; later calls
        may omit it (or must agree with it).
        """
        return self._series(name, "histogram", help, buckets, labels)

    def _series(self, name, type_, help_, buckets, labels):
        key = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                if type_ == "histogram":
                    buckets = tuple(buckets) if buckets else DEFAULT_LATENCY_BUCKETS
                family = _Family(name, type_, help_, buckets)
                self._families[name] = family
            elif family.type != type_:
                raise ValueError(
                    f"metric {name!r} is a {family.type}, not a {type_}"
                )
            elif (
                type_ == "histogram"
                and buckets is not None
                and tuple(buckets) != family.buckets
            ):
                raise ValueError(
                    f"metric {name!r} already has buckets {family.buckets}"
                )
            metric = family.series.get(key)
            if metric is None:
                if type_ == "counter":
                    metric = Counter()
                elif type_ == "gauge":
                    metric = Gauge()
                else:
                    metric = Histogram(family.buckets)
                family.series[key] = metric
            return metric

    # ------------------------------------------------------------------
    # exposition
    # ------------------------------------------------------------------

    def as_dict(self) -> dict:
        """Deterministic JSON-safe snapshot of every family and series."""
        snapshot: dict = {}
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        for family in families:
            series_out = []
            for key in sorted(family.series):
                metric = family.series[key]
                entry: dict = {"labels": dict(key)}
                if family.type == "histogram":
                    entry["count"] = metric.count
                    entry["sum"] = round(metric.sum, 9)
                    entry["buckets"] = {
                        _format_number(bound): count
                        for bound, count in metric.cumulative()
                    }
                else:
                    entry["value"] = metric.value
                series_out.append(entry)
            snapshot[family.name] = {
                "type": family.type,
                "help": family.help,
                "series": series_out,
            }
        return snapshot

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        for family in families:
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.type}")
            for key in sorted(family.series):
                metric = family.series[key]
                if family.type == "histogram":
                    for bound, cumulative_count in metric.cumulative():
                        bucket_key = key + (("le", _format_number(bound)),)
                        lines.append(
                            f"{family.name}_bucket{_render_labels(bucket_key)} "
                            f"{cumulative_count}"
                        )
                    lines.append(
                        f"{family.name}_sum{_render_labels(key)} "
                        f"{_format_number(metric.sum)}"
                    )
                    lines.append(
                        f"{family.name}_count{_render_labels(key)} {metric.count}"
                    )
                else:
                    lines.append(
                        f"{family.name}{_render_labels(key)} "
                        f"{_format_number(metric.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _render_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in key)
    return "{" + inner + "}"
