"""Lightweight tracing spans with monotonic clocks and a bounded ring buffer.

A :class:`Span` measures one named stretch of work (a drain, a scheduler
round, a wave, an LLM call) on the monotonic :func:`time.perf_counter` clock,
so durations are immune to wall-clock adjustments; each span also carries a
derived unix timestamp (tracer anchor + monotonic offset) so exported traces
line up with external logs.

Spans nest: :meth:`Tracer.span` is a context manager that makes the new span
the *context-local* current span (``contextvars``, so worker threads and
nested scopes each see their own lineage) and records its parent's id.
Finished spans land in a bounded in-memory ring buffer — old spans fall off
the back instead of growing without bound — and can be dumped with
:meth:`Tracer.export_jsonl` for offline analysis.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextvars import ContextVar
from pathlib import Path

__all__ = ["Span", "Tracer", "current_span", "DEFAULT_RING_CAPACITY"]

#: Finished spans kept in memory before the oldest are dropped.
DEFAULT_RING_CAPACITY = 4096

_CURRENT_SPAN: ContextVar["Span | None"] = ContextVar(
    "repro_obs_current_span", default=None
)


def current_span() -> "Span | None":
    """The span currently open in this thread/context (or ``None``)."""
    return _CURRENT_SPAN.get()


class Span:
    """One timed, attributed unit of work."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attributes",
        "status",
        "start_unix",
        "_start",
        "_end",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        trace_id: int,
        parent_id: int | None,
        attributes: dict,
        start_unix: float,
        start_monotonic: float,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.attributes = attributes
        self.status = "ok"
        self.start_unix = start_unix
        self._start = start_monotonic
        self._end: float | None = None

    @property
    def ended(self) -> bool:
        return self._end is not None

    @property
    def duration_seconds(self) -> float:
        """Monotonic elapsed time (up to now for a still-open span)."""
        end = self._end if self._end is not None else time.perf_counter()
        return end - self._start

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def as_dict(self) -> dict:
        """JSON-safe form used by the JSONL exporter."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": round(self.start_unix, 6),
            "duration_seconds": round(self.duration_seconds, 9),
            "status": self.status,
            "attributes": self.attributes,
        }


class _SpanScope:
    """Context manager that opens a span on enter and files it on exit."""

    __slots__ = ("_tracer", "_name", "_attributes", "span", "_token")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self.span: Span | None = None
        self._token = None

    def __enter__(self) -> Span:
        self.span = self._tracer._begin(self._name, self._attributes)
        self._token = _CURRENT_SPAN.set(self.span)
        return self.span

    def __exit__(self, exc_type, exc, _tb) -> bool:
        span = self.span
        span._end = time.perf_counter()
        if exc is not None:
            span.status = "error"
            span.attributes["error"] = f"{exc_type.__name__}: {exc}"
        _CURRENT_SPAN.reset(self._token)
        self._tracer._finish(span)
        return False


class Tracer:
    """Factory and ring buffer for spans."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("tracer ring capacity must be at least 1")
        self.capacity = capacity
        self._ring: deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._next_id = 1
        # Anchor pair: spans time on the monotonic clock but report unix
        # timestamps derived from this one wall-clock reading.
        self._anchor_unix = time.time()
        self._anchor_monotonic = time.perf_counter()

    def span(self, name: str, **attributes: object) -> _SpanScope:
        """Open a child of the context-local current span.

        Usage::

            with tracer.span("pipeline.wave", project="Spider") as span:
                ...
                span.set_attribute("records", len(records))
        """
        return _SpanScope(self, name, dict(attributes))

    def current_span(self) -> Span | None:
        return current_span()

    def _begin(self, name: str, attributes: dict) -> Span:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        parent = _CURRENT_SPAN.get()
        started = time.perf_counter()
        return Span(
            name=name,
            span_id=span_id,
            trace_id=parent.trace_id if parent is not None else span_id,
            parent_id=parent.span_id if parent is not None else None,
            attributes=attributes,
            start_unix=self._anchor_unix + (started - self._anchor_monotonic),
            start_monotonic=started,
        )

    def _finish(self, span: Span) -> None:
        with self._lock:
            self._ring.append(span)

    # ------------------------------------------------------------------
    # inspection / export
    # ------------------------------------------------------------------

    def finished_spans(self) -> list[Span]:
        """Ring-buffer contents, oldest first."""
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    def export_jsonl(self, path: str | Path) -> int:
        """Write every buffered span as one JSON object per line.

        Returns the number of spans written.
        """
        spans = self.finished_spans()
        with open(path, "w", encoding="utf-8") as handle:
            for span in spans:
                handle.write(json.dumps(span.as_dict(), sort_keys=True) + "\n")
        return len(spans)
