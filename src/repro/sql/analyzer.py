"""Static analysis over SQL ASTs.

Provides the building blocks used throughout BenchPress:

* :func:`extract_tables` / :func:`extract_columns` — schema linking inputs and
  the retrieval step's "relevant tables" (paper step 4),
* :func:`analyze_query` — the query-level complexity metrics reported in
  Table 1 of the paper (#keywords, #tokens, #tables, #columns, #aggregations,
  #nestings),
* :func:`iter_subqueries` — enumeration of nested subqueries, used by the
  decomposition step and by the complexity metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    Cast,
    CaseWhen,
    ColumnRef,
    Exists,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Join,
    Like,
    Literal,
    Parameter,
    Relation,
    ScalarSubquery,
    Select,
    Star,
    SubqueryRef,
    TableRef,
    UnaryOp,
)
from repro.sql.lexer import tokenize
from repro.sql.parser import parse_select
from repro.sql.tokens import TokenKind

#: SQL aggregate function names recognised by the analyzer and the engine.
AGGREGATE_FUNCTIONS: frozenset[str] = frozenset(
    {"COUNT", "SUM", "AVG", "MIN", "MAX", "GROUP_CONCAT", "STDDEV", "VARIANCE", "MEDIAN"}
)


@dataclass
class QueryComplexity:
    """Query-level complexity metrics (one row of the paper's Table 1)."""

    keywords: int = 0
    tokens: int = 0
    tables: int = 0
    columns: int = 0
    aggregations: int = 0
    nestings: int = 0
    joins: int = 0
    predicates: int = 0
    ctes: int = 0
    has_group_by: bool = False
    has_order_by: bool = False
    has_set_operation: bool = False

    def as_dict(self) -> dict[str, float]:
        """Return the metrics as a plain dict (handy for aggregation)."""
        return {
            "keywords": self.keywords,
            "tokens": self.tokens,
            "tables": self.tables,
            "columns": self.columns,
            "aggregations": self.aggregations,
            "nestings": self.nestings,
            "joins": self.joins,
            "predicates": self.predicates,
            "ctes": self.ctes,
        }


@dataclass
class QueryProfile:
    """Full static profile of a query: complexity plus referenced objects."""

    complexity: QueryComplexity
    tables: list[str] = field(default_factory=list)
    columns: list[str] = field(default_factory=list)
    aggregate_calls: list[str] = field(default_factory=list)
    literals: list[object] = field(default_factory=list)


# ---------------------------------------------------------------------------
# expression / relation walking
# ---------------------------------------------------------------------------


def iter_expressions(expression: Expression | None) -> Iterator[Expression]:
    """Yield ``expression`` and every nested expression (not descending into subqueries)."""
    if expression is None:
        return
    yield expression
    if isinstance(expression, BinaryOp):
        yield from iter_expressions(expression.left)
        yield from iter_expressions(expression.right)
    elif isinstance(expression, UnaryOp):
        yield from iter_expressions(expression.operand)
    elif isinstance(expression, FunctionCall):
        for arg in expression.args:
            yield from iter_expressions(arg)
    elif isinstance(expression, Cast):
        yield from iter_expressions(expression.operand)
    elif isinstance(expression, CaseWhen):
        for condition, result in expression.conditions:
            yield from iter_expressions(condition)
            yield from iter_expressions(result)
        yield from iter_expressions(expression.else_result)
    elif isinstance(expression, IsNull):
        yield from iter_expressions(expression.operand)
    elif isinstance(expression, InList):
        yield from iter_expressions(expression.operand)
        for value in expression.values:
            yield from iter_expressions(value)
    elif isinstance(expression, InSubquery):
        yield from iter_expressions(expression.operand)
    elif isinstance(expression, Between):
        yield from iter_expressions(expression.operand)
        yield from iter_expressions(expression.low)
        yield from iter_expressions(expression.high)
    elif isinstance(expression, Like):
        yield from iter_expressions(expression.operand)
        yield from iter_expressions(expression.pattern)


def iter_expression_subqueries(expression: Expression | None) -> Iterator[Select]:
    """Yield SELECTs embedded in an expression (IN/EXISTS/scalar subqueries)."""
    for node in iter_expressions(expression):
        if isinstance(node, InSubquery):
            yield node.subquery
        elif isinstance(node, Exists):
            yield node.subquery
        elif isinstance(node, ScalarSubquery):
            yield node.query


def iter_relations(relation: Relation | None) -> Iterator[Relation]:
    """Yield every relation node in a FROM tree (joins, tables, derived tables)."""
    if relation is None:
        return
    yield relation
    if isinstance(relation, Join):
        yield from iter_relations(relation.left)
        yield from iter_relations(relation.right)


def iter_subqueries(select: Select, include_ctes: bool = True) -> Iterator[Select]:
    """Yield every SELECT nested inside ``select`` (depth-first, excluding itself)."""
    if include_ctes:
        for cte in select.ctes:
            yield cte.query
            yield from iter_subqueries(cte.query, include_ctes)

    for relation in iter_relations(select.from_relation):
        if isinstance(relation, SubqueryRef):
            yield relation.query
            yield from iter_subqueries(relation.query, include_ctes)

    expression_sources: list[Expression | None] = [select.where, select.having]
    expression_sources.extend(item.expression for item in select.select_items)
    expression_sources.extend(select.group_by)
    expression_sources.extend(item.expression for item in select.order_by)
    for source in expression_sources:
        for subquery in iter_expression_subqueries(source):
            yield subquery
            yield from iter_subqueries(subquery, include_ctes)

    if select.set_right is not None:
        yield select.set_right
        yield from iter_subqueries(select.set_right, include_ctes)


def _all_expressions(select: Select) -> Iterator[Expression]:
    """Yield every expression reachable from ``select`` including nested subqueries."""
    queries = [select]
    queries.extend(iter_subqueries(select))
    for query in queries:
        sources: list[Expression | None] = [query.where, query.having]
        sources.extend(item.expression for item in query.select_items)
        sources.extend(query.group_by)
        sources.extend(item.expression for item in query.order_by)
        for relation in iter_relations(query.from_relation):
            if isinstance(relation, Join) and relation.condition is not None:
                sources.append(relation.condition)
        for source in sources:
            yield from iter_expressions(source)


# ---------------------------------------------------------------------------
# extraction
# ---------------------------------------------------------------------------


def extract_tables(select: Select) -> list[str]:
    """Return the distinct base-table names referenced anywhere in the query.

    CTE names are excluded since they are query-local definitions rather than
    database tables.
    """
    cte_names = {cte.name.lower() for cte in select.ctes}
    for subquery in iter_subqueries(select):
        cte_names.update(cte.name.lower() for cte in subquery.ctes)

    tables: list[str] = []
    seen: set[str] = set()
    queries = [select]
    queries.extend(iter_subqueries(select))
    for query in queries:
        for relation in iter_relations(query.from_relation):
            if isinstance(relation, TableRef):
                key = relation.name.lower()
                if key not in seen and key not in cte_names:
                    seen.add(key)
                    tables.append(relation.name)
    return tables


def extract_columns(select: Select) -> list[str]:
    """Return distinct column names referenced anywhere in the query (unqualified)."""
    columns: list[str] = []
    seen: set[str] = set()
    for expression in _all_expressions(select):
        if isinstance(expression, ColumnRef):
            key = expression.name.lower()
            if key not in seen:
                seen.add(key)
                columns.append(expression.name)
    return columns


def extract_aggregates(select: Select) -> list[str]:
    """Return every aggregate function call (as printed name) in the query."""
    calls: list[str] = []
    for expression in _all_expressions(select):
        if isinstance(expression, FunctionCall) and expression.upper_name in AGGREGATE_FUNCTIONS:
            calls.append(expression.upper_name)
    return calls


def extract_literals(select: Select) -> list[object]:
    """Return literal values used in the query (filters, limits, etc.)."""
    return [
        expression.value
        for expression in _all_expressions(select)
        if isinstance(expression, Literal) and expression.value is not None
    ]


def nesting_depth(select: Select) -> int:
    """Return the number of nested query blocks (subqueries + CTEs + set branches)."""
    return sum(1 for _ in iter_subqueries(select))


def count_joins(select: Select) -> int:
    """Return the total number of join operators across all query blocks."""
    total = 0
    queries = [select]
    queries.extend(iter_subqueries(select))
    for query in queries:
        for relation in iter_relations(query.from_relation):
            if isinstance(relation, Join):
                total += 1
    return total


def count_predicates(select: Select) -> int:
    """Return the number of atomic predicates (comparisons, IN, LIKE, BETWEEN...)."""
    from repro.sql.ast_nodes import BinaryOperator

    comparison_ops = {
        BinaryOperator.EQ,
        BinaryOperator.NEQ,
        BinaryOperator.LT,
        BinaryOperator.LTE,
        BinaryOperator.GT,
        BinaryOperator.GTE,
    }
    total = 0
    for expression in _all_expressions(select):
        if isinstance(expression, BinaryOp) and expression.op in comparison_ops:
            total += 1
        elif isinstance(expression, (InList, InSubquery, Like, Between, IsNull, Exists)):
            total += 1
    return total


# ---------------------------------------------------------------------------
# complexity metrics (Table 1)
# ---------------------------------------------------------------------------


def count_keywords(sql: str) -> int:
    """Count SQL keyword tokens in the raw query text."""
    return sum(1 for token in tokenize(sql) if token.kind is TokenKind.KEYWORD)


def count_tokens(sql: str) -> int:
    """Count all lexical tokens in the raw query text."""
    return len(tokenize(sql))


def analyze_query(sql_or_ast: str | Select) -> QueryProfile:
    """Compute the full static profile of a query.

    Accepts either SQL text or an already-parsed :class:`Select`.  When given
    an AST, token/keyword counts are computed from the printed form.
    """
    if isinstance(sql_or_ast, Select):
        from repro.sql.printer import print_select

        sql = print_select(sql_or_ast)
        select = sql_or_ast
    else:
        sql = sql_or_ast
        select = parse_select(sql)

    tables = extract_tables(select)
    columns = extract_columns(select)
    aggregates = extract_aggregates(select)

    has_set_operation = select.set_operator is not None or any(
        subquery.set_operator is not None for subquery in iter_subqueries(select)
    )

    complexity = QueryComplexity(
        keywords=count_keywords(sql),
        tokens=count_tokens(sql),
        tables=len(tables),
        columns=len(columns),
        aggregations=len(aggregates),
        nestings=nesting_depth(select),
        joins=count_joins(select),
        predicates=count_predicates(select),
        ctes=len(select.ctes),
        has_group_by=bool(select.group_by),
        has_order_by=bool(select.order_by),
        has_set_operation=has_set_operation,
    )
    return QueryProfile(
        complexity=complexity,
        tables=tables,
        columns=columns,
        aggregate_calls=aggregates,
        literals=extract_literals(select),
    )


def is_nested(select: Select) -> bool:
    """Return True if the query contains any nested query blocks.

    This is the trigger condition for BenchPress's optional decomposition step
    (paper step 3.5).
    """
    return nesting_depth(select) > 0
