"""SQL lexer.

Turns SQL source text into a list of :class:`~repro.sql.tokens.Token` objects.
Supports:

* single-quoted string literals with ``''`` escaping,
* double-quoted and backtick-quoted identifiers,
* integer and decimal numeric literals (including scientific notation),
* line comments (``-- ...``) and block comments (``/* ... */``),
* multi-character comparison operators and string concatenation ``||``,
* named (``:name``) and positional (``?``) parameters.
"""

from __future__ import annotations

from repro.errors import LexError
from repro.sql.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    PUNCTUATION_CHARS,
    SINGLE_CHAR_OPERATORS,
    Token,
    TokenKind,
)


class Lexer:
    """Converts SQL text into tokens.

    Example:
        >>> Lexer("SELECT 1").tokenize()[0].value
        'SELECT'
    """

    def __init__(self, text: str) -> None:
        self._text = text
        self._length = len(text)
        self._pos = 0
        self._line = 1

    def tokenize(self) -> list[Token]:
        """Tokenize the entire input and return the token list (without EOF)."""
        tokens: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self._pos >= self._length:
                break
            tokens.append(self._next_token())
        return tokens

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= self._length:
            return ""
        return self._text[index]

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos < self._length and self._text[self._pos] == "\n":
                self._line += 1
            self._pos += 1

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < self._length:
            char = self._text[self._pos]
            if char.isspace():
                self._advance()
            elif char == "-" and self._peek(1) == "-":
                while self._pos < self._length and self._text[self._pos] != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._pos < self._length and not (
                    self._text[self._pos] == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self._pos >= self._length:
                    raise LexError("unterminated block comment", self._pos, self._line)
                self._advance(2)
            else:
                return

    def _next_token(self) -> Token:
        char = self._text[self._pos]
        start = self._pos
        line = self._line

        if char == "'":
            return self._lex_string(start, line)
        if char == '"' or char == "`":
            return self._lex_quoted_identifier(char, start, line)
        if char.isdigit() or (char == "." and self._peek(1).isdigit()):
            return self._lex_number(start, line)
        if char.isalpha() or char == "_":
            return self._lex_word(start, line)
        if char == ":" and (self._peek(1).isalpha() or self._peek(1) == "_"):
            return self._lex_parameter(start, line)
        if char == "?":
            self._advance()
            return Token(TokenKind.PARAMETER, "?", start, line)

        for op in MULTI_CHAR_OPERATORS:
            if self._text.startswith(op, self._pos):
                self._advance(len(op))
                value = "<>" if op == "!=" else op
                return Token(TokenKind.OPERATOR, value, start, line)
        if char in SINGLE_CHAR_OPERATORS:
            self._advance()
            return Token(TokenKind.OPERATOR, char, start, line)
        if char in PUNCTUATION_CHARS:
            self._advance()
            return Token(TokenKind.PUNCTUATION, char, start, line)

        raise LexError(f"unexpected character {char!r}", start, line)

    def _lex_string(self, start: int, line: int) -> Token:
        self._advance()  # opening quote
        chunks: list[str] = []
        while True:
            if self._pos >= self._length:
                raise LexError("unterminated string literal", start, line)
            char = self._text[self._pos]
            if char == "'":
                if self._peek(1) == "'":
                    chunks.append("'")
                    self._advance(2)
                    continue
                self._advance()
                break
            chunks.append(char)
            self._advance()
        return Token(TokenKind.STRING, "".join(chunks), start, line)

    def _lex_quoted_identifier(self, quote: str, start: int, line: int) -> Token:
        self._advance()
        chunks: list[str] = []
        while True:
            if self._pos >= self._length:
                raise LexError("unterminated quoted identifier", start, line)
            char = self._text[self._pos]
            if char == quote:
                self._advance()
                break
            chunks.append(char)
            self._advance()
        return Token(TokenKind.QUOTED_IDENTIFIER, "".join(chunks), start, line)

    def _lex_number(self, start: int, line: int) -> Token:
        while self._pos < self._length and (self._text[self._pos].isdigit() or self._text[self._pos] == "."):
            self._advance()
        if self._pos < self._length and self._text[self._pos] in ("e", "E"):
            lookahead = 1
            if self._peek(1) in ("+", "-"):
                lookahead = 2
            if self._peek(lookahead).isdigit():
                self._advance(lookahead)
                while self._pos < self._length and self._text[self._pos].isdigit():
                    self._advance()
        value = self._text[start : self._pos]
        if value.count(".") > 1:
            raise LexError(f"malformed number {value!r}", start, line)
        return Token(TokenKind.NUMBER, value, start, line)

    def _lex_word(self, start: int, line: int) -> Token:
        while self._pos < self._length and (
            self._text[self._pos].isalnum() or self._text[self._pos] in ("_", "$")
        ):
            self._advance()
        raw = self._text[start : self._pos]
        upper = raw.upper()
        if upper in KEYWORDS:
            return Token(TokenKind.KEYWORD, upper, start, line)
        return Token(TokenKind.IDENTIFIER, raw, start, line)

    def _lex_parameter(self, start: int, line: int) -> Token:
        self._advance()  # ':'
        while self._pos < self._length and (
            self._text[self._pos].isalnum() or self._text[self._pos] == "_"
        ):
            self._advance()
        return Token(TokenKind.PARAMETER, self._text[start : self._pos], start, line)


def tokenize(sql: str) -> list[Token]:
    """Tokenize SQL text.  Convenience wrapper around :class:`Lexer`."""
    return Lexer(sql).tokenize()
