"""SQL normalisation utilities.

Normalisation serves two purposes in the reproduction:

* *exact-match* evaluation of SQL strings (paper step 7 mentions exact match
  as an automatic metric) needs whitespace/case/alias-insensitive comparison,
* the example store keys retrieved annotations by a normalised query skeleton
  so trivially different queries still retrieve each other.
"""

from __future__ import annotations

import re

from repro.sql.lexer import tokenize
from repro.sql.parser import parse_select
from repro.sql.printer import print_select
from repro.sql.tokens import TokenKind


def normalize_sql(sql: str) -> str:
    """Return a canonical form of the SQL text.

    The query is parsed and re-printed, which removes comment/whitespace
    differences and normalises keyword case.  If parsing fails the text is
    normalised lexically instead (tokens joined by single spaces, keywords
    upper-cased) so the function never raises on slightly out-of-dialect SQL.
    """
    try:
        return print_select(parse_select(sql))
    except Exception:
        return lexical_normalize(sql)


def lexical_normalize(sql: str) -> str:
    """Whitespace/case normalisation that does not require parsing."""
    try:
        tokens = tokenize(sql)
    except Exception:
        return re.sub(r"\s+", " ", sql).strip()
    parts: list[str] = []
    for token in tokens:
        if token.kind is TokenKind.KEYWORD:
            parts.append(token.value.upper())
        elif token.kind is TokenKind.STRING:
            escaped = token.value.replace("'", "''")
            parts.append(f"'{escaped}'")
        elif token.kind is TokenKind.QUOTED_IDENTIFIER:
            parts.append(token.value.lower())
        elif token.kind is TokenKind.IDENTIFIER:
            parts.append(token.value.lower())
        else:
            parts.append(token.value)
    return " ".join(parts)


def query_skeleton(sql: str) -> str:
    """Return a literal-free skeleton of the query.

    All string/number literals are replaced by placeholders so that queries
    differing only in constants map to the same skeleton.  Used by the example
    store to deduplicate retrieved context.
    """
    try:
        tokens = tokenize(sql)
    except Exception:
        return re.sub(r"\s+", " ", sql).strip().lower()
    parts: list[str] = []
    for token in tokens:
        if token.kind is TokenKind.STRING:
            parts.append("'?'")
        elif token.kind is TokenKind.NUMBER:
            parts.append("?")
        elif token.kind is TokenKind.KEYWORD:
            parts.append(token.value.upper())
        elif token.kind in (TokenKind.IDENTIFIER, TokenKind.QUOTED_IDENTIFIER):
            parts.append(token.value.lower())
        else:
            parts.append(token.value)
    return " ".join(parts)


def queries_equal(left: str, right: str) -> bool:
    """Structural equality of two SQL strings after normalisation."""
    return normalize_sql(left) == normalize_sql(right)
