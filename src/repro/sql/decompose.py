"""Nested-query decomposition (paper step 3.5).

For nested SQL queries BenchPress rewrites the query into a series of Common
Table Expressions (CTEs), breaking it down into semantically logical
subqueries that are easier to describe independently.  This module implements
that rewrite plus the bookkeeping needed by the annotation loop:

* :func:`decompose` returns a :class:`DecompositionResult` containing the
  rewritten query (all derived tables and expression subqueries lifted into
  named CTEs) and one :class:`QueryUnit` per logical block, in dependency
  order (leaves first, the outer query last).
* Non-nested queries produce a single unit and an unchanged query, so the
  pipeline can call this unconditionally.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.sql.analyzer import extract_columns, extract_tables, is_nested
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    Cast,
    CaseWhen,
    CTE,
    Exists,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Join,
    Like,
    Relation,
    ScalarSubquery,
    Select,
    SubqueryRef,
    TableRef,
    UnaryOp,
)
from repro.sql.printer import print_select


@dataclass
class QueryUnit:
    """A semantically self-contained block of the decomposed query."""

    name: str
    sql: str
    query: Select
    role: str  # "cte", "derived_table", "where_subquery", "scalar_subquery", "outer"
    tables: list[str] = field(default_factory=list)
    columns: list[str] = field(default_factory=list)
    depends_on: list[str] = field(default_factory=list)


@dataclass
class DecompositionResult:
    """Result of decomposing one query."""

    original_sql: str
    decomposed_sql: str
    units: list[QueryUnit] = field(default_factory=list)
    was_nested: bool = False

    @property
    def outer_unit(self) -> QueryUnit:
        """The unit representing the outer (recomposed) query block."""
        return self.units[-1]

    @property
    def subquery_units(self) -> list[QueryUnit]:
        """Units other than the outer block."""
        return self.units[:-1]


class _Decomposer:
    """Stateful helper that lifts nested blocks into CTEs with fresh names."""

    def __init__(self) -> None:
        self._counter = 0
        self._units: list[QueryUnit] = []
        self._existing_names: set[str] = set()

    def decompose(self, select: Select) -> DecompositionResult:
        original_sql = print_select(select)
        nested = is_nested(select)
        working = copy.deepcopy(select)
        self._existing_names = {cte.name.lower() for cte in working.ctes}

        # Existing CTEs already are logical units: record them first.
        for cte in working.ctes:
            self._record_unit(cte.name, cte.query, role="cte")

        new_ctes: list[CTE] = []
        self._rewrite_select(working, new_ctes, rewrite_from=True)
        working.ctes = list(working.ctes) + new_ctes

        outer_role = "outer"
        outer_unit = self._record_unit("main_query", working, role=outer_role, register=False)
        outer_unit.depends_on = [unit.name for unit in self._units if unit is not outer_unit]

        decomposed_sql = print_select(working)
        return DecompositionResult(
            original_sql=original_sql,
            decomposed_sql=decomposed_sql,
            units=self._units,
            was_nested=nested,
        )

    # ------------------------------------------------------------------

    def _fresh_name(self, hint: str) -> str:
        base = hint.lower().strip("_") or "subquery"
        candidate = base
        while candidate.lower() in self._existing_names:
            self._counter += 1
            candidate = f"{base}_{self._counter}"
        self._existing_names.add(candidate.lower())
        return candidate

    def _record_unit(
        self, name: str, query: Select, role: str, register: bool = True
    ) -> QueryUnit:
        unit = QueryUnit(
            name=name,
            sql=print_select(query),
            query=query,
            role=role,
            tables=extract_tables(query),
            columns=extract_columns(query),
        )
        if register or True:
            self._units.append(unit)
        return unit

    # ------------------------------------------------------------------
    # rewriting
    # ------------------------------------------------------------------

    def _rewrite_select(self, select: Select, ctes: list[CTE], rewrite_from: bool) -> None:
        if rewrite_from and select.from_relation is not None:
            select.from_relation = self._rewrite_relation(select.from_relation, ctes)

        select.where = self._rewrite_expression(select.where, ctes)
        select.having = self._rewrite_expression(select.having, ctes)
        for item in select.select_items:
            item.expression = self._rewrite_expression(item.expression, ctes) or item.expression
        select.group_by = [
            self._rewrite_expression(expression, ctes) or expression for expression in select.group_by
        ]
        for order_item in select.order_by:
            order_item.expression = (
                self._rewrite_expression(order_item.expression, ctes) or order_item.expression
            )
        if select.set_right is not None:
            self._rewrite_select(select.set_right, ctes, rewrite_from=True)

    def _rewrite_relation(self, relation: Relation, ctes: list[CTE]) -> Relation:
        if isinstance(relation, Join):
            relation.left = self._rewrite_relation(relation.left, ctes)
            relation.right = self._rewrite_relation(relation.right, ctes)
            if relation.condition is not None:
                relation.condition = (
                    self._rewrite_expression(relation.condition, ctes) or relation.condition
                )
            return relation
        if isinstance(relation, SubqueryRef):
            inner = relation.query
            self._rewrite_select(inner, ctes, rewrite_from=True)
            name = self._fresh_name(f"{relation.alias}_block")
            ctes.append(CTE(name=name, query=inner))
            self._record_unit(name, inner, role="derived_table")
            return TableRef(name=name, alias=relation.alias)
        return relation

    def _rewrite_expression(
        self, expression: Expression | None, ctes: list[CTE]
    ) -> Expression | None:
        if expression is None:
            return None
        if isinstance(expression, BinaryOp):
            expression.left = self._rewrite_expression(expression.left, ctes) or expression.left
            expression.right = self._rewrite_expression(expression.right, ctes) or expression.right
            return expression
        if isinstance(expression, UnaryOp):
            expression.operand = (
                self._rewrite_expression(expression.operand, ctes) or expression.operand
            )
            return expression
        if isinstance(expression, FunctionCall):
            expression.args = [
                self._rewrite_expression(arg, ctes) or arg for arg in expression.args
            ]
            return expression
        if isinstance(expression, Cast):
            expression.operand = (
                self._rewrite_expression(expression.operand, ctes) or expression.operand
            )
            return expression
        if isinstance(expression, CaseWhen):
            expression.conditions = [
                (
                    self._rewrite_expression(condition, ctes) or condition,
                    self._rewrite_expression(result, ctes) or result,
                )
                for condition, result in expression.conditions
            ]
            if expression.else_result is not None:
                expression.else_result = (
                    self._rewrite_expression(expression.else_result, ctes) or expression.else_result
                )
            return expression
        if isinstance(expression, (IsNull, Like, Between, InList)):
            expression.operand = (
                self._rewrite_expression(expression.operand, ctes) or expression.operand
            )
            return expression
        if isinstance(expression, InSubquery):
            inner = expression.subquery
            self._rewrite_select(inner, ctes, rewrite_from=True)
            self._record_unit(self._fresh_name("filter_set"), inner, role="where_subquery")
            return expression
        if isinstance(expression, Exists):
            inner = expression.subquery
            self._rewrite_select(inner, ctes, rewrite_from=True)
            self._record_unit(self._fresh_name("existence_check"), inner, role="where_subquery")
            return expression
        if isinstance(expression, ScalarSubquery):
            inner = expression.query
            self._rewrite_select(inner, ctes, rewrite_from=True)
            self._record_unit(self._fresh_name("scalar_value"), inner, role="scalar_subquery")
            return expression
        return expression


def decompose(select_or_sql: Select | str) -> DecompositionResult:
    """Decompose a query into CTE-style logical units.

    Accepts either a parsed :class:`Select` or SQL text.
    """
    if isinstance(select_or_sql, str):
        from repro.sql.parser import parse_select

        select = parse_select(select_or_sql)
    else:
        select = select_or_sql
    return _Decomposer().decompose(select)
