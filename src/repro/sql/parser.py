"""Recursive-descent SQL parser.

Builds :mod:`repro.sql.ast_nodes` trees from token streams produced by
:mod:`repro.sql.lexer`.  The grammar covers the query shapes that occur in the
BenchPress workloads: SELECT with joins, nested subqueries, CTEs, set
operations, aggregation, CASE/CAST, and the DDL/DML needed to populate the
in-memory execution engine.

Entry points:

* :func:`parse` — parse a single statement.
* :func:`parse_many` — parse a ``;``-separated script.
* :func:`parse_expression` — parse a standalone scalar expression.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    BinaryOperator,
    Cast,
    CaseWhen,
    ColumnDef,
    ColumnRef,
    CreateTable,
    CTE,
    Delete,
    DropTable,
    Exists,
    Expression,
    FunctionCall,
    Insert,
    InList,
    InSubquery,
    IsNull,
    Join,
    JoinType,
    Like,
    Literal,
    OrderItem,
    Parameter,
    Relation,
    ScalarSubquery,
    Select,
    SelectItem,
    SetOperator,
    Star,
    Statement,
    SubqueryRef,
    TableRef,
    UnaryOp,
    UnaryOperator,
)
from repro.sql.lexer import tokenize
from repro.sql.tokens import EOF_TOKEN, Token, TokenKind


class Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------------------
    # token helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = self._index + offset
        if index >= len(self._tokens):
            return EOF_TOKEN
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def _expect_keyword(self, *names: str) -> Token:
        token = self._peek()
        if not token.is_keyword(*names):
            raise ParseError(
                f"expected keyword {'/'.join(names)}, got {token.value!r}",
                token.position,
                token.value,
            )
        return self._advance()

    def _expect_punctuation(self, char: str) -> Token:
        token = self._peek()
        if not token.is_punctuation(char):
            raise ParseError(
                f"expected {char!r}, got {token.value!r}", token.position, token.value
            )
        return self._advance()

    def _expect_identifier(self) -> str:
        token = self._peek()
        if token.kind in (TokenKind.IDENTIFIER, TokenKind.QUOTED_IDENTIFIER):
            self._advance()
            return token.value
        # Allow non-reserved-ish keywords as identifiers (e.g. a column named "key").
        if token.kind is TokenKind.KEYWORD and token.value in ("KEY", "SET", "FIRST", "LAST", "VALUES"):
            self._advance()
            return token.value
        raise ParseError(f"expected identifier, got {token.value!r}", token.position, token.value)

    def _match_keyword(self, *names: str) -> bool:
        if self._peek().is_keyword(*names):
            self._advance()
            return True
        return False

    def _match_punctuation(self, char: str) -> bool:
        if self._peek().is_punctuation(char):
            self._advance()
            return True
        return False

    def _at_end(self) -> bool:
        return self._peek().kind is TokenKind.EOF

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def parse_statement(self) -> Statement:
        """Parse one statement (SELECT/WITH/CREATE TABLE/INSERT/DELETE/DROP)."""
        token = self._peek()
        if token.is_keyword("SELECT", "WITH"):
            return self.parse_select()
        if token.is_keyword("CREATE"):
            return self._parse_create_table()
        if token.is_keyword("INSERT"):
            return self._parse_insert()
        if token.is_keyword("DELETE"):
            return self._parse_delete()
        if token.is_keyword("DROP"):
            return self._parse_drop_table()
        if token.is_punctuation("("):
            return self.parse_select()
        raise ParseError(f"unexpected start of statement: {token.value!r}", token.position, token.value)

    def parse_script(self) -> list[Statement]:
        """Parse a ``;``-separated sequence of statements."""
        statements: list[Statement] = []
        while not self._at_end():
            if self._match_punctuation(";"):
                continue
            statements.append(self.parse_statement())
        return statements

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def parse_select(self) -> Select:
        """Parse a SELECT statement including WITH prefix and set operations."""
        ctes: list[CTE] = []
        if self._match_keyword("WITH"):
            self._match_keyword("RECURSIVE")
            ctes.append(self._parse_cte())
            while self._match_punctuation(","):
                ctes.append(self._parse_cte())

        select = self._parse_set_expression()
        select.ctes = ctes
        return select

    def _parse_cte(self) -> CTE:
        name = self._expect_identifier()
        column_names: list[str] = []
        if self._match_punctuation("("):
            column_names.append(self._expect_identifier())
            while self._match_punctuation(","):
                column_names.append(self._expect_identifier())
            self._expect_punctuation(")")
        self._expect_keyword("AS")
        self._expect_punctuation("(")
        query = self.parse_select()
        self._expect_punctuation(")")
        return CTE(name=name, query=query, column_names=column_names)

    def _parse_set_expression(self) -> Select:
        left = self._parse_select_core()
        while self._peek().is_keyword("UNION", "INTERSECT", "EXCEPT"):
            keyword = self._advance().value
            if keyword == "UNION":
                if self._match_keyword("ALL"):
                    operator = SetOperator.UNION_ALL
                else:
                    self._match_keyword("DISTINCT")
                    operator = SetOperator.UNION
            elif keyword == "INTERSECT":
                operator = SetOperator.INTERSECT
            else:
                operator = SetOperator.EXCEPT
            right = self._parse_select_core()
            # ORDER BY / LIMIT written after a set operation bind to the whole
            # combined result, but the core parser attaches them to the right
            # branch; hoist them onto the combined node.
            wrapper = Select(
                select_items=left.select_items,
                distinct=left.distinct,
                from_relation=left.from_relation,
                where=left.where,
                group_by=left.group_by,
                having=left.having,
                order_by=left.order_by or right.order_by,
                limit=left.limit if left.limit is not None else right.limit,
                offset=left.offset if left.offset is not None else right.offset,
                set_operator=operator,
                set_right=right,
            )
            right.order_by = []
            right.limit = None
            right.offset = None
            left = wrapper
        # Trailing ORDER BY / LIMIT (possible after set operations).
        if self._peek().is_keyword("ORDER") and not left.order_by:
            left.order_by = self._parse_order_by()
        if self._peek().is_keyword("LIMIT") and left.limit is None:
            left.limit, left.offset = self._parse_limit()
        return left

    def _parse_select_core(self) -> Select:
        if self._match_punctuation("("):
            inner = self.parse_select()
            self._expect_punctuation(")")
            return inner

        self._expect_keyword("SELECT")
        select = Select()
        if self._match_keyword("DISTINCT"):
            select.distinct = True
        else:
            self._match_keyword("ALL")

        select.select_items.append(self._parse_select_item())
        while self._match_punctuation(","):
            select.select_items.append(self._parse_select_item())

        if self._match_keyword("FROM"):
            select.from_relation = self._parse_from()

        if self._match_keyword("WHERE"):
            select.where = self.parse_expression()

        if self._peek().is_keyword("GROUP"):
            self._advance()
            self._expect_keyword("BY")
            select.group_by.append(self.parse_expression())
            while self._match_punctuation(","):
                select.group_by.append(self.parse_expression())

        if self._match_keyword("HAVING"):
            select.having = self.parse_expression()

        if self._peek().is_keyword("ORDER"):
            select.order_by = self._parse_order_by()

        if self._peek().is_keyword("LIMIT"):
            select.limit, select.offset = self._parse_limit()

        return select

    def _parse_select_item(self) -> SelectItem:
        token = self._peek()
        if token.is_operator("*"):
            self._advance()
            return SelectItem(expression=Star())
        # t.* projection
        if token.kind in (TokenKind.IDENTIFIER, TokenKind.QUOTED_IDENTIFIER):
            if self._peek(1).is_punctuation(".") and self._peek(2).is_operator("*"):
                table = self._advance().value
                self._advance()  # '.'
                self._advance()  # '*'
                return SelectItem(expression=Star(table=table))

        expression = self.parse_expression()
        alias: str | None = None
        if self._match_keyword("AS"):
            alias = self._expect_identifier()
        elif self._peek().kind in (TokenKind.IDENTIFIER, TokenKind.QUOTED_IDENTIFIER):
            alias = self._advance().value
        return SelectItem(expression=expression, alias=alias)

    def _parse_order_by(self) -> list[OrderItem]:
        self._expect_keyword("ORDER")
        self._expect_keyword("BY")
        items = [self._parse_order_item()]
        while self._match_punctuation(","):
            items.append(self._parse_order_item())
        return items

    def _parse_order_item(self) -> OrderItem:
        expression = self.parse_expression()
        ascending = True
        if self._match_keyword("DESC"):
            ascending = False
        else:
            self._match_keyword("ASC")
        nulls_first: bool | None = None
        if self._match_keyword("NULLS"):
            if self._match_keyword("FIRST"):
                nulls_first = True
            else:
                self._expect_keyword("LAST")
                nulls_first = False
        return OrderItem(expression=expression, ascending=ascending, nulls_first=nulls_first)

    def _parse_limit(self) -> tuple[int | None, int | None]:
        self._expect_keyword("LIMIT")
        limit_token = self._peek()
        if limit_token.kind is not TokenKind.NUMBER:
            raise ParseError("LIMIT expects a numeric literal", limit_token.position, limit_token.value)
        self._advance()
        limit = int(float(limit_token.value))
        offset: int | None = None
        if self._match_keyword("OFFSET"):
            offset_token = self._peek()
            if offset_token.kind is not TokenKind.NUMBER:
                raise ParseError(
                    "OFFSET expects a numeric literal", offset_token.position, offset_token.value
                )
            self._advance()
            offset = int(float(offset_token.value))
        return limit, offset

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------

    def _parse_from(self) -> Relation:
        relation = self._parse_table_factor()
        while True:
            token = self._peek()
            if token.is_punctuation(","):
                self._advance()
                right = self._parse_table_factor()
                relation = Join(join_type=JoinType.CROSS, left=relation, right=right)
                continue
            join_type = self._try_parse_join_type()
            if join_type is None:
                break
            right = self._parse_table_factor()
            condition: Expression | None = None
            using_columns: list[str] = []
            if join_type is not JoinType.CROSS:
                if self._match_keyword("ON"):
                    condition = self.parse_expression()
                elif self._match_keyword("USING"):
                    self._expect_punctuation("(")
                    using_columns.append(self._expect_identifier())
                    while self._match_punctuation(","):
                        using_columns.append(self._expect_identifier())
                    self._expect_punctuation(")")
            relation = Join(
                join_type=join_type,
                left=relation,
                right=right,
                condition=condition,
                using_columns=using_columns,
            )
        return relation

    def _try_parse_join_type(self) -> JoinType | None:
        token = self._peek()
        if token.is_keyword("JOIN"):
            self._advance()
            return JoinType.INNER
        if token.is_keyword("INNER"):
            self._advance()
            self._expect_keyword("JOIN")
            return JoinType.INNER
        if token.is_keyword("LEFT"):
            self._advance()
            self._match_keyword("OUTER")
            self._expect_keyword("JOIN")
            return JoinType.LEFT
        if token.is_keyword("RIGHT"):
            self._advance()
            self._match_keyword("OUTER")
            self._expect_keyword("JOIN")
            return JoinType.RIGHT
        if token.is_keyword("FULL"):
            self._advance()
            self._match_keyword("OUTER")
            self._expect_keyword("JOIN")
            return JoinType.FULL
        if token.is_keyword("CROSS"):
            self._advance()
            self._expect_keyword("JOIN")
            return JoinType.CROSS
        return None

    def _parse_table_factor(self) -> Relation:
        token = self._peek()
        if token.is_punctuation("("):
            # Either a derived table or a parenthesised join.
            if self._peek(1).is_keyword("SELECT", "WITH"):
                self._advance()
                query = self.parse_select()
                self._expect_punctuation(")")
                self._match_keyword("AS")
                alias = self._expect_identifier()
                return SubqueryRef(query=query, alias=alias)
            self._advance()
            inner = self._parse_from()
            self._expect_punctuation(")")
            return inner

        name = self._expect_identifier()
        alias: str | None = None
        if self._match_keyword("AS"):
            alias = self._expect_identifier()
        elif self._peek().kind in (TokenKind.IDENTIFIER, TokenKind.QUOTED_IDENTIFIER) and not self._peek().is_keyword():
            alias = self._advance().value
        return TableRef(name=name, alias=alias)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------

    def parse_expression(self) -> Expression:
        """Parse an expression starting at the current token."""
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._peek().is_keyword("OR"):
            self._advance()
            right = self._parse_and()
            left = BinaryOp(op=BinaryOperator.OR, left=left, right=right)
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self._peek().is_keyword("AND"):
            self._advance()
            right = self._parse_not()
            left = BinaryOp(op=BinaryOperator.AND, left=left, right=right)
        return left

    def _parse_not(self) -> Expression:
        if self._peek().is_keyword("NOT") and not self._peek(1).is_keyword("EXISTS"):
            self._advance()
            operand = self._parse_not()
            return UnaryOp(op=UnaryOperator.NOT, operand=operand)
        return self._parse_predicate()

    def _parse_predicate(self) -> Expression:
        if self._peek().is_keyword("EXISTS") or (
            self._peek().is_keyword("NOT") and self._peek(1).is_keyword("EXISTS")
        ):
            negated = self._match_keyword("NOT")
            self._expect_keyword("EXISTS")
            self._expect_punctuation("(")
            subquery = self.parse_select()
            self._expect_punctuation(")")
            return Exists(subquery=subquery, negated=negated)

        left = self._parse_comparison()
        return self._parse_predicate_suffix(left)

    def _parse_predicate_suffix(self, left: Expression) -> Expression:
        negated = False
        if self._peek().is_keyword("NOT") and self._peek(1).is_keyword("IN", "BETWEEN", "LIKE"):
            self._advance()
            negated = True

        token = self._peek()
        if token.is_keyword("IS"):
            self._advance()
            is_negated = self._match_keyword("NOT")
            self._expect_keyword("NULL")
            return IsNull(operand=left, negated=is_negated)
        if token.is_keyword("IN"):
            self._advance()
            self._expect_punctuation("(")
            if self._peek().is_keyword("SELECT", "WITH"):
                subquery = self.parse_select()
                self._expect_punctuation(")")
                return InSubquery(operand=left, subquery=subquery, negated=negated)
            values = [self.parse_expression()]
            while self._match_punctuation(","):
                values.append(self.parse_expression())
            self._expect_punctuation(")")
            return InList(operand=left, values=values, negated=negated)
        if token.is_keyword("BETWEEN"):
            self._advance()
            low = self._parse_comparison()
            self._expect_keyword("AND")
            high = self._parse_comparison()
            return Between(operand=left, low=low, high=high, negated=negated)
        if token.is_keyword("LIKE"):
            self._advance()
            pattern = self._parse_comparison()
            return Like(operand=left, pattern=pattern, negated=negated)
        return left

    _COMPARISON_OPS = {
        "=": BinaryOperator.EQ,
        "<>": BinaryOperator.NEQ,
        "<": BinaryOperator.LT,
        "<=": BinaryOperator.LTE,
        ">": BinaryOperator.GT,
        ">=": BinaryOperator.GTE,
    }

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        token = self._peek()
        if token.kind is TokenKind.OPERATOR and token.value in self._COMPARISON_OPS:
            self._advance()
            right = self._parse_additive()
            return BinaryOp(op=self._COMPARISON_OPS[token.value], left=left, right=right)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while self._peek().is_operator("+", "-", "||"):
            op_token = self._advance()
            right = self._parse_multiplicative()
            if op_token.value == "+":
                operator = BinaryOperator.ADD
            elif op_token.value == "-":
                operator = BinaryOperator.SUB
            else:
                operator = BinaryOperator.CONCAT
            left = BinaryOp(op=operator, left=left, right=right)
        return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while self._peek().is_operator("*", "/", "%"):
            op_token = self._advance()
            right = self._parse_unary()
            operator = {
                "*": BinaryOperator.MUL,
                "/": BinaryOperator.DIV,
                "%": BinaryOperator.MOD,
            }[op_token.value]
            left = BinaryOp(op=operator, left=left, right=right)
        return left

    def _parse_unary(self) -> Expression:
        token = self._peek()
        if token.is_operator("-"):
            self._advance()
            return UnaryOp(op=UnaryOperator.NEG, operand=self._parse_unary())
        if token.is_operator("+"):
            self._advance()
            return UnaryOp(op=UnaryOperator.POS, operand=self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._peek()

        if token.kind is TokenKind.NUMBER:
            self._advance()
            text = token.value
            if "." in text or "e" in text.lower():
                return Literal(float(text))
            return Literal(int(text))
        if token.kind is TokenKind.STRING:
            self._advance()
            return Literal(token.value)
        if token.kind is TokenKind.PARAMETER:
            self._advance()
            return Parameter(token.value)
        if token.is_keyword("NULL"):
            self._advance()
            return Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if token.is_keyword("CAST"):
            return self._parse_cast()
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_punctuation("("):
            if self._peek(1).is_keyword("SELECT", "WITH"):
                self._advance()
                query = self.parse_select()
                self._expect_punctuation(")")
                return ScalarSubquery(query=query)
            self._advance()
            inner = self.parse_expression()
            self._expect_punctuation(")")
            return inner
        if token.kind in (TokenKind.IDENTIFIER, TokenKind.QUOTED_IDENTIFIER) or (
            token.kind is TokenKind.KEYWORD and token.value in ("LEFT", "RIGHT", "KEY", "FIRST", "LAST", "VALUES", "SET", "IF")
        ):
            return self._parse_identifier_expression()

        raise ParseError(f"unexpected token {token.value!r} in expression", token.position, token.value)

    def _parse_cast(self) -> Expression:
        self._expect_keyword("CAST")
        self._expect_punctuation("(")
        operand = self.parse_expression()
        self._expect_keyword("AS")
        type_name = self._expect_identifier()
        # Optional type parameters like VARCHAR(255) or DECIMAL(10, 2).
        if self._match_punctuation("("):
            parts: list[str] = []
            while not self._peek().is_punctuation(")"):
                parts.append(self._advance().value)
            self._expect_punctuation(")")
            type_name = f"{type_name}({','.join(parts)})"
        self._expect_punctuation(")")
        return Cast(operand=operand, target_type=type_name)

    def _parse_case(self) -> Expression:
        self._expect_keyword("CASE")
        case = CaseWhen()
        # Simple CASE (CASE expr WHEN v THEN r) is normalised into a searched
        # CASE by rewriting each WHEN into an equality comparison.
        base: Expression | None = None
        if not self._peek().is_keyword("WHEN"):
            base = self.parse_expression()
        while self._match_keyword("WHEN"):
            condition = self.parse_expression()
            if base is not None:
                condition = BinaryOp(op=BinaryOperator.EQ, left=base, right=condition)
            self._expect_keyword("THEN")
            result = self.parse_expression()
            case.conditions.append((condition, result))
        if self._match_keyword("ELSE"):
            case.else_result = self.parse_expression()
        self._expect_keyword("END")
        return case

    def _parse_identifier_expression(self) -> Expression:
        name = self._advance().value

        # Function call.
        if self._peek().is_punctuation("("):
            self._advance()
            distinct = False
            args: list[Expression] = []
            if self._peek().is_operator("*"):
                self._advance()
                args.append(Star())
            elif not self._peek().is_punctuation(")"):
                if self._match_keyword("DISTINCT"):
                    distinct = True
                args.append(self.parse_expression())
                while self._match_punctuation(","):
                    args.append(self.parse_expression())
            self._expect_punctuation(")")
            return FunctionCall(name=name, args=args, distinct=distinct)

        # Qualified column reference.
        if self._peek().is_punctuation("."):
            self._advance()
            if self._peek().is_operator("*"):
                self._advance()
                return Star(table=name)
            column = self._expect_identifier()
            return ColumnRef(name=column, table=name)

        return ColumnRef(name=name)

    # ------------------------------------------------------------------
    # DDL / DML
    # ------------------------------------------------------------------

    def _parse_create_table(self) -> CreateTable:
        self._expect_keyword("CREATE")
        self._expect_keyword("TABLE")
        if_not_exists = False
        if self._match_keyword("IF"):
            self._expect_keyword("NOT")
            # EXISTS is tokenized as a keyword.
            self._expect_keyword("EXISTS")
            if_not_exists = True
        name = self._parse_qualified_name()
        table = CreateTable(name=name, if_not_exists=if_not_exists)
        self._expect_punctuation("(")
        self._parse_table_element(table)
        while self._match_punctuation(","):
            self._parse_table_element(table)
        self._expect_punctuation(")")
        return table

    def _parse_qualified_name(self) -> str:
        parts = [self._expect_identifier()]
        while self._match_punctuation("."):
            parts.append(self._expect_identifier())
        return ".".join(parts)

    def _parse_table_element(self, table: CreateTable) -> None:
        token = self._peek()
        if token.is_keyword("PRIMARY"):
            self._advance()
            self._expect_keyword("KEY")
            self._expect_punctuation("(")
            table.primary_key.append(self._expect_identifier())
            while self._match_punctuation(","):
                table.primary_key.append(self._expect_identifier())
            self._expect_punctuation(")")
            return
        if token.is_keyword("FOREIGN"):
            self._advance()
            self._expect_keyword("KEY")
            self._expect_punctuation("(")
            local_columns = [self._expect_identifier()]
            while self._match_punctuation(","):
                local_columns.append(self._expect_identifier())
            self._expect_punctuation(")")
            self._expect_keyword("REFERENCES")
            ref_table = self._parse_qualified_name()
            ref_columns: list[str] = []
            if self._match_punctuation("("):
                ref_columns.append(self._expect_identifier())
                while self._match_punctuation(","):
                    ref_columns.append(self._expect_identifier())
                self._expect_punctuation(")")
            table.foreign_keys.append((local_columns, ref_table, ref_columns))
            return
        if token.is_keyword("UNIQUE", "CHECK"):
            # Table-level UNIQUE/CHECK constraints: skip the parenthesised body.
            self._advance()
            if self._match_punctuation("("):
                depth = 1
                while depth > 0:
                    inner = self._advance()
                    if inner.is_punctuation("("):
                        depth += 1
                    elif inner.is_punctuation(")"):
                        depth -= 1
            return
        table.columns.append(self._parse_column_def())

    def _parse_column_def(self) -> ColumnDef:
        name = self._expect_identifier()
        type_name = self._expect_identifier()
        if self._match_punctuation("("):
            parts: list[str] = []
            while not self._peek().is_punctuation(")"):
                parts.append(self._advance().value)
            self._expect_punctuation(")")
            type_name = f"{type_name}({','.join(parts)})"
        column = ColumnDef(name=name, type_name=type_name)
        while True:
            token = self._peek()
            if token.is_keyword("NOT"):
                self._advance()
                self._expect_keyword("NULL")
                column.not_null = True
            elif token.is_keyword("NULL"):
                self._advance()
            elif token.is_keyword("PRIMARY"):
                self._advance()
                self._expect_keyword("KEY")
                column.primary_key = True
                column.not_null = True
            elif token.is_keyword("UNIQUE"):
                self._advance()
                column.unique = True
            elif token.is_keyword("DEFAULT"):
                self._advance()
                column.default = self._parse_primary()
            elif token.is_keyword("REFERENCES"):
                self._advance()
                ref_table = self._parse_qualified_name()
                ref_column = ""
                if self._match_punctuation("("):
                    ref_column = self._expect_identifier()
                    self._expect_punctuation(")")
                column.references = (ref_table, ref_column)
            elif token.is_keyword("CHECK"):
                self._advance()
                self._expect_punctuation("(")
                depth = 1
                while depth > 0:
                    inner = self._advance()
                    if inner.is_punctuation("("):
                        depth += 1
                    elif inner.is_punctuation(")"):
                        depth -= 1
            else:
                break
        return column

    def _parse_insert(self) -> Insert:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._parse_qualified_name()
        columns: list[str] = []
        if self._match_punctuation("("):
            columns.append(self._expect_identifier())
            while self._match_punctuation(","):
                columns.append(self._expect_identifier())
            self._expect_punctuation(")")
        self._expect_keyword("VALUES")
        rows: list[list[Expression]] = []
        rows.append(self._parse_value_row())
        while self._match_punctuation(","):
            rows.append(self._parse_value_row())
        return Insert(table=table, columns=columns, rows=rows)

    def _parse_delete(self) -> Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._parse_qualified_name()
        where = self.parse_expression() if self._match_keyword("WHERE") else None
        return Delete(table=table, where=where)

    def _parse_drop_table(self) -> DropTable:
        self._expect_keyword("DROP")
        self._expect_keyword("TABLE")
        if_exists = False
        if self._match_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        name = self._parse_qualified_name()
        return DropTable(name=name, if_exists=if_exists)

    def _parse_value_row(self) -> list[Expression]:
        self._expect_punctuation("(")
        row = [self.parse_expression()]
        while self._match_punctuation(","):
            row.append(self.parse_expression())
        self._expect_punctuation(")")
        return row


def parse(sql: str) -> Statement:
    """Parse a single SQL statement and return its AST.

    Raises:
        ParseError: if trailing tokens remain after the statement.
    """
    parser = Parser(tokenize(sql))
    statement = parser.parse_statement()
    parser._match_punctuation(";")
    if not parser._at_end():
        leftover = parser._peek()
        raise ParseError(
            f"unexpected trailing input starting at {leftover.value!r}",
            leftover.position,
            leftover.value,
        )
    return statement


def parse_select(sql: str) -> Select:
    """Parse a statement and assert it is a SELECT."""
    statement = parse(sql)
    if not isinstance(statement, Select):
        raise ParseError("expected a SELECT statement")
    return statement


def parse_many(sql: str) -> list[Statement]:
    """Parse a ``;``-separated SQL script into a list of statements."""
    return Parser(tokenize(sql)).parse_script()


def parse_expression(sql: str) -> Expression:
    """Parse a standalone scalar expression (useful in tests)."""
    parser = Parser(tokenize(sql))
    expression = parser.parse_expression()
    if not parser._at_end():
        leftover = parser._peek()
        raise ParseError(
            f"unexpected trailing input starting at {leftover.value!r}",
            leftover.position,
            leftover.value,
        )
    return expression
