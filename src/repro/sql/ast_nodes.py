"""AST node definitions for the SQL dialect used throughout the library.

The AST is deliberately small but complete enough to represent the enterprise
queries BenchPress annotates: SELECT with joins, nested subqueries (in FROM,
WHERE and the select list), CTEs (``WITH``), set operations, aggregation with
GROUP BY / HAVING, ORDER BY / LIMIT, CASE expressions, CAST, IN/EXISTS/BETWEEN
/LIKE predicates, plus the DDL/DML needed by the execution engine
(CREATE TABLE, INSERT, DELETE, DROP TABLE).

Every node is an immutable-ish dataclass; tree walks are implemented by the
analyzer, printer, decomposer and executor rather than by methods on the nodes
themselves, which keeps this module dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expression:
    """Base class for all expression nodes."""


@dataclass
class Literal(Expression):
    """A constant value: number, string, boolean or NULL."""

    value: object  # int | float | str | bool | None


@dataclass
class ColumnRef(Expression):
    """A (possibly qualified) column reference, e.g. ``t.user_id``."""

    name: str
    table: str | None = None

    @property
    def qualified_name(self) -> str:
        """Return ``table.name`` when qualified, otherwise just ``name``."""
        if self.table:
            return f"{self.table}.{self.name}"
        return self.name


@dataclass
class Star(Expression):
    """The ``*`` or ``t.*`` projection."""

    table: str | None = None


@dataclass
class Parameter(Expression):
    """A bind parameter (``?`` or ``:name``)."""

    name: str


class BinaryOperator(Enum):
    """Binary operators supported by the expression evaluator."""

    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    CONCAT = "||"
    EQ = "="
    NEQ = "<>"
    LT = "<"
    LTE = "<="
    GT = ">"
    GTE = ">="
    AND = "AND"
    OR = "OR"


class UnaryOperator(Enum):
    """Unary operators."""

    NEG = "-"
    POS = "+"
    NOT = "NOT"


@dataclass
class BinaryOp(Expression):
    """A binary operation ``left <op> right``."""

    op: BinaryOperator
    left: Expression
    right: Expression


@dataclass
class UnaryOp(Expression):
    """A unary operation ``<op> operand``."""

    op: UnaryOperator
    operand: Expression


@dataclass
class FunctionCall(Expression):
    """A scalar or aggregate function call.

    ``COUNT(*)`` is represented with a single :class:`Star` argument.
    """

    name: str
    args: list[Expression] = field(default_factory=list)
    distinct: bool = False

    @property
    def upper_name(self) -> str:
        """Function name in upper case (SQL function names are case-insensitive)."""
        return self.name.upper()


@dataclass
class Cast(Expression):
    """``CAST(expr AS type)``."""

    operand: Expression
    target_type: str


@dataclass
class CaseWhen(Expression):
    """A searched CASE expression."""

    conditions: list[tuple[Expression, Expression]] = field(default_factory=list)
    else_result: Expression | None = None


@dataclass
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False


@dataclass
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expression
    values: list[Expression] = field(default_factory=list)
    negated: bool = False


@dataclass
class InSubquery(Expression):
    """``expr [NOT] IN (SELECT ...)``."""

    operand: Expression
    subquery: "Select" = None  # type: ignore[assignment]
    negated: bool = False


@dataclass
class Exists(Expression):
    """``[NOT] EXISTS (SELECT ...)``."""

    subquery: "Select" = None  # type: ignore[assignment]
    negated: bool = False


@dataclass
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression = None  # type: ignore[assignment]
    high: Expression = None  # type: ignore[assignment]
    negated: bool = False


@dataclass
class Like(Expression):
    """``expr [NOT] LIKE pattern``."""

    operand: Expression
    pattern: Expression = None  # type: ignore[assignment]
    negated: bool = False


@dataclass
class ScalarSubquery(Expression):
    """A subquery used as a scalar expression, e.g. in the select list."""

    query: "Select" = None  # type: ignore[assignment]


# ---------------------------------------------------------------------------
# Relations (FROM clause items)
# ---------------------------------------------------------------------------


@dataclass
class TableRef:
    """A base-table reference with an optional alias."""

    name: str
    alias: str | None = None

    @property
    def effective_name(self) -> str:
        """Name the relation is visible under in the enclosing query."""
        return self.alias or self.name


@dataclass
class SubqueryRef:
    """A derived table: ``(SELECT ...) AS alias``."""

    query: "Select"
    alias: str

    @property
    def effective_name(self) -> str:
        """Alias the derived table is visible under."""
        return self.alias


class JoinType(Enum):
    """Join flavours supported by the parser and executor."""

    INNER = "INNER"
    LEFT = "LEFT"
    RIGHT = "RIGHT"
    FULL = "FULL"
    CROSS = "CROSS"


@dataclass
class Join:
    """A join between an accumulated left relation and a right relation."""

    join_type: JoinType
    left: "Relation"
    right: "Relation"
    condition: Expression | None = None
    using_columns: list[str] = field(default_factory=list)

    @property
    def effective_name(self) -> str:
        """Joins have no single visible name; used only for uniform typing."""
        return ""


Relation = Union[TableRef, SubqueryRef, Join]


# ---------------------------------------------------------------------------
# Query structure
# ---------------------------------------------------------------------------


@dataclass
class SelectItem:
    """One entry of the select list: an expression with an optional alias."""

    expression: Expression
    alias: str | None = None


@dataclass
class OrderItem:
    """One entry of ORDER BY."""

    expression: Expression
    ascending: bool = True
    nulls_first: bool | None = None


@dataclass
class CTE:
    """One common table expression of a WITH clause."""

    name: str
    query: "Select"
    column_names: list[str] = field(default_factory=list)


class SetOperator(Enum):
    """Set operations combining two SELECTs."""

    UNION = "UNION"
    UNION_ALL = "UNION ALL"
    INTERSECT = "INTERSECT"
    EXCEPT = "EXCEPT"


@dataclass
class Select:
    """A full SELECT statement (optionally with CTEs and set operations).

    When ``set_operator`` is set, ``set_right`` holds the right-hand SELECT and
    the remaining clauses describe the left-hand side.
    """

    select_items: list[SelectItem] = field(default_factory=list)
    distinct: bool = False
    from_relation: Relation | None = None
    where: Expression | None = None
    group_by: list[Expression] = field(default_factory=list)
    having: Expression | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    offset: int | None = None
    ctes: list[CTE] = field(default_factory=list)
    set_operator: SetOperator | None = None
    set_right: "Select | None" = None


# ---------------------------------------------------------------------------
# DDL / DML
# ---------------------------------------------------------------------------


@dataclass
class ColumnDef:
    """A column definition inside CREATE TABLE."""

    name: str
    type_name: str
    not_null: bool = False
    primary_key: bool = False
    unique: bool = False
    default: Expression | None = None
    references: tuple[str, str] | None = None  # (table, column)


@dataclass
class CreateTable:
    """``CREATE TABLE`` statement."""

    name: str
    columns: list[ColumnDef] = field(default_factory=list)
    primary_key: list[str] = field(default_factory=list)
    foreign_keys: list[tuple[list[str], str, list[str]]] = field(default_factory=list)
    if_not_exists: bool = False


@dataclass
class Insert:
    """``INSERT INTO`` statement with literal VALUES rows."""

    table: str
    columns: list[str] = field(default_factory=list)
    rows: list[list[Expression]] = field(default_factory=list)


@dataclass
class Delete:
    """``DELETE FROM`` statement with an optional WHERE filter."""

    table: str
    where: Expression | None = None


@dataclass
class DropTable:
    """``DROP TABLE [IF EXISTS]`` statement."""

    name: str
    if_exists: bool = False


Statement = Union[Select, CreateTable, Insert, Delete, DropTable]
