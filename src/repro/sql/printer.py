"""Render SQL ASTs back to SQL text.

The printer produces deterministic, normalised SQL, which the rest of the
library relies on for:

* round-tripping queries through the parser (property tests assert
  ``parse(print(parse(q)))`` is a fixed point),
* presenting decomposed CTEs to annotators,
* exact-match comparison of normalised SQL strings.
"""

from __future__ import annotations

from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    BinaryOperator,
    Cast,
    CaseWhen,
    ColumnDef,
    ColumnRef,
    CreateTable,
    Exists,
    Expression,
    FunctionCall,
    Insert,
    InList,
    InSubquery,
    IsNull,
    Join,
    JoinType,
    Like,
    Literal,
    OrderItem,
    Parameter,
    Relation,
    ScalarSubquery,
    Select,
    SelectItem,
    Star,
    Statement,
    SubqueryRef,
    TableRef,
    UnaryOp,
    UnaryOperator,
)


def print_statement(statement: Statement) -> str:
    """Render any supported statement to SQL text."""
    if isinstance(statement, Select):
        return print_select(statement)
    if isinstance(statement, CreateTable):
        return _print_create_table(statement)
    if isinstance(statement, Insert):
        return _print_insert(statement)
    raise TypeError(f"unsupported statement type: {type(statement).__name__}")


def print_select(select: Select) -> str:
    """Render a SELECT statement (including WITH clause and set operations)."""
    parts: list[str] = []
    if select.ctes:
        cte_parts = []
        for cte in select.ctes:
            columns = f" ({', '.join(cte.column_names)})" if cte.column_names else ""
            cte_parts.append(f"{cte.name}{columns} AS ({print_select(cte.query)})")
        parts.append("WITH " + ", ".join(cte_parts))
    parts.append(_print_select_body(select))
    return " ".join(parts)


def _print_select_body(select: Select) -> str:
    clauses: list[str] = []
    distinct = "DISTINCT " if select.distinct else ""
    items = ", ".join(_print_select_item(item) for item in select.select_items)
    clauses.append(f"SELECT {distinct}{items}")
    if select.from_relation is not None:
        clauses.append(f"FROM {print_relation(select.from_relation)}")
    if select.where is not None:
        clauses.append(f"WHERE {print_expression(select.where)}")
    if select.group_by:
        clauses.append("GROUP BY " + ", ".join(print_expression(e) for e in select.group_by))
    if select.having is not None:
        clauses.append(f"HAVING {print_expression(select.having)}")

    body = " ".join(clauses)

    if select.set_operator is not None and select.set_right is not None:
        body = f"{body} {select.set_operator.value} {_print_select_body(select.set_right)}"

    trailing: list[str] = []
    if select.order_by:
        trailing.append("ORDER BY " + ", ".join(_print_order_item(item) for item in select.order_by))
    if select.limit is not None:
        limit_clause = f"LIMIT {select.limit}"
        if select.offset is not None:
            limit_clause += f" OFFSET {select.offset}"
        trailing.append(limit_clause)
    if trailing:
        body = body + " " + " ".join(trailing)
    return body


def _print_select_item(item: SelectItem) -> str:
    text = print_expression(item.expression)
    if item.alias:
        return f"{text} AS {item.alias}"
    return text


def _print_order_item(item: OrderItem) -> str:
    text = print_expression(item.expression)
    text += " ASC" if item.ascending else " DESC"
    if item.nulls_first is True:
        text += " NULLS FIRST"
    elif item.nulls_first is False:
        text += " NULLS LAST"
    return text


def print_relation(relation: Relation) -> str:
    """Render a FROM-clause relation."""
    if isinstance(relation, TableRef):
        if relation.alias:
            return f"{relation.name} AS {relation.alias}"
        return relation.name
    if isinstance(relation, SubqueryRef):
        return f"({print_select(relation.query)}) AS {relation.alias}"
    if isinstance(relation, Join):
        left = print_relation(relation.left)
        right = print_relation(relation.right)
        if relation.join_type is JoinType.CROSS and relation.condition is None and not relation.using_columns:
            return f"{left} CROSS JOIN {right}"
        keyword = {
            JoinType.INNER: "JOIN",
            JoinType.LEFT: "LEFT JOIN",
            JoinType.RIGHT: "RIGHT JOIN",
            JoinType.FULL: "FULL JOIN",
            JoinType.CROSS: "CROSS JOIN",
        }[relation.join_type]
        text = f"{left} {keyword} {right}"
        if relation.condition is not None:
            text += f" ON {print_expression(relation.condition)}"
        elif relation.using_columns:
            text += f" USING ({', '.join(relation.using_columns)})"
        return text
    raise TypeError(f"unsupported relation type: {type(relation).__name__}")


_NEEDS_PARENS = (BinaryOp,)


def print_expression(expression: Expression) -> str:
    """Render an expression to SQL text."""
    if isinstance(expression, Literal):
        return _print_literal(expression.value)
    if isinstance(expression, ColumnRef):
        return expression.qualified_name
    if isinstance(expression, Star):
        return f"{expression.table}.*" if expression.table else "*"
    if isinstance(expression, Parameter):
        return expression.name
    if isinstance(expression, BinaryOp):
        left = _print_operand(expression.left)
        right = _print_operand(expression.right)
        return f"{left} {expression.op.value} {right}"
    if isinstance(expression, UnaryOp):
        operand = _print_operand(expression.operand)
        if expression.op is UnaryOperator.NOT:
            return f"NOT {operand}"
        return f"{expression.op.value}{operand}"
    if isinstance(expression, FunctionCall):
        if len(expression.args) == 1 and isinstance(expression.args[0], Star) and expression.args[0].table is None:
            inner = "*"
        else:
            inner = ", ".join(print_expression(arg) for arg in expression.args)
        distinct = "DISTINCT " if expression.distinct else ""
        return f"{expression.upper_name}({distinct}{inner})"
    if isinstance(expression, Cast):
        return f"CAST({print_expression(expression.operand)} AS {expression.target_type})"
    if isinstance(expression, CaseWhen):
        parts = ["CASE"]
        for condition, result in expression.conditions:
            parts.append(f"WHEN {print_expression(condition)} THEN {print_expression(result)}")
        if expression.else_result is not None:
            parts.append(f"ELSE {print_expression(expression.else_result)}")
        parts.append("END")
        return " ".join(parts)
    if isinstance(expression, IsNull):
        negation = " NOT" if expression.negated else ""
        return f"{_print_operand(expression.operand)} IS{negation} NULL"
    if isinstance(expression, InList):
        negation = "NOT " if expression.negated else ""
        values = ", ".join(print_expression(v) for v in expression.values)
        return f"{_print_operand(expression.operand)} {negation}IN ({values})"
    if isinstance(expression, InSubquery):
        negation = "NOT " if expression.negated else ""
        return f"{_print_operand(expression.operand)} {negation}IN ({print_select(expression.subquery)})"
    if isinstance(expression, Exists):
        negation = "NOT " if expression.negated else ""
        return f"{negation}EXISTS ({print_select(expression.subquery)})"
    if isinstance(expression, Between):
        negation = "NOT " if expression.negated else ""
        return (
            f"{_print_operand(expression.operand)} {negation}BETWEEN "
            f"{_print_operand(expression.low)} AND {_print_operand(expression.high)}"
        )
    if isinstance(expression, Like):
        negation = "NOT " if expression.negated else ""
        return f"{_print_operand(expression.operand)} {negation}LIKE {print_expression(expression.pattern)}"
    if isinstance(expression, ScalarSubquery):
        return f"({print_select(expression.query)})"
    raise TypeError(f"unsupported expression type: {type(expression).__name__}")


def _print_operand(expression: Expression) -> str:
    """Print an operand, parenthesising compound operands to preserve grouping."""
    text = print_expression(expression)
    if isinstance(expression, _NEEDS_PARENS):
        return f"({text})"
    return text


def _print_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float) and value.is_integer():
        return str(value)
    return str(value)


def _print_create_table(statement: CreateTable) -> str:
    elements = [_print_column_def(column) for column in statement.columns]
    if statement.primary_key:
        elements.append(f"PRIMARY KEY ({', '.join(statement.primary_key)})")
    for local_columns, ref_table, ref_columns in statement.foreign_keys:
        clause = f"FOREIGN KEY ({', '.join(local_columns)}) REFERENCES {ref_table}"
        if ref_columns:
            clause += f" ({', '.join(ref_columns)})"
        elements.append(clause)
    if_not_exists = "IF NOT EXISTS " if statement.if_not_exists else ""
    return f"CREATE TABLE {if_not_exists}{statement.name} ({', '.join(elements)})"


def _print_column_def(column: ColumnDef) -> str:
    parts = [column.name, column.type_name]
    if column.primary_key:
        parts.append("PRIMARY KEY")
    elif column.not_null:
        parts.append("NOT NULL")
    if column.unique:
        parts.append("UNIQUE")
    if column.default is not None:
        parts.append(f"DEFAULT {print_expression(column.default)}")
    if column.references is not None:
        ref_table, ref_column = column.references
        clause = f"REFERENCES {ref_table}"
        if ref_column:
            clause += f" ({ref_column})"
        parts.append(clause)
    return " ".join(parts)


def _print_insert(statement: Insert) -> str:
    columns = f" ({', '.join(statement.columns)})" if statement.columns else ""
    rows = ", ".join(
        "(" + ", ".join(print_expression(value) for value in row) + ")" for row in statement.rows
    )
    return f"INSERT INTO {statement.table}{columns} VALUES {rows}"
