"""Token definitions for the SQL lexer.

The lexer produces a flat list of :class:`Token` objects which the
recursive-descent parser in :mod:`repro.sql.parser` consumes.  Keeping the
token model tiny and explicit (kind + normalised value + source position)
keeps both the lexer and the parser easy to reason about.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenKind(Enum):
    """Lexical category of a token."""

    KEYWORD = auto()
    IDENTIFIER = auto()
    QUOTED_IDENTIFIER = auto()
    NUMBER = auto()
    STRING = auto()
    OPERATOR = auto()
    PUNCTUATION = auto()
    PARAMETER = auto()
    EOF = auto()


#: Reserved words recognised by the lexer.  Anything else alphabetic becomes an
#: IDENTIFIER.  The set intentionally covers the SQL dialect used by the
#: BenchPress workloads (SELECT queries with CTEs, subqueries, set operations,
#: window-free aggregation) plus enough DDL/DML for the execution engine.
KEYWORDS: frozenset[str] = frozenset(
    {
        "SELECT",
        "DISTINCT",
        "ALL",
        "FROM",
        "WHERE",
        "GROUP",
        "BY",
        "HAVING",
        "ORDER",
        "ASC",
        "DESC",
        "LIMIT",
        "OFFSET",
        "JOIN",
        "INNER",
        "LEFT",
        "RIGHT",
        "FULL",
        "OUTER",
        "CROSS",
        "ON",
        "USING",
        "AS",
        "AND",
        "OR",
        "NOT",
        "IN",
        "EXISTS",
        "BETWEEN",
        "LIKE",
        "IS",
        "NULL",
        "TRUE",
        "FALSE",
        "CASE",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
        "UNION",
        "INTERSECT",
        "EXCEPT",
        "WITH",
        "RECURSIVE",
        "CAST",
        "CREATE",
        "TABLE",
        "PRIMARY",
        "KEY",
        "FOREIGN",
        "REFERENCES",
        "UNIQUE",
        "DEFAULT",
        "CHECK",
        "INSERT",
        "INTO",
        "VALUES",
        "UPDATE",
        "SET",
        "DELETE",
        "DROP",
        "IF",
        "NULLS",
        "FIRST",
        "LAST",
    }
)

#: Multi-character operators, longest first so the lexer can greedily match.
MULTI_CHAR_OPERATORS: tuple[str, ...] = ("<>", "!=", ">=", "<=", "||")

#: Single-character operators.
SINGLE_CHAR_OPERATORS: frozenset[str] = frozenset({"=", "<", ">", "+", "-", "*", "/", "%"})

#: Punctuation characters that become PUNCTUATION tokens.
PUNCTUATION_CHARS: frozenset[str] = frozenset({"(", ")", ",", ".", ";"})


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        kind: Lexical category.
        value: Normalised token text.  Keywords are upper-cased, identifiers
            keep their original case (SQL identifiers are matched
            case-insensitively later), strings hold the unquoted content.
        position: Character offset of the token start in the source text.
        line: 1-based line number of the token start.
    """

    kind: TokenKind
    value: str
    position: int = 0
    line: int = 1

    def is_keyword(self, *names: str) -> bool:
        """Return ``True`` if this token is one of the given keywords."""
        return self.kind is TokenKind.KEYWORD and self.value in names

    def is_punctuation(self, char: str) -> bool:
        """Return ``True`` if this token is the given punctuation character."""
        return self.kind is TokenKind.PUNCTUATION and self.value == char

    def is_operator(self, *ops: str) -> bool:
        """Return ``True`` if this token is one of the given operators."""
        return self.kind is TokenKind.OPERATOR and self.value in ops

    def __str__(self) -> str:  # pragma: no cover - debugging convenience
        return f"{self.kind.name}({self.value!r})"


EOF_TOKEN = Token(TokenKind.EOF, "", -1, -1)
