"""Recomposition of subquery-level NL descriptions (paper step 5.5).

After decomposition, BenchPress generates an NL description for each logical
unit.  Recomposition merges the per-unit descriptions back into a single
coherent explanation of the original nested query.  The merge is rule-based:
unit descriptions are ordered by dependency (leaves first), lightly rewritten
into subordinate clauses, and stitched onto the description of the outer
query block.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sql.decompose import DecompositionResult, QueryUnit

_ROLE_CONNECTORS = {
    "cte": "First, {description}",
    "derived_table": "Using an intermediate result where {description}",
    "where_subquery": "restricted to rows matching a subquery that {description}",
    "scalar_subquery": "together with a computed value that {description}",
}


@dataclass
class RecompositionResult:
    """Merged explanation of a decomposed query."""

    text: str
    unit_descriptions: dict[str, str] = field(default_factory=dict)
    was_nested: bool = False


def _lowercase_first(text: str) -> str:
    if not text:
        return text
    return text[0].lower() + text[1:]


def _strip_terminal_punctuation(text: str) -> str:
    return text.rstrip(" .?!")


def _as_clause(description: str) -> str:
    """Turn a standalone sentence/question into a subordinate clause."""
    cleaned = _strip_terminal_punctuation(description.strip())
    lowered = _lowercase_first(cleaned)
    for prefix in ("what is ", "what are ", "list ", "show ", "find ", "return ", "retrieve "):
        if lowered.startswith(prefix):
            lowered = lowered[len(prefix):]
            break
    return lowered


def recompose(
    decomposition: DecompositionResult, unit_descriptions: dict[str, str]
) -> RecompositionResult:
    """Merge per-unit NL descriptions into one explanation.

    Args:
        decomposition: Result of :func:`repro.sql.decompose.decompose`.
        unit_descriptions: Mapping from unit name to its NL description.  The
            outer unit's description anchors the merged text; missing unit
            descriptions are skipped.

    Returns:
        A :class:`RecompositionResult` whose ``text`` explains the whole query.
    """
    outer = decomposition.outer_unit
    outer_description = unit_descriptions.get(outer.name, "").strip()

    if not decomposition.was_nested or not decomposition.subquery_units:
        text = outer_description or _fallback_description(outer)
        return RecompositionResult(
            text=text,
            unit_descriptions=dict(unit_descriptions),
            was_nested=decomposition.was_nested,
        )

    clauses: list[str] = []
    for unit in decomposition.subquery_units:
        description = unit_descriptions.get(unit.name, "").strip()
        if not description:
            continue
        template = _ROLE_CONNECTORS.get(unit.role, "where {description}")
        clauses.append(template.format(description=_as_clause(description)))

    main_text = _strip_terminal_punctuation(outer_description or _fallback_description(outer))

    if not clauses:
        text = main_text + "."
    else:
        preamble = "; ".join(clauses)
        text = f"{preamble}. Then, {_lowercase_first(main_text)}."

    return RecompositionResult(
        text=text,
        unit_descriptions=dict(unit_descriptions),
        was_nested=True,
    )


def _fallback_description(unit: QueryUnit) -> str:
    """Minimal description used when no NL was produced for the outer block."""
    tables = ", ".join(unit.tables) if unit.tables else "the selected tables"
    columns = ", ".join(unit.columns[:5]) if unit.columns else "the requested values"
    return f"Report {columns} from {tables}"
