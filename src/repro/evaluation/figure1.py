"""Figure 1 harness: execution accuracy of models across benchmarks.

For every benchmark workload and every model, each gold query's NL question is
fed to the simulated text-to-SQL model and the predicted SQL is executed
against the workload database; execution accuracy is the fraction of queries
whose result sets match the gold query's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evaluation.text2sql_models import (
    GENERAL_MODELS,
    SimulatedText2SQLModel,
    best_model_for,
)
from repro.metrics.execution import GoldResultCache, compare_execution
from repro.workloads.base import Workload


@dataclass
class ModelBenchmarkScore:
    """Execution accuracy of one model on one benchmark."""

    model: str
    benchmark: str
    accuracy: float
    evaluated_queries: int
    matches: int


@dataclass
class Figure1Result:
    """All series needed to redraw Figure 1."""

    scores: list[ModelBenchmarkScore] = field(default_factory=list)
    best_models: dict[str, str] = field(default_factory=dict)

    def accuracy(self, model: str, benchmark: str) -> float:
        """Look up one bar of the figure."""
        for score in self.scores:
            if score.model == model and score.benchmark == benchmark:
                return score.accuracy
        raise KeyError(f"no score for model {model!r} on benchmark {benchmark!r}")

    def series(self, model: str) -> dict[str, float]:
        """Accuracy of one model across all benchmarks."""
        return {
            score.benchmark: score.accuracy for score in self.scores if score.model == model
        }

    def enterprise_gap(self, model: str, enterprise: str = "Beaver") -> float:
        """Average public-benchmark accuracy minus enterprise accuracy."""
        series = self.series(model)
        public = [value for name, value in series.items() if name != enterprise]
        if not public or enterprise not in series:
            return 0.0
        return sum(public) / len(public) - series[enterprise]


def evaluate_model_on_workload(
    model: SimulatedText2SQLModel,
    workload: Workload,
    max_queries: int | None = None,
    gold_cache: GoldResultCache | None = None,
) -> ModelBenchmarkScore:
    """Run one model over one workload and compute execution accuracy.

    Pass a shared :class:`GoldResultCache` when scoring several models on the
    same workload so each gold query executes once instead of once per model.
    """
    queries = workload.queries
    if max_queries is not None:
        queries = queries[:max_queries]
    matches = 0
    evaluated = 0
    for query in queries:
        predicted = model.predict(query.gold_nl, query.sql)
        comparison = compare_execution(
            workload.database, query.sql, predicted, gold_cache=gold_cache
        )
        if not comparison.gold_executed:
            continue
        evaluated += 1
        if comparison.match:
            matches += 1
    accuracy = matches / evaluated if evaluated else 0.0
    return ModelBenchmarkScore(
        model=model.name,
        benchmark=workload.name,
        accuracy=accuracy,
        evaluated_queries=evaluated,
        matches=matches,
    )


def run_figure1(
    workloads: dict[str, Workload],
    models: tuple[str, ...] = GENERAL_MODELS,
    include_best_models: bool = True,
    max_queries: int | None = None,
) -> Figure1Result:
    """Evaluate the general models (and per-benchmark best models) everywhere."""
    result = Figure1Result()
    for benchmark_name, workload in workloads.items():
        model_names = list(models)
        if include_best_models:
            best = best_model_for(benchmark_name)
            result.best_models[benchmark_name] = best
            if best not in model_names:
                model_names.append(best)
        # One gold cache per workload: every model is scored against the same
        # gold set, so each gold query executes exactly once per benchmark.
        gold_cache = GoldResultCache(workload.database)
        for model_name in model_names:
            model = SimulatedText2SQLModel.for_workload(model_name, workload)
            result.scores.append(
                evaluate_model_on_workload(
                    model, workload, max_queries=max_queries, gold_cache=gold_cache
                )
            )
    return result
