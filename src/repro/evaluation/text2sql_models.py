"""Simulated text-to-SQL models for the Figure 1 experiment.

Figure 1 of the paper shows that models which look near-perfect on public
benchmarks (Spider/Bird/Fiben) collapse on the enterprise benchmark (Beaver).
We reproduce the *mechanism* behind that shape: a text-to-SQL model reads the
NL question, links it to the schema, and reconstructs SQL — and that process
degrades with query complexity, schema ambiguity and unfamiliar domain
terminology, all of which are much higher in the enterprise workload.

Each simulated model wraps the rule-based NL→SQL generator with a *skill*
profile: how well it reads the question (information retention) and how well
it disambiguates schema entities.  Degradation is applied by describing the
gold query at a model- and complexity-dependent fidelity before regenerating
SQL from that description — i.e. the model "understood" only part of the
question.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.llm.nl2sql import NLToSQLGenerator
from repro.llm.sql2nl import describe_query
from repro.schema.model import DatabaseSchema
from repro.schema.profiler import profile_database
from repro.sql.analyzer import analyze_query
from repro.workloads.base import Workload


@dataclass(frozen=True)
class Text2SQLProfile:
    """Skill profile of one simulated text-to-SQL model."""

    name: str
    comprehension: float        # how much of the question's intent is retained
    linking_skill: float        # schema-entity disambiguation quality
    complexity_sensitivity: float  # how fast comprehension degrades with complexity
    ambiguity_sensitivity: float   # how much low schema uniqueness hurts


#: The models labelled in Figure 1.  miniSeek/askData/Athena++/contextModel are
#: the per-benchmark best models; the GPT-4o and Llama variants are the general
#: baselines shown for every benchmark.  ``comprehension`` values slightly above
#: 1.0 model systems that are effectively saturated on simple public queries
#: (the effective fidelity is capped at 1.0 per query).
TEXT2SQL_PROFILES: dict[str, Text2SQLProfile] = {
    "miniSeek": Text2SQLProfile("miniSeek", 1.06, 0.97, 0.75, 0.8),
    "askData": Text2SQLProfile("askData", 1.04, 0.95, 0.80, 0.8),
    "Athena++": Text2SQLProfile("Athena++", 1.03, 0.94, 0.70, 0.8),
    "contextModel": Text2SQLProfile("contextModel", 1.02, 0.95, 0.90, 0.5),
    "GPT-4o": Text2SQLProfile("GPT-4o", 1.00, 0.92, 1.15, 1.0),
    "Llama3.1-70B-lt": Text2SQLProfile("Llama3.1-70B-lt", 0.97, 0.88, 1.40, 1.1),
    "Llama3.1-8B-lt": Text2SQLProfile("Llama3.1-8B-lt", 0.93, 0.80, 1.80, 1.3),
}


def _stable_unit(*parts: object) -> float:
    digest = hashlib.blake2b("|".join(str(p) for p in parts).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little") / 2**64


class SimulatedText2SQLModel:
    """A text-to-SQL model with a fixed skill profile."""

    def __init__(self, profile: Text2SQLProfile, schema: DatabaseSchema,
                 schema_ambiguity: float = 0.0) -> None:
        self.profile = profile
        self.name = profile.name
        self._schema = schema
        self._schema_ambiguity = schema_ambiguity
        self._generator = NLToSQLGenerator(schema, skill=profile.linking_skill)

    @classmethod
    def for_workload(cls, model_name: str, workload: Workload) -> "SimulatedText2SQLModel":
        """Build a model instance for one workload, deriving schema ambiguity."""
        profile = TEXT2SQL_PROFILES.get(model_name, Text2SQLProfile(model_name, 0.9, 0.85, 1.0, 1.0))
        data_profile = profile_database(workload.database)
        ambiguity = 1.0 - data_profile.uniqueness
        return cls(profile, workload.schema, schema_ambiguity=ambiguity)

    def comprehension_for(self, gold_sql: str) -> float:
        """Effective question-comprehension fidelity for one query.

        Simple queries (complexity load at or below the public-benchmark
        baseline) incur no penalty; the penalty grows with the excess load so
        enterprise-scale queries (deep joins, nesting, many aggregations)
        erode comprehension sharply — the mechanism behind the Figure 1 gap.
        """
        try:
            complexity = analyze_query(gold_sql).complexity
        except Exception:
            return max(0.05, self.profile.comprehension - 0.3)
        load = (
            0.8 * complexity.nestings
            + 0.45 * max(0, complexity.tables - 1)
            + 0.22 * complexity.aggregations
            + 0.12 * complexity.predicates
        )
        excess_load = max(0.0, load - 1.0)
        penalty = 0.12 * excess_load * self.profile.complexity_sensitivity
        ambiguity_penalty = (
            0.10 * self._schema_ambiguity * self.profile.ambiguity_sensitivity
        )
        jitter = (_stable_unit(self.name, gold_sql) - 0.5) * 0.04
        return max(0.05, min(1.0, self.profile.comprehension - penalty - ambiguity_penalty + jitter))

    def predict(self, question: str, gold_sql: str) -> str | None:
        """Predict SQL for a question.

        ``gold_sql`` is used only to derive the degraded intermediate
        understanding (the simulated model never sees it directly as SQL); at
        fidelity 1.0 the intermediate description equals the complete gold
        description, so a perfect model reconstructs an equivalent query.
        """
        fidelity = self.comprehension_for(gold_sql)
        understood = describe_query(
            gold_sql, fidelity=fidelity, seed=(self.name, question)
        )
        result = self._generator.generate(understood)
        return result.sql


def best_model_for(benchmark_name: str) -> str:
    """The per-benchmark best model named above the teal bars in Figure 1."""
    mapping = {
        "spider": "miniSeek",
        "bird": "askData",
        "fiben": "Athena++",
        "beaver": "contextModel",
    }
    return mapping.get(benchmark_name.lower(), "GPT-4o")


#: The general-purpose models shown for every benchmark in Figure 1.
GENERAL_MODELS: tuple[str, ...] = ("GPT-4o", "Llama3.1-70B-lt", "Llama3.1-8B-lt")
