"""Text-to-SQL model simulation and the Figure 1 execution-accuracy harness."""

from repro.evaluation.figure1 import (
    Figure1Result,
    ModelBenchmarkScore,
    evaluate_model_on_workload,
    run_figure1,
)
from repro.evaluation.text2sql_models import (
    GENERAL_MODELS,
    SimulatedText2SQLModel,
    TEXT2SQL_PROFILES,
    Text2SQLProfile,
    best_model_for,
)

__all__ = [
    "Figure1Result",
    "GENERAL_MODELS",
    "ModelBenchmarkScore",
    "SimulatedText2SQLModel",
    "TEXT2SQL_PROFILES",
    "Text2SQLProfile",
    "best_model_for",
    "evaluate_model_on_workload",
    "run_figure1",
]
