"""Text-generation metrics: BLEU, ROUGE and exact match.

The paper's review/export step (step 7) evaluates outputs against ground-truth
annotations with automatic metrics such as exact match and BLEU, and the user
study quantifies quality with ROUGE similarity; these are self-contained
implementations of those metrics.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from repro.retrieval.text import tokenize_text


def exact_match(prediction: str, reference: str, normalize: bool = True) -> bool:
    """Exact-match comparison, optionally on normalised token sequences."""
    if not normalize:
        return prediction == reference
    return tokenize_text(prediction) == tokenize_text(reference)


def _ngram_counts(tokens: list[str], order: int) -> Counter:
    return Counter(tuple(tokens[i : i + order]) for i in range(len(tokens) - order + 1))


def bleu_score(prediction: str, reference: str, max_order: int = 4) -> float:
    """Sentence-level BLEU with uniform n-gram weights and brevity penalty.

    Uses add-one smoothing on higher-order precisions (Lin & Och smoothing),
    which keeps short sentences from collapsing to zero.
    """
    prediction_tokens = tokenize_text(prediction)
    reference_tokens = tokenize_text(reference)
    if not prediction_tokens or not reference_tokens:
        return 0.0

    log_precision_sum = 0.0
    for order in range(1, max_order + 1):
        prediction_ngrams = _ngram_counts(prediction_tokens, order)
        reference_ngrams = _ngram_counts(reference_tokens, order)
        overlap = sum((prediction_ngrams & reference_ngrams).values())
        total = max(1, sum(prediction_ngrams.values()))
        if order == 1:
            precision = overlap / total
            if precision == 0.0:
                return 0.0
        else:
            precision = (overlap + 1.0) / (total + 1.0)
        log_precision_sum += math.log(precision)

    geometric_mean = math.exp(log_precision_sum / max_order)
    brevity_penalty = 1.0
    if len(prediction_tokens) < len(reference_tokens):
        brevity_penalty = math.exp(1.0 - len(reference_tokens) / len(prediction_tokens))
    return brevity_penalty * geometric_mean


@dataclass
class RougeScore:
    """Precision/recall/F1 triple for a ROUGE variant."""

    precision: float
    recall: float
    f1: float


def rouge_n(prediction: str, reference: str, order: int = 1) -> RougeScore:
    """ROUGE-N overlap score."""
    prediction_tokens = tokenize_text(prediction)
    reference_tokens = tokenize_text(reference)
    if len(prediction_tokens) < order or len(reference_tokens) < order:
        return RougeScore(0.0, 0.0, 0.0)
    prediction_ngrams = _ngram_counts(prediction_tokens, order)
    reference_ngrams = _ngram_counts(reference_tokens, order)
    overlap = sum((prediction_ngrams & reference_ngrams).values())
    precision = overlap / max(1, sum(prediction_ngrams.values()))
    recall = overlap / max(1, sum(reference_ngrams.values()))
    f1 = 0.0 if precision + recall == 0 else 2 * precision * recall / (precision + recall)
    return RougeScore(precision=precision, recall=recall, f1=f1)


def _lcs_length(left: list[str], right: list[str]) -> int:
    if not left or not right:
        return 0
    previous = [0] * (len(right) + 1)
    for left_token in left:
        current = [0] * (len(right) + 1)
        for index, right_token in enumerate(right, start=1):
            if left_token == right_token:
                current[index] = previous[index - 1] + 1
            else:
                current[index] = max(previous[index], current[index - 1])
        previous = current
    return previous[-1]


def rouge_l(prediction: str, reference: str) -> RougeScore:
    """ROUGE-L (longest common subsequence) score."""
    prediction_tokens = tokenize_text(prediction)
    reference_tokens = tokenize_text(reference)
    if not prediction_tokens or not reference_tokens:
        return RougeScore(0.0, 0.0, 0.0)
    lcs = _lcs_length(prediction_tokens, reference_tokens)
    precision = lcs / len(prediction_tokens)
    recall = lcs / len(reference_tokens)
    f1 = 0.0 if precision + recall == 0 else 2 * precision * recall / (precision + recall)
    return RougeScore(precision=precision, recall=recall, f1=f1)


def token_f1(prediction: str, reference: str) -> float:
    """Bag-of-tokens F1 (order-insensitive overlap)."""
    prediction_counts = Counter(tokenize_text(prediction))
    reference_counts = Counter(tokenize_text(reference))
    overlap = sum((prediction_counts & reference_counts).values())
    if overlap == 0:
        return 0.0
    precision = overlap / sum(prediction_counts.values())
    recall = overlap / sum(reference_counts.values())
    return 2 * precision * recall / (precision + recall)
