"""The 5-level backtranslation clarity rubric (paper §5.2, Figure 4).

Levels:

1. **Invalid** — the regenerated SQL fails to execute (or none was produced).
2. **Executable but structurally incorrect** — wrong tables, missing joins,
   irrelevant subqueries.
3. **Column-level errors** — structure is right but columns/filters/functions
   or groupings are wrong.
4. **Minor issues** — mostly faithful; small deviations such as missing
   ordering, lost nuance or redundant clauses.
5. **Fully correct** — matches the original in structure and semantics.

Grading is automatic: the regenerated SQL is executed and compared to the
gold query on the same database, and structural/column differences are
derived from the two ASTs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.database import Database
from repro.metrics.execution import execute_safely, results_match
from repro.sql.analyzer import (
    extract_aggregates,
    extract_columns,
    extract_tables,
)
from repro.sql.parser import parse_select


@dataclass
class RubricJudgement:
    """Outcome of grading one backtranslated query."""

    level: int
    reasons: list[str] = field(default_factory=list)

    @property
    def is_fully_correct(self) -> bool:
        """Whether the judgement is Level 5."""
        return self.level == 5


def _set_overlap(gold: list[str], predicted: list[str]) -> float:
    gold_set = {item.lower() for item in gold}
    predicted_set = {item.lower() for item in predicted}
    if not gold_set:
        return 1.0
    return len(gold_set & predicted_set) / len(gold_set)


def grade_backtranslation(
    database: Database, gold_sql: str, predicted_sql: str | None
) -> RubricJudgement:
    """Grade a regenerated SQL query on the 5-level clarity rubric."""
    # Level 1: nothing produced or it does not execute.
    predicted_result, error = execute_safely(database, predicted_sql)
    if predicted_result is None:
        return RubricJudgement(level=1, reasons=[error or "query failed to execute"])

    gold_result, gold_error = execute_safely(database, gold_sql)
    if gold_result is None:
        # The gold query itself must execute for grading; treat as structural
        # mismatch rather than crediting the prediction.
        return RubricJudgement(level=2, reasons=[f"gold query failed: {gold_error}"])

    try:
        gold_ast = parse_select(gold_sql)
        predicted_ast = parse_select(predicted_sql or "")
    except Exception as exc:
        return RubricJudgement(level=2, reasons=[f"could not parse for structural comparison: {exc}"])

    reasons: list[str] = []

    # Structural comparison: tables and join shape.
    gold_tables = extract_tables(gold_ast)
    predicted_tables = extract_tables(predicted_ast)
    table_overlap = _set_overlap(gold_tables, predicted_tables)
    if table_overlap < 0.5:
        reasons.append(
            f"tables differ substantially (gold {gold_tables}, predicted {predicted_tables})"
        )
        return RubricJudgement(level=2, reasons=reasons)

    extra_tables = {t.lower() for t in predicted_tables} - {t.lower() for t in gold_tables}
    if extra_tables and len(extra_tables) >= max(1, len(gold_tables)):
        reasons.append(f"irrelevant tables introduced: {sorted(extra_tables)}")
        return RubricJudgement(level=2, reasons=reasons)

    # Column-level comparison: columns, aggregates, grouping.
    gold_columns = extract_columns(gold_ast)
    predicted_columns = extract_columns(predicted_ast)
    column_overlap = _set_overlap(gold_columns, predicted_columns)

    gold_aggregates = sorted(extract_aggregates(gold_ast))
    predicted_aggregates = sorted(extract_aggregates(predicted_ast))
    aggregates_match = gold_aggregates == predicted_aggregates

    gold_has_group = bool(gold_ast.group_by)
    predicted_has_group = bool(predicted_ast.group_by)

    execution_matches = results_match(
        gold_result, predicted_result, ordered=bool(gold_ast.order_by)
    )

    if column_overlap < 0.6 or not aggregates_match or gold_has_group != predicted_has_group:
        if column_overlap < 0.6:
            reasons.append(f"column overlap only {column_overlap:.0%}")
        if not aggregates_match:
            reasons.append(
                f"aggregates differ (gold {gold_aggregates}, predicted {predicted_aggregates})"
            )
        if gold_has_group != predicted_has_group:
            reasons.append("grouping structure differs")
        # Column-level problems cap the grade at 3 even if execution happens to match.
        return RubricJudgement(level=3, reasons=reasons)

    # Minor-issue detection: ordering, limit, distinct, row-count drift.
    minor_issues: list[str] = []
    if bool(gold_ast.order_by) != bool(predicted_ast.order_by):
        minor_issues.append("ordering differs")
    if (gold_ast.limit or None) != (predicted_ast.limit or None):
        minor_issues.append("limit differs")
    if gold_ast.distinct != predicted_ast.distinct:
        minor_issues.append("distinct differs")
    if bool(gold_ast.having) != bool(predicted_ast.having):
        minor_issues.append("having clause differs")
    if not execution_matches:
        minor_issues.append("result sets differ slightly")

    if execution_matches and not minor_issues:
        return RubricJudgement(level=5, reasons=["results and structure match"])

    if execution_matches and minor_issues:
        # Redundant clauses that do not change the result are minor.
        return RubricJudgement(level=4, reasons=minor_issues)

    # Execution differs but structure/columns align: either minor (ordering /
    # limit nuance) or a filter-level mistake.
    gold_filters = bool(gold_ast.where)
    predicted_filters = bool(predicted_ast.where)
    if gold_filters != predicted_filters:
        reasons.append("filter structure differs")
        return RubricJudgement(level=3, reasons=reasons)
    return RubricJudgement(level=4, reasons=minor_issues or ["small semantic deviation"])


def level_distribution(judgements: list[RubricJudgement]) -> dict[int, int]:
    """Histogram of rubric levels (keys 1..5 always present)."""
    distribution = {level: 0 for level in range(1, 6)}
    for judgement in judgements:
        distribution[judgement.level] += 1
    return distribution


def mean_level(judgements: list[RubricJudgement]) -> float:
    """Average rubric level (0.0 for an empty list)."""
    if not judgements:
        return 0.0
    return sum(judgement.level for judgement in judgements) / len(judgements)
