"""Annotation-quality metrics used by the user-study analysis (Table 3).

The paper measures annotation accuracy by manually inspecting whether key SQL
components — column selections, calculations, grouping/ordering operations —
are clearly described.  The automatic stand-in grades a description by the
weighted coverage of the query's extracted facts, with an accuracy threshold
for the per-query correct/incorrect decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.llm.sql2nl import ESSENTIAL_KINDS, QueryFact, extract_facts, fact_coverage
from repro.sql.parser import parse_select


#: Coverage above which an annotation counts as accurate for Table 3.
ACCURACY_THRESHOLD: float = 0.75


@dataclass
class AnnotationJudgement:
    """Grading of one NL annotation against its gold SQL."""

    coverage: float
    essential_coverage: float
    accurate: bool
    missing_kinds: list[str] = field(default_factory=list)


def judge_annotation(
    sql: str, description: str, threshold: float = ACCURACY_THRESHOLD
) -> AnnotationJudgement:
    """Grade one annotation.

    ``coverage`` is the weighted fraction of all query facts present in the
    description; ``essential_coverage`` restricts to the essential kinds
    (projection, aggregation, tables, filters, grouping).  An annotation is
    *accurate* when overall coverage reaches the threshold and no essential
    fact kind is missed entirely.
    """
    select = parse_select(sql)
    facts = extract_facts(select)
    coverage = fact_coverage(facts, description)

    essential_facts = [fact for fact in facts if fact.kind in ESSENTIAL_KINDS]
    essential_coverage = fact_coverage(essential_facts, description) if essential_facts else 1.0

    missing_kinds = _missing_kinds(facts, description)
    essential_missing = [kind for kind in missing_kinds if kind in ESSENTIAL_KINDS]
    accurate = coverage >= threshold and not essential_missing
    return AnnotationJudgement(
        coverage=coverage,
        essential_coverage=essential_coverage,
        accurate=accurate,
        missing_kinds=missing_kinds,
    )


def _missing_kinds(facts: list[QueryFact], description: str) -> list[str]:
    from repro.retrieval.text import tokenize_text

    description_tokens = set(tokenize_text(description))
    present_by_kind: dict[str, bool] = {}
    for fact in facts:
        fact_tokens = set(tokenize_text(fact.text)) - {"the", "a", "an", "of", "in"}
        overlap = (
            len(fact_tokens & description_tokens) / len(fact_tokens) if fact_tokens else 1.0
        )
        present = overlap >= 0.6
        present_by_kind[fact.kind] = present_by_kind.get(fact.kind, False) or present
    return sorted(kind for kind, present in present_by_kind.items() if not present)


def annotation_accuracy(
    pairs: list[tuple[str, str]], threshold: float = ACCURACY_THRESHOLD
) -> float:
    """Fraction of (sql, description) pairs judged accurate."""
    if not pairs:
        return 0.0
    accurate = sum(
        1 for sql, description in pairs if judge_annotation(sql, description, threshold).accurate
    )
    return accurate / len(pairs)


def mean_coverage(pairs: list[tuple[str, str]]) -> float:
    """Average fact coverage over (sql, description) pairs."""
    if not pairs:
        return 0.0
    return sum(judge_annotation(sql, description).coverage for sql, description in pairs) / len(pairs)
