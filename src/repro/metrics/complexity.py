"""Aggregated complexity metrics across query sets and databases.

Produces the rows of the paper's Table 1 (query-level metrics) and Table 2
(data-level metrics), including the relative-difference formatting the paper
uses (percent change of each benchmark with respect to the Beaver DW
baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.database import Database
from repro.errors import MetricError
from repro.schema.profiler import DataProfile, profile_database
from repro.sql.analyzer import analyze_query


#: Column order of Table 1.
TABLE1_METRICS: tuple[str, ...] = (
    "keywords",
    "tokens",
    "tables",
    "columns",
    "aggregations",
    "nestings",
)

#: Column order of Table 2.
TABLE2_METRICS: tuple[str, ...] = (
    "columns_per_table",
    "rows_per_table",
    "tables_per_db",
    "uniqueness",
    "sparsity",
    "data_types",
)


@dataclass
class QuerySetProfile:
    """Average query-level complexity metrics of one benchmark's query set."""

    name: str
    query_count: int
    averages: dict[str, float] = field(default_factory=dict)
    parse_failures: int = 0

    def metric(self, key: str) -> float:
        """Fetch one averaged metric."""
        return self.averages[key]


def profile_query_set(name: str, queries: list[str]) -> QuerySetProfile:
    """Average the Table 1 metrics over a list of SQL queries.

    Queries that fail to parse are counted in ``parse_failures`` and excluded
    from the averages (real logs always contain some noise).
    """
    if not queries:
        raise MetricError(f"query set {name!r} is empty")
    totals = {key: 0.0 for key in TABLE1_METRICS}
    parsed = 0
    failures = 0
    for sql in queries:
        try:
            profile = analyze_query(sql)
        except Exception:
            failures += 1
            continue
        parsed += 1
        metrics = profile.complexity.as_dict()
        for key in TABLE1_METRICS:
            totals[key] += metrics[key]
    if parsed == 0:
        raise MetricError(f"no query in set {name!r} could be parsed")
    averages = {key: totals[key] / parsed for key in TABLE1_METRICS}
    return QuerySetProfile(name=name, query_count=parsed, averages=averages, parse_failures=failures)


@dataclass
class RelativeRow:
    """One benchmark row expressed relative to a baseline (arrow semantics of the paper)."""

    name: str
    relative: dict[str, float] = field(default_factory=dict)

    def arrow(self, key: str) -> str:
        """The paper's arrow notation for one metric."""
        value = self.relative[key]
        if value == 0:
            return "0.0%"
        symbol = "UP" if value > 0 else "DOWN"
        return f"{symbol} {abs(value) * 100:.1f}%"


def relative_to_baseline(
    baseline: dict[str, float], other: dict[str, float], metrics: tuple[str, ...]
) -> dict[str, float]:
    """Signed relative difference of ``other`` vs ``baseline`` for each metric."""
    relative: dict[str, float] = {}
    for key in metrics:
        base = baseline[key]
        value = other[key]
        relative[key] = 0.0 if base == 0 else (value - base) / base
    return relative


def build_table1(profiles: dict[str, QuerySetProfile], baseline_name: str) -> list[RelativeRow]:
    """Build Table 1 rows: the baseline first (absolute), others relative to it."""
    if baseline_name not in profiles:
        raise MetricError(f"baseline {baseline_name!r} missing from profiles")
    baseline = profiles[baseline_name]
    rows = [RelativeRow(name=baseline_name, relative={key: 0.0 for key in TABLE1_METRICS})]
    for name, profile in profiles.items():
        if name == baseline_name:
            continue
        rows.append(
            RelativeRow(
                name=name,
                relative=relative_to_baseline(baseline.averages, profile.averages, TABLE1_METRICS),
            )
        )
    return rows


def profile_databases(databases: dict[str, Database]) -> dict[str, DataProfile]:
    """Profile each benchmark database (Table 2 inputs)."""
    return {name: profile_database(database) for name, database in databases.items()}


def build_table2(profiles: dict[str, DataProfile], baseline_name: str) -> list[RelativeRow]:
    """Build Table 2 rows relative to the baseline database."""
    if baseline_name not in profiles:
        raise MetricError(f"baseline {baseline_name!r} missing from profiles")
    baseline = profiles[baseline_name].as_dict()
    rows = [RelativeRow(name=baseline_name, relative={key: 0.0 for key in TABLE2_METRICS})]
    for name, profile in profiles.items():
        if name == baseline_name:
            continue
        rows.append(
            RelativeRow(
                name=name,
                relative=relative_to_baseline(baseline, profile.as_dict(), TABLE2_METRICS),
            )
        )
    return rows
