"""Evaluation metrics: text generation, execution, rubric, complexity, annotation."""

from repro.metrics.annotation import (
    ACCURACY_THRESHOLD,
    AnnotationJudgement,
    annotation_accuracy,
    judge_annotation,
    mean_coverage,
)
from repro.metrics.complexity import (
    QuerySetProfile,
    RelativeRow,
    TABLE1_METRICS,
    TABLE2_METRICS,
    build_table1,
    build_table2,
    profile_databases,
    profile_query_set,
    relative_to_baseline,
)
from repro.metrics.execution import (
    ExecutionComparison,
    GoldExecution,
    GoldResultCache,
    compare_execution,
    compare_execution_many,
    execute_safely,
    execution_accuracy,
    results_match,
)
from repro.metrics.rubric import (
    RubricJudgement,
    grade_backtranslation,
    level_distribution,
    mean_level,
)
from repro.metrics.textgen import (
    RougeScore,
    bleu_score,
    exact_match,
    rouge_l,
    rouge_n,
    token_f1,
)

__all__ = [
    "ACCURACY_THRESHOLD",
    "AnnotationJudgement",
    "ExecutionComparison",
    "GoldExecution",
    "GoldResultCache",
    "QuerySetProfile",
    "RelativeRow",
    "RougeScore",
    "RubricJudgement",
    "TABLE1_METRICS",
    "TABLE2_METRICS",
    "annotation_accuracy",
    "bleu_score",
    "build_table1",
    "build_table2",
    "compare_execution",
    "compare_execution_many",
    "exact_match",
    "execute_safely",
    "execution_accuracy",
    "grade_backtranslation",
    "judge_annotation",
    "level_distribution",
    "mean_coverage",
    "mean_level",
    "profile_databases",
    "profile_query_set",
    "relative_to_baseline",
    "results_match",
    "rouge_l",
    "rouge_n",
    "token_f1",
]
