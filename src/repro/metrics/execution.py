"""Execution-based SQL metrics.

Execution accuracy — "whether the result of executing the predicted SQL query
matches that of the gold SQL" — is the headline metric of Figure 1.  The
comparison is performed on our in-memory engine: both queries run against the
same populated database and their result multisets are compared (order-
insensitive unless the gold query specifies ORDER BY).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.database import Database
from repro.engine.executor import QueryResult
from repro.engine.types import values_equal
from repro.errors import ReproError
from repro.sql.parser import parse_select


@dataclass
class ExecutionComparison:
    """Outcome of executing and comparing a predicted query against gold."""

    gold_executed: bool
    predicted_executed: bool
    match: bool
    gold_rows: int = 0
    predicted_rows: int = 0
    error: str = ""


def execute_safely(database: Database, sql: str | None) -> tuple[QueryResult | None, str]:
    """Execute SQL, returning ``(result, error_message)`` instead of raising."""
    if sql is None or not str(sql).strip():
        return None, "empty query"
    try:
        return database.execute(sql), ""
    except ReproError as exc:
        return None, str(exc)
    except Exception as exc:  # pragma: no cover - defensive
        return None, f"unexpected error: {exc}"


def _normalise_cell(value: object) -> object:
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, float):
        return round(value, 6)
    return value


def _row_multiset(result: QueryResult) -> dict[tuple, int]:
    counts: dict[tuple, int] = {}
    for row in result.rows:
        key = tuple(_normalise_cell(value) for value in row)
        counts[key] = counts.get(key, 0) + 1
    return counts


def results_match(gold: QueryResult, predicted: QueryResult, ordered: bool = False) -> bool:
    """Compare two result sets.

    ``ordered`` enforces row order (used when the gold query has ORDER BY);
    otherwise rows are compared as multisets.  Column names are ignored —
    only values matter, mirroring the execution-accuracy convention of
    Spider/Bird.
    """
    if len(gold.rows) != len(predicted.rows):
        return False
    if gold.rows and len(gold.rows[0]) != len(predicted.rows[0]):
        return False
    if ordered:
        return all(
            len(gold_row) == len(predicted_row)
            and all(values_equal(_normalise_cell(g), _normalise_cell(p))
                    for g, p in zip(gold_row, predicted_row))
            for gold_row, predicted_row in zip(gold.rows, predicted.rows)
        )
    return _row_multiset(gold) == _row_multiset(predicted)


def compare_execution(
    database: Database, gold_sql: str, predicted_sql: str | None
) -> ExecutionComparison:
    """Execute gold and predicted SQL and compare their results."""
    gold_result, gold_error = execute_safely(database, gold_sql)
    predicted_result, predicted_error = execute_safely(database, predicted_sql)

    if gold_result is None:
        return ExecutionComparison(
            gold_executed=False,
            predicted_executed=predicted_result is not None,
            match=False,
            error=f"gold query failed: {gold_error}",
        )
    if predicted_result is None:
        return ExecutionComparison(
            gold_executed=True,
            predicted_executed=False,
            match=False,
            gold_rows=len(gold_result.rows),
            error=predicted_error,
        )

    ordered = _gold_is_ordered(gold_sql)
    match = results_match(gold_result, predicted_result, ordered=ordered)
    return ExecutionComparison(
        gold_executed=True,
        predicted_executed=True,
        match=match,
        gold_rows=len(gold_result.rows),
        predicted_rows=len(predicted_result.rows),
    )


def _gold_is_ordered(gold_sql: str) -> bool:
    try:
        return bool(parse_select(gold_sql).order_by)
    except Exception:
        return False


def execution_accuracy(
    database: Database, pairs: list[tuple[str, str | None]]
) -> float:
    """Fraction of (gold, predicted) pairs whose execution results match."""
    if not pairs:
        return 0.0
    matches = sum(
        1 for gold_sql, predicted_sql in pairs
        if compare_execution(database, gold_sql, predicted_sql).match
    )
    return matches / len(pairs)
