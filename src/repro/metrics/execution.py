"""Execution-based SQL metrics.

Execution accuracy — "whether the result of executing the predicted SQL query
matches that of the gold SQL" — is the headline metric of Figure 1.  The
comparison is performed on our in-memory engine: both queries run against the
same populated database and their result multisets are compared (order-
insensitive unless the gold query specifies ORDER BY).

Hot-path structure: gold SQL is parsed once through the database's statement
cache and its ORDER BY-ness is read off that same AST (no second parse), and
:class:`GoldResultCache` memoises gold executions so evaluating N models
against the same gold set executes each gold query exactly once.  The cache
is tagged with the database's data version, so any DML between comparisons
invalidates it automatically.

The cache can also *persist* across runs: give it a JSON path plus a workload
fingerprint (:func:`repro.workloads.workload_fingerprint`) and it reloads
memoised gold results when both the fingerprint and the database's data
version still match — deterministic workload builds produce identical data
versions, so re-evaluating the same workload in a fresh process skips every
gold execution.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.engine.database import Database
from repro.engine.executor import QueryResult
from repro.engine.types import values_equal
from repro.errors import ReproError
from repro.sql.ast_nodes import Select


@dataclass
class ExecutionComparison:
    """Outcome of executing and comparing a predicted query against gold."""

    gold_executed: bool
    predicted_executed: bool
    match: bool
    gold_rows: int = 0
    predicted_rows: int = 0
    error: str = ""


@dataclass
class GoldExecution:
    """Memoised execution of one gold query."""

    result: QueryResult | None
    error: str
    ordered: bool


class GoldResultCache:
    """Memoises gold-query executions against one database.

    Entries are keyed by SQL text and tagged with the database's data version:
    any DML (or DDL) between lookups drops the whole cache, so memoised gold
    results can never go stale.  Share one instance across every model being
    evaluated on the same workload to execute each gold query once.

    With ``persist_path`` (and a workload ``fingerprint``), entries survive
    process restarts: ``save()`` writes them as JSON, and construction reloads
    them when the stored fingerprint *and* data version both match the live
    database — a mismatch silently starts empty, so a stale or foreign file
    can never leak wrong results.  ``loaded`` reports how many entries the
    reload accepted.
    """

    def __init__(
        self,
        database: Database,
        persist_path: str | Path | None = None,
        fingerprint: str = "",
    ) -> None:
        self._database = database
        self._version = database.data_version
        self._entries: dict[str, GoldExecution] = {}
        self._persist_path = Path(persist_path) if persist_path is not None else None
        self._fingerprint = fingerprint
        self.hits = 0
        self.misses = 0
        self.loaded = 0
        if self._persist_path is not None:
            self._load()

    def __len__(self) -> int:
        return len(self._entries)

    def _load(self) -> None:
        try:
            payload = json.loads(self._persist_path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("fingerprint") != self._fingerprint:
            return
        if payload.get("data_version") != self._database.data_version:
            return
        for sql, entry in payload.get("entries", {}).items():
            if not isinstance(entry, dict):
                continue
            columns = entry.get("columns")
            if columns is None:
                result = None
            else:
                result = QueryResult(
                    columns=list(columns),
                    rows=[tuple(row) for row in entry.get("rows", [])],
                )
            self._entries[sql] = GoldExecution(
                result=result,
                error=str(entry.get("error", "")),
                ordered=bool(entry.get("ordered", False)),
            )
        self.loaded = len(self._entries)

    def save(self) -> None:
        """Persist the current entries to ``persist_path`` (no-op without one)."""
        if self._persist_path is None:
            return
        self._validate()
        entries = {}
        for sql, execution in self._entries.items():
            entries[sql] = {
                "columns": None if execution.result is None else execution.result.columns,
                "rows": None
                if execution.result is None
                else [list(row) for row in execution.result.rows],
                "error": execution.error,
                "ordered": execution.ordered,
            }
        payload = {
            "fingerprint": self._fingerprint,
            "data_version": self._version,
            "entries": entries,
        }
        self._persist_path.parent.mkdir(parents=True, exist_ok=True)
        self._persist_path.write_text(json.dumps(payload), encoding="utf-8")

    def _validate(self) -> None:
        if self._version != self._database.data_version:
            self._entries.clear()
            self._version = self._database.data_version

    def get(self, sql: str) -> GoldExecution | None:
        """Return the memoised execution for ``sql``, if still valid."""
        self._validate()
        entry = self._entries.get(sql)
        if entry is not None:
            self.hits += 1
        return entry

    def put(self, sql: str, execution: GoldExecution) -> None:
        """Memoise one gold execution."""
        self._validate()
        self.misses += 1
        self._entries[sql] = execution


def execute_safely(database: Database, sql: str | None) -> tuple[QueryResult | None, str]:
    """Execute SQL, returning ``(result, error_message)`` instead of raising."""
    if sql is None or not str(sql).strip():
        return None, "empty query"
    try:
        statement = database.parse_cached(sql)
        return database.execute_statement(statement), ""
    except ReproError as exc:
        return None, str(exc)
    except Exception as exc:  # pragma: no cover - defensive
        return None, f"unexpected error: {exc}"


def _execute_gold(
    database: Database, gold_sql: str, gold_cache: GoldResultCache | None
) -> GoldExecution:
    """Execute a gold query, reading its ORDER BY-ness off the parsed AST.

    Parses at most once (through the database's statement cache) and consults
    the memoisation cache when one is provided.
    """
    if gold_cache is not None:
        cached = gold_cache.get(gold_sql)
        if cached is not None:
            return cached

    if gold_sql is None or not str(gold_sql).strip():
        execution = GoldExecution(result=None, error="empty query", ordered=False)
    else:
        try:
            statement = database.parse_cached(gold_sql)
        except ReproError as exc:
            execution = GoldExecution(result=None, error=str(exc), ordered=False)
        except Exception as exc:  # pragma: no cover - defensive
            execution = GoldExecution(result=None, error=f"unexpected error: {exc}", ordered=False)
        else:
            ordered = isinstance(statement, Select) and bool(statement.order_by)
            try:
                result = database.execute_statement(statement)
                execution = GoldExecution(result=result, error="", ordered=ordered)
            except ReproError as exc:
                execution = GoldExecution(result=None, error=str(exc), ordered=ordered)
            except Exception as exc:  # pragma: no cover - defensive
                execution = GoldExecution(
                    result=None, error=f"unexpected error: {exc}", ordered=ordered
                )

    if gold_cache is not None:
        gold_cache.put(gold_sql, execution)
    return execution


def _normalise_cell(value: object) -> object:
    if isinstance(value, float) and value.is_integer():
        return int(value)
    if isinstance(value, float):
        return round(value, 6)
    return value


def _row_multiset(result: QueryResult) -> dict[tuple, int]:
    counts: dict[tuple, int] = {}
    for row in result.rows:
        key = tuple(_normalise_cell(value) for value in row)
        counts[key] = counts.get(key, 0) + 1
    return counts


def results_match(gold: QueryResult, predicted: QueryResult, ordered: bool = False) -> bool:
    """Compare two result sets.

    ``ordered`` enforces row order (used when the gold query has ORDER BY);
    otherwise rows are compared as multisets.  Column names are ignored —
    only values matter, mirroring the execution-accuracy convention of
    Spider/Bird.
    """
    if len(gold.rows) != len(predicted.rows):
        return False
    if gold.rows and len(gold.rows[0]) != len(predicted.rows[0]):
        return False
    if ordered:
        return all(
            len(gold_row) == len(predicted_row)
            and all(values_equal(_normalise_cell(g), _normalise_cell(p))
                    for g, p in zip(gold_row, predicted_row))
            for gold_row, predicted_row in zip(gold.rows, predicted.rows)
        )
    return _row_multiset(gold) == _row_multiset(predicted)


def compare_execution(
    database: Database,
    gold_sql: str,
    predicted_sql: str | None,
    gold_cache: GoldResultCache | None = None,
) -> ExecutionComparison:
    """Execute gold and predicted SQL and compare their results.

    Pass a :class:`GoldResultCache` to memoise gold executions across calls
    (e.g. when scoring several models against the same gold set).
    """
    gold = _execute_gold(database, gold_sql, gold_cache)
    predicted_result, predicted_error = execute_safely(database, predicted_sql)

    if gold.result is None:
        return ExecutionComparison(
            gold_executed=False,
            predicted_executed=predicted_result is not None,
            match=False,
            error=f"gold query failed: {gold.error}",
        )
    if predicted_result is None:
        return ExecutionComparison(
            gold_executed=True,
            predicted_executed=False,
            match=False,
            gold_rows=len(gold.result.rows),
            error=predicted_error,
        )

    match = results_match(gold.result, predicted_result, ordered=gold.ordered)
    return ExecutionComparison(
        gold_executed=True,
        predicted_executed=True,
        match=match,
        gold_rows=len(gold.result.rows),
        predicted_rows=len(predicted_result.rows),
    )


def compare_execution_many(
    database: Database,
    pairs: list[tuple[str, str | None]],
    gold_cache: GoldResultCache | None = None,
) -> list[ExecutionComparison]:
    """Compare many (gold, predicted) pairs, executing each gold query once.

    A fresh :class:`GoldResultCache` is created when none is passed, so
    repeated gold queries within ``pairs`` are also deduplicated.
    """
    cache = gold_cache if gold_cache is not None else GoldResultCache(database)
    return [
        compare_execution(database, gold_sql, predicted_sql, gold_cache=cache)
        for gold_sql, predicted_sql in pairs
    ]


def execution_accuracy(
    database: Database, pairs: list[tuple[str, str | None]]
) -> float:
    """Fraction of (gold, predicted) pairs whose execution results match."""
    if not pairs:
        return 0.0
    comparisons = compare_execution_many(database, pairs)
    matches = sum(1 for comparison in comparisons if comparison.match)
    return matches / len(pairs)
