"""Calibrated specifications for the four benchmarks used in the paper.

Each spec is tuned so that the generated workload reproduces the *relative*
complexity profile reported in Tables 1–2 of the paper:

* **Beaver (DW)** — the enterprise baseline: many wide tables, heavy column
  name duplication (low uniqueness), 15% NULL sparsity, long multi-join
  aggregating queries with nesting and CTEs.
* **Spider** — small clean academic schemas, short queries, no sparsity.
* **Bird** — mid-sized schemas with larger tables than Spider but still much
  simpler queries than Beaver.
* **Fiben** — financial analytics benchmark: small tables but many of them,
  analytical (aggregate-heavy, nested) queries that are closer to Beaver in
  structure than Spider/Bird are.

Row counts follow the paper scaled by ``DEFAULT_ROW_SCALE`` (1/100) so that
population stays laptop-fast; the scale is shared by every workload, which
preserves the relative differences Table 2 reports.
"""

from __future__ import annotations

from repro.workloads.base import QueryShapeSpec, WorkloadSpec
from repro.workloads.generator import build_workload
from repro.workloads.base import Workload

#: Shared down-scaling of the paper's rows/table figures.
DEFAULT_ROW_SCALE: float = 0.01

#: Domain vocabulary for the enterprise data-warehouse (Beaver-like) workload.
_BEAVER_VOCABULARY: tuple[str, ...] = (
    "academic", "term", "student", "course", "subject", "enrollment", "degree",
    "moira", "list", "member", "appointment", "employee", "payroll", "grant",
    "award", "building", "room", "facility", "asset", "budget", "ledger",
    "invoice", "vendor", "purchase", "requisition", "library", "network",
    "device", "address", "warehouse", "snapshot", "organization", "unit",
)

_BEAVER_TERMS: dict[str, str] = {
    "J-term": "the one-month January term in the MIT academic calendar",
    "Moira": "the mailing-list management system used for newsletters",
    "DLC": "a department, lab, or center within the organization",
    "warehouse snapshot": "a nightly copy of operational tables into the data warehouse",
    "term code": "a six-digit identifier encoding academic year and season",
}

_SPIDER_VOCABULARY: tuple[str, ...] = (
    "singer", "concert", "stadium", "student", "pet", "teacher", "course",
    "flight", "airport", "employee", "department", "car", "maker", "museum",
    "visitor", "orchestra", "show", "dog", "owner", "city",
)

_BIRD_VOCABULARY: tuple[str, ...] = (
    "account", "client", "loan", "card", "transaction", "district", "order",
    "payment", "school", "satscore", "user", "post", "badge", "comment",
    "player", "match", "team", "season", "movie", "rating",
)

_FIBEN_VOCABULARY: tuple[str, ...] = (
    "company", "security", "holding", "portfolio", "transaction", "officer",
    "industry", "sector", "exchange", "dividend", "earnings", "quarter",
    "analyst", "rating", "bond", "issuer", "fund", "manager", "index", "price",
)


def spider_spec(row_scale: float = DEFAULT_ROW_SCALE, query_count: int = 60) -> WorkloadSpec:
    """Spider-like workload: small clean schemas, simple queries."""
    return WorkloadSpec(
        name="Spider",
        domain="open-domain academic examples",
        table_count=5,
        columns_per_table_min=4,
        columns_per_table_max=7,
        rows_per_table=2_000,
        null_rate=0.0,
        column_name_duplication=0.10,
        type_pool=("INT", "VARCHAR", "REAL", "DATE"),
        query_count=query_count,
        row_scale=row_scale,
        vocabulary=_SPIDER_VOCABULARY,
        query_shape=QueryShapeSpec(
            min_tables=1,
            max_tables=2,
            aggregation_rate=0.35,
            max_aggregates=1,
            extra_projection_max=2,
            predicate_min=0,
            predicate_max=2,
            group_by_rate=0.25,
            order_by_rate=0.3,
            limit_rate=0.2,
            nesting_rate=0.30,
            max_nestings=1,
            cte_rate=0.0,
            distinct_rate=0.1,
        ),
    )


def bird_spec(row_scale: float = DEFAULT_ROW_SCALE, query_count: int = 60) -> WorkloadSpec:
    """Bird-like workload: bigger data than Spider, still fairly simple queries."""
    return WorkloadSpec(
        name="Bird",
        domain="open-domain databases with larger data",
        table_count=45,
        columns_per_table_min=5,
        columns_per_table_max=9,
        rows_per_table=550_000,
        null_rate=0.0,
        column_name_duplication=0.06,
        type_pool=("INT", "VARCHAR", "REAL", "DATE", "BOOLEAN"),
        query_count=query_count,
        row_scale=row_scale,
        vocabulary=_BIRD_VOCABULARY,
        query_shape=QueryShapeSpec(
            min_tables=1,
            max_tables=3,
            aggregation_rate=0.30,
            max_aggregates=1,
            extra_projection_max=2,
            predicate_min=1,
            predicate_max=2,
            group_by_rate=0.2,
            order_by_rate=0.3,
            limit_rate=0.25,
            nesting_rate=0.30,
            max_nestings=1,
            cte_rate=0.0,
            distinct_rate=0.1,
        ),
    )


def fiben_spec(row_scale: float = DEFAULT_ROW_SCALE, query_count: int = 60) -> WorkloadSpec:
    """Fiben-like workload: many narrow tables, analytical nested queries."""
    return WorkloadSpec(
        name="Fiben",
        domain="financial analytics",
        table_count=80,
        columns_per_table_min=2,
        columns_per_table_max=4,
        rows_per_table=76_000,
        null_rate=0.0,
        column_name_duplication=0.15,
        type_pool=("INT", "VARCHAR", "REAL", "DATE", "BOOLEAN"),
        query_count=query_count,
        row_scale=row_scale,
        vocabulary=_FIBEN_VOCABULARY,
        query_shape=QueryShapeSpec(
            min_tables=2,
            max_tables=5,
            aggregation_rate=0.75,
            max_aggregates=2,
            extra_projection_max=1,
            predicate_min=1,
            predicate_max=3,
            group_by_rate=0.55,
            order_by_rate=0.4,
            limit_rate=0.2,
            nesting_rate=0.6,
            max_nestings=2,
            cte_rate=0.15,
            distinct_rate=0.15,
        ),
    )


def beaver_spec(row_scale: float = DEFAULT_ROW_SCALE, query_count: int = 60) -> WorkloadSpec:
    """Beaver(DW)-like enterprise workload: wide ambiguous schemas, complex queries."""
    return WorkloadSpec(
        name="Beaver",
        domain="enterprise data warehouse",
        table_count=99,
        columns_per_table_min=12,
        columns_per_table_max=19,
        rows_per_table=128_000,
        null_rate=0.15,
        column_name_duplication=0.55,
        type_pool=("INT", "VARCHAR", "NUMBER", "DATE"),
        query_count=query_count,
        row_scale=row_scale,
        vocabulary=_BEAVER_VOCABULARY,
        domain_terms=dict(_BEAVER_TERMS),
        query_shape=QueryShapeSpec(
            min_tables=3,
            max_tables=6,
            aggregation_rate=0.95,
            max_aggregates=3,
            extra_projection_max=3,
            predicate_min=2,
            predicate_max=4,
            group_by_rate=0.65,
            order_by_rate=0.5,
            limit_rate=0.3,
            nesting_rate=0.85,
            max_nestings=2,
            cte_rate=0.30,
            distinct_rate=0.2,
        ),
    )


_SPEC_BUILDERS = {
    "spider": spider_spec,
    "bird": bird_spec,
    "fiben": fiben_spec,
    "beaver": beaver_spec,
}

#: Canonical benchmark names in the order the paper lists them.
BENCHMARK_NAMES: tuple[str, ...] = ("Spider", "Bird", "Fiben", "Beaver")


def build_benchmark(
    name: str,
    seed: int = 0,
    row_scale: float = DEFAULT_ROW_SCALE,
    query_count: int = 60,
) -> Workload:
    """Build one of the four supported benchmarks by name (case-insensitive)."""
    key = name.lower()
    if key not in _SPEC_BUILDERS:
        raise ValueError(f"unknown benchmark {name!r}; expected one of {BENCHMARK_NAMES}")
    spec = _SPEC_BUILDERS[key](row_scale=row_scale, query_count=query_count)
    return build_workload(spec, seed=seed)


def build_all_benchmarks(
    seed: int = 0,
    row_scale: float = DEFAULT_ROW_SCALE,
    query_count: int = 60,
) -> dict[str, Workload]:
    """Build all four benchmarks keyed by canonical name."""
    return {
        name: build_benchmark(name, seed=seed, row_scale=row_scale, query_count=query_count)
        for name in BENCHMARK_NAMES
    }
