"""Workload abstractions.

A *workload* bundles everything one benchmark contributes to the experiments:
a populated in-memory database, its logical schema, a set of SQL log queries
(with gold NL descriptions for evaluation), and the specification it was
generated from.

The specifications are calibrated against the complexity statistics the paper
reports in Tables 1–2 so that the synthetic Spider/Bird/Fiben/Beaver stand-ins
reproduce the *relative* differences between public and enterprise workloads.
Row counts are scaled down by ``row_scale`` (default 1/100 of the paper's
figures) to keep pure-Python population fast; the scaling factor is identical
across workloads so relative differences are preserved.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.engine.database import Database
from repro.schema.model import DatabaseSchema


@dataclass
class QueryShapeSpec:
    """Distributional parameters controlling generated query complexity."""

    min_tables: int = 1
    max_tables: int = 2
    aggregation_rate: float = 0.4       # probability a query aggregates at all
    max_aggregates: int = 1             # aggregates per aggregating query
    extra_projection_max: int = 2       # plain projected columns
    predicate_min: int = 0
    predicate_max: int = 2
    group_by_rate: float = 0.3
    order_by_rate: float = 0.3
    limit_rate: float = 0.2
    nesting_rate: float = 0.15          # probability of adding one nested block
    max_nestings: int = 1
    cte_rate: float = 0.0               # probability of wrapping a block as a CTE
    distinct_rate: float = 0.1


@dataclass
class WorkloadSpec:
    """Full generation specification for one benchmark workload."""

    name: str
    domain: str
    table_count: int
    columns_per_table_min: int
    columns_per_table_max: int
    rows_per_table: int
    null_rate: float                      # Table 2 "sparsity"
    column_name_duplication: float        # drives Table 2 "uniqueness" (higher = less unique)
    type_pool: tuple[str, ...]            # declared SQL types to draw from
    query_count: int = 60
    query_shape: QueryShapeSpec = field(default_factory=QueryShapeSpec)
    row_scale: float = 1.0
    vocabulary: tuple[str, ...] = ()
    domain_terms: dict[str, str] = field(default_factory=dict)

    def scaled_rows(self) -> int:
        """Rows per table after applying the row scale (at least 4)."""
        return max(4, int(self.rows_per_table * self.row_scale))


@dataclass
class WorkloadQuery:
    """One SQL log entry of a workload."""

    query_id: str
    sql: str
    gold_nl: str = ""
    tables: list[str] = field(default_factory=list)
    is_nested: bool = False
    dataset: str = ""


@dataclass
class Workload:
    """A generated benchmark workload."""

    name: str
    spec: WorkloadSpec
    database: Database
    schema: DatabaseSchema
    queries: list[WorkloadQuery] = field(default_factory=list)

    @property
    def query_sql(self) -> list[str]:
        """The SQL text of every query in the workload."""
        return [query.sql for query in self.queries]

    def sample_queries(self, count: int, seed: int = 0) -> list[WorkloadQuery]:
        """Deterministically sample ``count`` queries (for the user study)."""
        import random

        rng = random.Random(seed)
        if count >= len(self.queries):
            return list(self.queries)
        return rng.sample(self.queries, count)

    def fingerprint(self) -> str:
        """Stable identity of this workload build (see workload_fingerprint)."""
        return workload_fingerprint(self)


def workload_fingerprint(workload: Workload) -> str:
    """Stable hash identifying a workload build for cross-run gold caching.

    Covers the workload name, every query's SQL text, the table layout and
    the populated row counts — everything that determines gold results apart
    from the database's data version, which the persistent
    :class:`~repro.metrics.execution.GoldResultCache` checks separately.
    """
    digest = hashlib.sha256()
    digest.update(workload.name.encode("utf-8"))
    for query in workload.queries:
        digest.update(b"\x00")
        digest.update(query.sql.encode("utf-8"))
    for table in workload.database.tables():
        digest.update(b"\x01")
        digest.update(table.name.encode("utf-8"))
        digest.update(",".join(table.column_names).encode("utf-8"))
        digest.update(str(len(table)).encode("utf-8"))
    return digest.hexdigest()
