"""Synthetic workload generation: schemas, data, and SQL log queries.

The generator is deterministic given (spec, seed).  It produces:

1. a :class:`~repro.schema.model.DatabaseSchema` whose shape (tables, column
   widths, name duplication, declared types) follows the workload spec,
2. a populated :class:`~repro.engine.database.Database` with the spec's row
   counts, NULL rate and value distributions,
3. a list of executable SQL queries whose structural complexity (joins,
   aggregation, nesting, predicates) follows the spec's
   :class:`~repro.workloads.base.QueryShapeSpec`, each paired with a complete
   gold NL description.

Filter literals are sampled from the generated data so most queries return
non-empty results, which matters for execution-accuracy comparisons.
"""

from __future__ import annotations

import random

from repro.engine.database import Database
from repro.errors import WorkloadError
from repro.llm.sql2nl import describe_query
from repro.schema.model import ColumnSchema, DatabaseSchema, ForeignKey, TableSchema
from repro.sql.analyzer import is_nested
from repro.sql.parser import parse_select
from repro.workloads.base import Workload, WorkloadQuery, WorkloadSpec

#: Column names that recur across enterprise tables (drives low uniqueness).
SHARED_COLUMN_POOL: tuple[tuple[str, str], ...] = (
    ("ID", "INT"),
    ("NAME", "VARCHAR"),
    ("STATUS", "VARCHAR"),
    ("TYPE", "VARCHAR"),
    ("CODE", "VARCHAR"),
    ("DESCRIPTION", "VARCHAR"),
    ("CREATED_DATE", "DATE"),
    ("UPDATED_DATE", "DATE"),
    ("AMOUNT", "NUMBER"),
    ("QUANTITY", "INT"),
    ("USER_ID", "INT"),
    ("DEPARTMENT_ID", "INT"),
    ("IS_ACTIVE", "BOOLEAN"),
    ("CATEGORY", "VARCHAR"),
    ("SOURCE_SYSTEM", "VARCHAR"),
)

#: Categorical string values used to populate text columns.
TEXT_VALUE_POOL: tuple[str, ...] = (
    "ACTIVE", "INACTIVE", "PENDING", "CLOSED", "OPEN", "NEW", "ARCHIVED",
    "NORTH", "SOUTH", "EAST", "WEST", "CENTRAL",
    "GOLD", "SILVER", "BRONZE", "STANDARD", "PREMIUM",
    "STREET", "AVENUE", "CAMPUS", "REMOTE", "ONLINE",
)

_DATE_POOL: tuple[str, ...] = tuple(
    f"20{year:02d}-{month:02d}-{day:02d}"
    for year in range(18, 26)
    for month in (1, 4, 7, 10)
    for day in (1, 15)
)


class WorkloadGenerator:
    """Builds a complete synthetic workload from a specification."""

    def __init__(self, spec: WorkloadSpec, seed: int = 0) -> None:
        self.spec = spec
        self._seed = seed
        self._rng = random.Random((hash(spec.name) & 0xFFFF) * 100003 + seed)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def build(self) -> Workload:
        """Generate schema, data and queries for the workload."""
        schema = self.generate_schema()
        database = self.populate_database(schema)
        queries = self.generate_queries(schema, database)
        return Workload(
            name=self.spec.name,
            spec=self.spec,
            database=database,
            schema=schema,
            queries=queries,
        )

    # ------------------------------------------------------------------
    # schema generation
    # ------------------------------------------------------------------

    def generate_schema(self) -> DatabaseSchema:
        """Generate the logical schema according to the spec."""
        spec = self.spec
        vocabulary = list(spec.vocabulary) or ["entity", "record", "item"]
        schema = DatabaseSchema(name=spec.name, description=f"Synthetic {spec.name} schema")

        # Cross-table registries driving the Table 2 uniqueness metric:
        # ``_schema_column_names`` avoids accidental collisions for names that
        # should stay unique, while ``_reusable_names`` is the pool of domain
        # column names that deliberately recur across tables (the enterprise
        # "same column everywhere" pattern).  The spec's
        # ``column_name_duplication`` controls how often a column slot draws
        # from the reusable pool instead of minting a fresh unique name.
        self._schema_column_names: set[str] = set()
        self._reusable_names: list[tuple[str, str]] = [
            (name, type_name) for name, type_name in SHARED_COLUMN_POOL
        ]
        used_table_names: set[str] = set()
        for table_index in range(spec.table_count):
            table_name = self._table_name(vocabulary, table_index, used_table_names)
            used_table_names.add(table_name.lower())
            width = self._rng.randint(spec.columns_per_table_min, spec.columns_per_table_max)
            columns, foreign_keys = self._table_columns(table_name, width, schema)
            schema.add_table(
                TableSchema(name=table_name, columns=columns, foreign_keys=foreign_keys)
            )
        return schema

    def _table_name(self, vocabulary: list[str], index: int, used: set[str]) -> str:
        suffixes = ("", "", "_ALL", "_HIST", "_DIM", "_FACT", "_V", "_SUMMARY")
        for _ in range(50):
            words = self._rng.sample(vocabulary, k=min(2, len(vocabulary)))
            suffix = self._rng.choice(suffixes) if self.spec.column_name_duplication > 0.3 else ""
            name = "_".join(word.upper() for word in words) + suffix
            if name.lower() not in used:
                return name
        return f"{vocabulary[0].upper()}_{index}"

    def _table_columns(
        self, table_name: str, width: int, schema: DatabaseSchema
    ) -> tuple[list[ColumnSchema], list[ForeignKey]]:
        spec = self.spec
        columns: list[ColumnSchema] = []
        foreign_keys: list[ForeignKey] = []
        used_names: set[str] = set()

        primary_key_name = f"{table_name}_KEY"
        columns.append(
            ColumnSchema(name=primary_key_name, type_name="INT", nullable=False, primary_key=True)
        )
        used_names.add(primary_key_name.lower())

        # Foreign keys to previously created tables (join fabric).
        if schema.tables:
            fk_count = min(len(schema.tables), self._rng.randint(1, 2))
            referenced = self._rng.sample(schema.tables, k=fk_count)
            for target in referenced:
                fk_name = f"{target.name}_KEY"
                if fk_name.lower() in used_names:
                    continue
                columns.append(ColumnSchema(name=fk_name, type_name="INT", nullable=True))
                used_names.add(fk_name.lower())
                foreign_keys.append(
                    ForeignKey(
                        column=fk_name,
                        referenced_table=target.name,
                        referenced_column=target.columns[0].name,
                    )
                )

        vocabulary = list(spec.vocabulary) or ["value"]
        suffixes = ("count", "total", "date", "name", "flag", "score",
                    "rate", "level", "group", "term", "code", "rank", "size", "share")
        attempts = 0
        while len(columns) < width and attempts < width * 40:
            attempts += 1
            duplicated_slot = self._rng.random() < spec.column_name_duplication
            if duplicated_slot and self._reusable_names and self._rng.random() < 0.65:
                name, type_name = self._rng.choice(self._reusable_names)
            else:
                word_a = self._rng.choice(vocabulary)
                word_b = self._rng.choice(suffixes)
                name = f"{word_a.upper()}_{word_b.upper()}"
                type_name = self._rng.choice(list(spec.type_pool))
                if name.lower() in self._schema_column_names and not duplicated_slot:
                    # Keep supposedly-unique names collision-free across tables
                    # by qualifying them with a second vocabulary word.
                    word_c = self._rng.choice(vocabulary)
                    name = f"{word_a.upper()}_{word_c.upper()}_{word_b.upper()}"
                    if name.lower() in self._schema_column_names:
                        continue
                if duplicated_slot:
                    # Freshly minted name that future tables may reuse.
                    self._reusable_names.append((name, type_name))
            if name.lower() in used_names:
                continue
            used_names.add(name.lower())
            self._schema_column_names.add(name.lower())
            columns.append(ColumnSchema(name=name, type_name=type_name, nullable=True))
        return columns, foreign_keys

    # ------------------------------------------------------------------
    # data population
    # ------------------------------------------------------------------

    def populate_database(self, schema: DatabaseSchema) -> Database:
        """Create and populate an engine database matching the schema."""
        database = Database(name=self.spec.name)
        rows_per_table = self.spec.scaled_rows()

        for table in schema.tables:
            database.create_table(
                table.name,
                [(column.name, column.type_name) for column in table.columns],
                primary_key=[column.name for column in table.columns if column.primary_key],
            )

        for table in schema.tables:
            stored = database.table(table.name)
            fk_targets = {
                fk.column.lower(): fk.referenced_table for fk in table.foreign_keys
            }
            row_count = max(2, int(rows_per_table * self._rng.uniform(0.6, 1.4)))
            rows = []
            for row_index in range(row_count):
                row: dict[str, object] = {}
                for column in table.columns:
                    row[column.name] = self._column_value(
                        column, row_index, row_count, fk_targets, database
                    )
                rows.append(row)
            stored.insert_rows(rows)
        return database

    def _column_value(
        self,
        column: ColumnSchema,
        row_index: int,
        row_count: int,
        fk_targets: dict[str, str],
        database: Database,
    ) -> object:
        if column.primary_key:
            return row_index + 1
        if not column.primary_key and self._rng.random() < self.spec.null_rate:
            return None
        if column.name.lower() in fk_targets:
            target = database.table(fk_targets[column.name.lower()])
            target_rows = len(target)
            if target_rows == 0:
                return None
            return self._rng.randint(1, target_rows)

        base_type = column.type_name.upper().split("(")[0]
        if base_type in ("INT", "INTEGER", "BIGINT", "SMALLINT"):
            return self._rng.randint(0, 500)
        if base_type in ("NUMBER", "REAL", "FLOAT", "DECIMAL", "NUMERIC", "DOUBLE"):
            return round(self._rng.uniform(0, 10000), 2)
        if base_type in ("BOOLEAN", "BOOL"):
            return self._rng.random() < 0.5
        if base_type in ("DATE", "DATETIME", "TIMESTAMP"):
            return self._rng.choice(_DATE_POOL)
        return self._rng.choice(TEXT_VALUE_POOL)

    # ------------------------------------------------------------------
    # query generation
    # ------------------------------------------------------------------

    def generate_queries(
        self, schema: DatabaseSchema, database: Database
    ) -> list[WorkloadQuery]:
        """Generate the workload's SQL log with gold NL descriptions."""
        queries: list[WorkloadQuery] = []
        attempts = 0
        max_attempts = self.spec.query_count * 20
        while len(queries) < self.spec.query_count and attempts < max_attempts:
            attempts += 1
            try:
                sql, tables = self._generate_query(schema, database)
                select = parse_select(sql)
                # Queries must execute on the substrate and, while attempts
                # remain plentiful, return at least one row: empty-result
                # queries make execution-accuracy comparisons trivially true
                # and are excluded from real text-to-SQL benchmarks as well.
                result = database.execute(sql)
                strict_phase = attempts < self.spec.query_count * 12
                if strict_phase and not result.rows:
                    continue
            except Exception:
                continue
            query_id = f"{self.spec.name.lower()}-{len(queries) + 1:04d}"
            queries.append(
                WorkloadQuery(
                    query_id=query_id,
                    sql=sql,
                    gold_nl=describe_query(select, fidelity=1.0),
                    tables=tables,
                    is_nested=is_nested(select),
                    dataset=self.spec.name,
                )
            )
        if len(queries) < max(1, self.spec.query_count // 2):
            raise WorkloadError(
                f"workload {self.spec.name!r}: only {len(queries)} of "
                f"{self.spec.query_count} queries could be generated"
            )
        return queries

    def _generate_query(
        self, schema: DatabaseSchema, database: Database
    ) -> tuple[str, list[str]]:
        shape = self.spec.query_shape
        table_count = self._rng.randint(shape.min_tables, shape.max_tables)
        tables = self._pick_join_path(schema, table_count)
        table_names = [table.name for table in tables]

        select_parts: list[str] = []
        group_parts: list[str] = []

        aggregates_added = 0
        if self._rng.random() < shape.group_by_rate:
            group_column = self._pick_column(tables, prefer_text=True)
            if group_column is not None:
                group_parts.append(group_column)
                select_parts.append(group_column)

        if group_parts or self._rng.random() < shape.aggregation_rate:
            aggregate_count = self._rng.randint(1, max(1, shape.max_aggregates))
            for _ in range(aggregate_count):
                select_parts.append(self._aggregate_expression(tables))
                aggregates_added += 1

        extra_columns = self._rng.randint(0, shape.extra_projection_max)
        if not group_parts and aggregates_added == 0:
            for _ in range(extra_columns):
                column = self._pick_column(tables)
                if column is not None and column not in select_parts:
                    select_parts.append(column)
        if not select_parts:
            column = self._pick_column(tables)
            select_parts.append(column if column is not None else "*")

        from_clause = self._join_clause(tables)

        predicates: list[str] = []
        predicate_count = self._rng.randint(shape.predicate_min, shape.predicate_max)
        for _ in range(predicate_count):
            predicate = self._predicate(tables, database)
            if predicate is not None:
                predicates.append(predicate)

        nestings = 0
        if self._rng.random() < shape.nesting_rate:
            nestings = self._rng.randint(1, max(1, shape.max_nestings))
            for _ in range(nestings):
                nested = self._nested_predicate(tables, schema, database)
                if nested is not None:
                    predicates.append(nested)

        sql_parts = ["SELECT"]
        if self._rng.random() < shape.distinct_rate and not group_parts:
            sql_parts.append("DISTINCT")
        sql_parts.append(", ".join(select_parts))
        sql_parts.append(f"FROM {from_clause}")
        if predicates:
            sql_parts.append("WHERE " + " AND ".join(predicates))
        if group_parts:
            sql_parts.append("GROUP BY " + ", ".join(group_parts))
            if aggregates_added and self._rng.random() < 0.35:
                sql_parts.append(f"HAVING COUNT(*) >= {self._rng.randint(1, 3)}")
        if self._rng.random() < shape.order_by_rate:
            order_column = group_parts[0] if group_parts else self._pick_column(tables)
            if order_column is not None:
                direction = self._rng.choice(("ASC", "DESC"))
                sql_parts.append(f"ORDER BY {order_column} {direction}")
        if self._rng.random() < shape.limit_rate:
            sql_parts.append(f"LIMIT {self._rng.choice((5, 10, 20, 50))}")

        sql = " ".join(sql_parts)

        if self._rng.random() < shape.cte_rate and group_parts and aggregates_added:
            sql = self._wrap_in_cte(sql)

        return sql, table_names

    # -- query building blocks -----------------------------------------

    def _pick_join_path(self, schema: DatabaseSchema, count: int) -> list[TableSchema]:
        start = self._rng.choice(schema.tables)
        path = [start]
        seen = {start.name.lower()}
        while len(path) < count:
            candidates: list[TableSchema] = []
            for table in path:
                for foreign_key in table.foreign_keys:
                    target = foreign_key.referenced_table
                    if target.lower() not in seen and schema.has_table(target):
                        candidates.append(schema.table(target))
                for other in schema.tables:
                    if other.name.lower() in seen:
                        continue
                    if any(
                        fk.referenced_table.lower() == table.name.lower()
                        for fk in other.foreign_keys
                    ):
                        candidates.append(other)
            if not candidates:
                break
            chosen = self._rng.choice(candidates)
            path.append(chosen)
            seen.add(chosen.name.lower())
        return path

    def _join_clause(self, tables: list[TableSchema]) -> str:
        clause = tables[0].name
        joined = [tables[0]]
        for table in tables[1:]:
            condition = self._fk_condition(joined, table)
            if condition is None:
                condition = (
                    f"{joined[0].name}.{joined[0].columns[0].name} = "
                    f"{table.name}.{table.columns[0].name}"
                )
            clause += f" JOIN {table.name} ON {condition}"
            joined.append(table)
        return clause

    def _fk_condition(self, joined: list[TableSchema], new_table: TableSchema) -> str | None:
        for table in joined:
            for foreign_key in table.foreign_keys:
                if foreign_key.referenced_table.lower() == new_table.name.lower():
                    return (
                        f"{table.name}.{foreign_key.column} = "
                        f"{new_table.name}.{foreign_key.referenced_column}"
                    )
            for foreign_key in new_table.foreign_keys:
                if foreign_key.referenced_table.lower() == table.name.lower():
                    return (
                        f"{new_table.name}.{foreign_key.column} = "
                        f"{table.name}.{foreign_key.referenced_column}"
                    )
        return None

    def _pick_column(
        self, tables: list[TableSchema], prefer_text: bool = False, numeric: bool = False
    ) -> str | None:
        candidates: list[str] = []
        for table in tables:
            for column in table.columns:
                if column.primary_key:
                    continue
                base_type = column.type_name.upper().split("(")[0]
                is_text = base_type in ("VARCHAR", "TEXT", "CHAR", "VARCHAR2", "STRING")
                is_number = base_type in (
                    "INT", "INTEGER", "NUMBER", "REAL", "FLOAT", "DECIMAL", "NUMERIC", "BIGINT"
                )
                if numeric and not is_number:
                    continue
                if prefer_text and not is_text:
                    continue
                candidates.append(f"{table.name}.{column.name}")
        if not candidates and (prefer_text or numeric):
            return self._pick_column(tables)
        if not candidates:
            return None
        return self._rng.choice(candidates)

    def _aggregate_expression(self, tables: list[TableSchema]) -> str:
        function = self._rng.choice(("COUNT", "COUNT", "SUM", "AVG", "MAX", "MIN"))
        if function == "COUNT" and self._rng.random() < 0.5:
            return "COUNT(*)"
        numeric_column = self._pick_column(tables, numeric=function != "COUNT")
        if numeric_column is None:
            return "COUNT(*)"
        if function == "COUNT" and self._rng.random() < 0.4:
            return f"COUNT(DISTINCT {numeric_column})"
        return f"{function}({numeric_column})"

    def _predicate(self, tables: list[TableSchema], database: Database) -> str | None:
        column_ref = self._pick_column(tables)
        if column_ref is None:
            return None
        table_name, column_name = column_ref.split(".")
        values = [
            value
            for value in database.table(table_name).column_values(column_name)
            if value is not None
        ]
        if not values:
            return f"{column_ref} IS NULL"
        value = self._rng.choice(values)
        if isinstance(value, bool):
            return f"{column_ref} = {'TRUE' if value else 'FALSE'}"
        if isinstance(value, (int, float)):
            operator = self._rng.choice(("=", ">", "<", ">=", "<="))
            rendered = int(value) if float(value).is_integer() else round(value, 2)
            return f"{column_ref} {operator} {rendered}"
        text = str(value).replace("'", "''")
        if self._rng.random() < 0.25:
            return f"{column_ref} LIKE '{text[: max(1, len(text) // 2)]}%'"
        return f"{column_ref} = '{text}'"

    def _nested_predicate(
        self, tables: list[TableSchema], schema: DatabaseSchema, database: Database
    ) -> str | None:
        # IN-subquery over a foreign-key relationship when possible, otherwise a
        # scalar-subquery comparison against an aggregate of the same column.
        table = self._rng.choice(tables)
        for foreign_key in table.foreign_keys:
            if schema.has_table(foreign_key.referenced_table):
                target = schema.table(foreign_key.referenced_table)
                filter_predicate = self._predicate([target], database)
                inner = f"SELECT {target.columns[0].name} FROM {target.name}"
                if filter_predicate is not None:
                    inner += f" WHERE {filter_predicate}"
                return f"{table.name}.{foreign_key.column} IN ({inner})"
        numeric_column = self._pick_column([table], numeric=True)
        if numeric_column is None:
            return None
        _, column_name = numeric_column.split(".")
        return (
            f"{numeric_column} > (SELECT AVG({column_name}) FROM {table.name})"
        )

    def _wrap_in_cte(self, sql: str) -> str:
        return (
            f"WITH summary AS ({sql}) SELECT * FROM summary"
        )


def build_workload(spec: WorkloadSpec, seed: int = 0) -> Workload:
    """Convenience wrapper: generate a workload from a spec."""
    return WorkloadGenerator(spec, seed=seed).build()
