"""Synthetic benchmark workloads (Spider/Bird/Fiben/Beaver stand-ins)."""

from repro.workloads.base import (
    QueryShapeSpec,
    Workload,
    WorkloadQuery,
    WorkloadSpec,
    workload_fingerprint,
)
from repro.workloads.benchmarks import (
    BENCHMARK_NAMES,
    DEFAULT_ROW_SCALE,
    beaver_spec,
    bird_spec,
    build_all_benchmarks,
    build_benchmark,
    fiben_spec,
    spider_spec,
)
from repro.workloads.generator import WorkloadGenerator, build_workload

__all__ = [
    "BENCHMARK_NAMES",
    "DEFAULT_ROW_SCALE",
    "QueryShapeSpec",
    "Workload",
    "WorkloadGenerator",
    "WorkloadQuery",
    "WorkloadSpec",
    "beaver_spec",
    "bird_spec",
    "build_all_benchmarks",
    "build_benchmark",
    "build_workload",
    "fiben_spec",
    "spider_spec",
    "workload_fingerprint",
]
