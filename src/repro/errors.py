"""Exception hierarchy shared across the repro library.

All library-specific exceptions derive from :class:`ReproError` so callers can
catch everything raised by the library with a single ``except`` clause while
still being able to discriminate between subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class SQLError(ReproError):
    """Base class for SQL front-end errors (lexing, parsing, analysis)."""


class LexError(SQLError):
    """Raised when the SQL lexer encounters an invalid character sequence."""

    def __init__(self, message: str, position: int = -1, line: int = -1) -> None:
        super().__init__(message)
        self.position = position
        self.line = line


class ParseError(SQLError):
    """Raised when the SQL parser cannot build an AST from a token stream."""

    def __init__(self, message: str, position: int = -1, token: str | None = None) -> None:
        super().__init__(message)
        self.position = position
        self.token = token


class AnalysisError(SQLError):
    """Raised when semantic analysis of a parsed query fails."""


class EngineError(ReproError):
    """Base class for execution-engine errors."""


class CatalogError(EngineError):
    """Raised for unknown tables/columns or duplicate definitions."""


class ExecutionError(EngineError):
    """Raised when query execution fails (type errors, bad references...)."""


class TypeMismatchError(ExecutionError):
    """Raised when an operation is applied to incompatible value types."""


class SchemaError(ReproError):
    """Raised for invalid schema definitions or profile requests."""


class RetrievalError(ReproError):
    """Raised by the retrieval / vector-store subsystem."""


class LLMError(ReproError):
    """Raised by the simulated LLM subsystem."""


class TransientLLMError(LLMError):
    """A retryable LLM failure (rate limit, flaky network, 5xx-style error).

    Retry machinery treats this class — and any exception with a truthy
    ``transient`` attribute — as safe to retry with backoff; everything else
    fails fast.
    """


class LLMTimeoutError(TransientLLMError):
    """An LLM call exceeded its per-call timeout budget."""


class CircuitOpenError(LLMError):
    """An LLM call was fast-failed because its circuit breaker is open.

    Deliberately *not* transient: the whole point of the breaker is to stop
    burning retry budget against a backend that is known to be down.  The
    service layer treats it as a *deferral* signal — the affected project's
    jobs go back to the queue instead of the quarantine.
    """


class DeadlineExceededError(ReproError):
    """An operation ran out of its deadline budget.

    Raised when a :class:`~repro.llm.resilience.Deadline` carried through a
    drain expires before (or during) an LLM call.  Like
    :class:`CircuitOpenError` this is a deferral signal, not a backend
    failure: the work is still valid, there is just no time left for it in
    this drain.
    """


class PipelineError(ReproError):
    """Raised by the BenchPress annotation pipeline orchestration."""


class BackpressureError(PipelineError):
    """A submit was rejected because the tenant's queue is at its limit.

    Raised at admission time when a project already has
    ``TaskConfig.max_pending_per_project`` jobs queued.  Callers should drain
    (or wait for a drain) and resubmit; the job was *not* enqueued.
    """


class ProjectError(ReproError):
    """Raised for workspace/project management problems."""


class IngestionError(ReproError):
    """Raised when SQL logs or schema files cannot be ingested."""


class StudyError(ReproError):
    """Raised by the simulated user-study harness."""


class WorkloadError(ReproError):
    """Raised by synthetic workload generators."""


class MetricError(ReproError):
    """Raised when a metric cannot be computed on the provided inputs."""


class ExportError(ReproError):
    """Raised when exporting annotations to benchmark format fails."""


class JournalError(ReproError):
    """Raised by the durability event journal (I/O, format, replay errors)."""


class DiskFaultError(JournalError):
    """A journal write failed at the OS level (ENOSPC, EIO, failed fsync...).

    Subclass of :class:`JournalError` so every existing "durability errors
    are never swallowed" path still applies; the service additionally treats
    it as the trigger for *degraded mode* (journaled-read-only) instead of
    crashing mid-drain — a full disk should stop writes, not annotators.
    """

    def __init__(self, message: str, errno_value: int | None = None) -> None:
        super().__init__(message)
        self.errno = errno_value


class DegradedModeError(ReproError):
    """A mutating operation was rejected because the service is degraded.

    After a disk fault the service flips to journaled-read-only mode:
    existing annotations, exports and stats stay readable, but submits and
    drains raise this error until an operator recovers the service from its
    (healed) journal."""


class SnapshotError(ReproError):
    """Raised when a service snapshot cannot be written or restored."""
