"""A minimal bounded LRU mapping shared by the retrieval-layer caches.

One implementation for the embed-vector, feature-profile, schema-linking and
query-skeleton caches, so the capacity bound is enforced in exactly one
place.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class LruDict(Generic[K, V]):
    """Bounded mapping with least-recently-used eviction.

    ``max_size <= 0`` disables storage entirely (every ``get`` misses), which
    callers use as an "off" switch.
    """

    def __init__(self, max_size: int) -> None:
        self.max_size = max_size
        self._data: OrderedDict[K, V] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def get(self, key: K) -> V | None:
        """Return the cached value (refreshing its recency), or ``None``."""
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key: K, value: V) -> None:
        """Insert (or refresh) a value, evicting the oldest past capacity."""
        if self.max_size <= 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.max_size:
            self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every cached entry."""
        self._data.clear()
