"""Context retrieval for candidate generation (paper step 4).

For each SQL query (or decomposed subquery) BenchPress retrieves:

* semantically similar prior annotated examples (few-shot guidance), and
* the relevant schema tables *with all their columns* — via SQL parsing when
  the query parses, falling back to embedding/token similarity otherwise.

The combined context grounds the LLM's output in both content and structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.retrieval.cache import LruDict
from repro.retrieval.example_store import AnnotatedExample, ExampleStore
from repro.schema.linking import link_sql_to_schema, link_text_to_schema
from repro.schema.model import DatabaseSchema, TableSchema
from repro.sql.normalizer import lexical_normalize


@dataclass
class RetrievedContext:
    """Everything the prompt builder needs for one query."""

    sql: str
    tables: list[TableSchema] = field(default_factory=list)
    examples: list[AnnotatedExample] = field(default_factory=list)
    ambiguous_columns: dict[str, list[str]] = field(default_factory=dict)
    unresolved_tables: list[str] = field(default_factory=list)

    @property
    def table_names(self) -> list[str]:
        """Names of the retrieved tables."""
        return [table.name for table in self.tables]

    def schema_text(self) -> str:
        """Schema context rendered for the prompt."""
        lines = []
        for table in self.tables:
            columns = ", ".join(column.render() for column in table.columns)
            lines.append(f"TABLE {table.name} ({columns})")
        return "\n".join(lines)


class ContextRetriever:
    """Combines schema linking and example retrieval into one context object."""

    def __init__(
        self,
        schema: DatabaseSchema,
        example_store: ExampleStore | None = None,
        top_k_examples: int = 3,
        max_tables: int = 8,
        linking_cache_size: int = 4096,
    ) -> None:
        self._schema = schema
        self._example_store = example_store or ExampleStore()
        self.top_k_examples = top_k_examples
        self.max_tables = max_tables
        # Schema linking depends only on the (static) schema and the query
        # text, so results are cached keyed on lexically-normalised SQL —
        # repeated retrieval of the same or trivially-reformatted query skips
        # parsing and linking entirely.
        self._linking_cache: LruDict[
            str, tuple[list[TableSchema], list[str], dict[str, list[str]]]
        ] = LruDict(linking_cache_size)
        self._linking_hits = 0
        self._linking_misses = 0

    @property
    def example_store(self) -> ExampleStore:
        """The underlying example store (grows as annotations are accepted)."""
        return self._example_store

    @property
    def schema(self) -> DatabaseSchema:
        """The schema this retriever serves."""
        return self._schema

    def retrieve(self, sql: str, dataset: str | None = None) -> RetrievedContext:
        """Build the retrieval context for one SQL query."""
        tables, unresolved, ambiguous = self._linked(sql)
        examples = self._example_store.retrieve(
            sql, top_k=self.top_k_examples, dataset=dataset
        )
        return RetrievedContext(
            sql=sql,
            tables=tables,
            examples=examples,
            ambiguous_columns=ambiguous,
            unresolved_tables=unresolved,
        )

    def retrieve_batch(
        self,
        sqls: list[str],
        dataset: str | None = None,
        asts: list[object] | None = None,
    ) -> list[RetrievedContext]:
        """Build retrieval contexts for a wave of queries.

        Example retrieval for the whole wave is one matrix product against
        the store; schema linking hits the per-query cache.  ``asts`` may
        supply already-parsed :class:`~repro.sql.ast_nodes.Select` nodes
        (positionally aligned, ``None`` entries allowed) so cache misses skip
        re-parsing.  Equivalent to calling :meth:`retrieve` per query against
        the same store state.
        """
        example_lists = self._example_store.retrieve_many(
            sqls, top_k=self.top_k_examples, dataset=dataset
        )
        contexts: list[RetrievedContext] = []
        for index, (sql, examples) in enumerate(zip(sqls, example_lists)):
            ast = asts[index] if asts is not None else None
            tables, unresolved, ambiguous = self._linked(sql, ast=ast)
            contexts.append(
                RetrievedContext(
                    sql=sql,
                    tables=tables,
                    examples=examples,
                    ambiguous_columns=ambiguous,
                    unresolved_tables=unresolved,
                )
            )
        return contexts

    def record_annotation(
        self, sql: str, nl: str, dataset: str = "", quality: float = 1.0
    ) -> AnnotatedExample:
        """Store an accepted annotation so future retrievals can use it."""
        tables, _, _ = self._linked(sql)
        return self._example_store.add(
            sql, nl, dataset=dataset, tables=[table.name for table in tables], quality=quality
        )

    def linking_cache_info(self) -> dict[str, int]:
        """Hit/miss/size counters for the schema-linking cache."""
        return {
            "hits": self._linking_hits,
            "misses": self._linking_misses,
            "size": len(self._linking_cache),
            "max_size": self._linking_cache.max_size,
        }

    # ------------------------------------------------------------------

    def example_count(self, sql: str, dataset: str | None = None) -> int:
        """How many few-shot examples :meth:`retrieve` would return right now."""
        return self._example_store.retrieve_count(
            sql, top_k=self.top_k_examples, dataset=dataset
        )

    def _linked(
        self, sql: str, ast: object | None = None
    ) -> tuple[list[TableSchema], list[str], dict[str, list[str]]]:
        """Cached (tables, unresolved, ambiguous-columns) for one query.

        Entries are stored under the lexically-normalised SQL (so reformatted
        duplicates share one entry) and aliased under the exact text, which
        keeps repeat lookups free of tokenisation.
        """
        cached = self._linking_cache.get(sql)
        if cached is None:
            normalized = lexical_normalize(sql)
            cached = self._linking_cache.get(normalized)
            if cached is not None:
                self._linking_cache.put(sql, cached)  # exact-text alias
        if cached is not None:
            self._linking_hits += 1
            tables, unresolved, ambiguous = cached
            return list(tables), list(unresolved), dict(ambiguous)
        self._linking_misses += 1
        tables, unresolved = self._relevant_tables(sql, ast=ast)
        ambiguous = self._ambiguous_among(tables)
        entry = (tables, unresolved, ambiguous)
        self._linking_cache.put(normalized, entry)
        if sql != normalized:
            self._linking_cache.put(sql, entry)
        return list(tables), list(unresolved), dict(ambiguous)

    def _relevant_tables(
        self, sql: str, ast: object | None = None
    ) -> tuple[list[TableSchema], list[str]]:
        try:
            linking = link_sql_to_schema(ast if ast is not None else sql, self._schema)
        except Exception:
            linking = link_text_to_schema(sql, self._schema, max_tables=self.max_tables)
        tables: list[TableSchema] = []
        seen: set[str] = set()
        for name in linking.tables:
            key = name.lower()
            if key in seen:
                continue
            seen.add(key)
            tables.append(self._schema.table(name))
            if len(tables) >= self.max_tables:
                break
        if not tables:
            # Fall back to lexical matching over the raw SQL text.
            fallback = link_text_to_schema(sql, self._schema, max_tables=self.max_tables)
            for name in fallback.tables:
                key = name.lower()
                if key not in seen:
                    seen.add(key)
                    tables.append(self._schema.table(name))
        return tables, linking.unresolved_tables

    def _ambiguous_among(self, tables: list[TableSchema]) -> dict[str, list[str]]:
        owners: dict[str, list[str]] = {}
        for table in tables:
            for column in table.columns:
                owners.setdefault(column.name.lower(), []).append(table.name)
        return {name: tabs for name, tabs in owners.items() if len(tabs) > 1}
