"""Text normalisation and tokenisation shared by retrieval and metrics."""

from __future__ import annotations

import re

_WORD = re.compile(r"[A-Za-z_][A-Za-z_0-9]*|\d+(?:\.\d+)?")
_CAMEL_SPLIT = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")

#: Words carrying little semantic weight for similarity purposes.
STOPWORDS: frozenset[str] = frozenset(
    {
        "a",
        "an",
        "the",
        "of",
        "in",
        "on",
        "for",
        "to",
        "and",
        "or",
        "is",
        "are",
        "was",
        "were",
        "be",
        "by",
        "with",
        "as",
        "at",
        "that",
        "this",
        "it",
        "from",
        "select",
        "where",
        "group",
        "order",
    }
)


def tokenize_text(text: str, remove_stopwords: bool = False) -> list[str]:
    """Tokenise arbitrary text (NL or SQL) into lower-case word tokens.

    Identifiers in snake_case or CamelCase are split into their constituent
    words so ``MOIRA_LIST_NAME`` and "Moira list name" share tokens.
    """
    tokens: list[str] = []
    for match in _WORD.finditer(text):
        word = match.group(0)
        decamel = _CAMEL_SPLIT.sub(" ", word)
        for part in re.split(r"[_\s]+", decamel):
            part = part.lower()
            if not part:
                continue
            if remove_stopwords and part in STOPWORDS:
                continue
            tokens.append(part)
    return tokens


def character_ngrams(text: str, n: int = 3) -> list[str]:
    """Character n-grams of the lower-cased text (robust to abbreviations)."""
    compact = re.sub(r"\s+", " ", text.lower()).strip()
    if len(compact) < n:
        return [compact] if compact else []
    return [compact[i : i + n] for i in range(len(compact) - n + 1)]


def normalize_whitespace(text: str) -> str:
    """Collapse runs of whitespace into single spaces and strip the ends."""
    return re.sub(r"\s+", " ", text).strip()


def sentence_case(text: str) -> str:
    """Capitalise the first letter and ensure terminal punctuation."""
    cleaned = normalize_whitespace(text)
    if not cleaned:
        return cleaned
    cleaned = cleaned[0].upper() + cleaned[1:]
    if cleaned[-1] not in ".?!":
        cleaned += "."
    return cleaned
