"""Store of annotated (SQL, NL) examples that grows during a session.

The paper's retrieval step uses "prior annotated queries (which naturally grow
over time)" as few-shot examples.  The example store starts empty (the
cold-start condition described in §5.1) and accumulates accepted annotations
as the annotation loop progresses; it can also be seeded from a public
benchmark when warm-starting.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.errors import RetrievalError
from repro.retrieval.cache import LruDict
from repro.retrieval.embedding import EmbeddingModel
from repro.retrieval.vector_store import SearchHit, ShardedVectorStore
from repro.sql.normalizer import query_skeleton


@dataclass
class AnnotatedExample:
    """One accepted (SQL, NL) pair."""

    example_id: str
    sql: str
    nl: str
    dataset: str = ""
    tables: list[str] = field(default_factory=list)
    quality: float = 1.0


class ExampleStore:
    """Vector-indexed store of accepted annotations.

    The index is sharded by dataset (see :class:`ShardedVectorStore`), so in
    a multi-tenant service each project's retrieval — which always filters on
    its own dataset — scores only that tenant's shard rather than the global
    archive.  Rankings are identical to an unsharded index (all shards share
    one embedding model, so the vectors are the same).
    """

    def __init__(self, model: EmbeddingModel | None = None) -> None:
        self._store = ShardedVectorStore(model, shard_key="dataset")
        self._examples: dict[str, AnnotatedExample] = {}
        self._skeletons: dict[str, str] = {}
        self._query_skeletons: LruDict[str, str] = LruDict(2048)
        self._counter = 0
        #: Monotonic mutation counter; batch schedulers compare versions to
        #: prove that retrieval results taken earlier are still current.
        self.version = 0

    def __len__(self) -> int:
        return len(self._examples)

    def attach_telemetry(self, telemetry) -> None:
        """Point the underlying vector store's search accounting at a sink.

        Call again after :meth:`load_state`, which replaces the store.
        """
        self._store.telemetry = telemetry

    @property
    def is_empty(self) -> bool:
        """True while in the cold-start condition (no prior annotations)."""
        return not self._examples

    def add(self, sql: str, nl: str, dataset: str = "", tables: list[str] | None = None,
            quality: float = 1.0) -> AnnotatedExample:
        """Add an accepted annotation and return the stored example."""
        if not sql.strip() or not nl.strip():
            raise RetrievalError("both SQL and NL must be non-empty to store an example")
        self._counter += 1
        example_id = f"ex-{self._counter:05d}"
        example = AnnotatedExample(
            example_id=example_id,
            sql=sql.strip(),
            nl=nl.strip(),
            dataset=dataset,
            tables=list(tables or []),
            quality=quality,
        )
        self._examples[example_id] = example
        self._skeletons[example_id] = self._query_skeleton(example.sql)
        self.version += 1
        # Index on the SQL text plus the NL so either side retrieves the pair.
        self._store.add(
            example_id,
            f"{example.sql}\n{example.nl}",
            metadata={"dataset": dataset, "quality": quality},
        )
        return example

    def get(self, example_id: str) -> AnnotatedExample:
        """Fetch a stored example by id."""
        if example_id not in self._examples:
            raise RetrievalError(f"unknown example id {example_id!r}")
        return self._examples[example_id]

    def all_examples(self) -> list[AnnotatedExample]:
        """All stored examples in insertion order."""
        return list(self._examples.values())

    def shard_sizes(self) -> dict[object, int]:
        """Example count per dataset shard (multi-tenant introspection)."""
        return self._store.shard_sizes()

    def retrieve(
        self,
        sql: str,
        top_k: int = 3,
        dataset: str | None = None,
        exclude_identical: bool = True,
    ) -> list[AnnotatedExample]:
        """Return the ``top_k`` most similar prior annotations for a query.

        ``exclude_identical`` drops examples whose literal-free skeleton equals
        the query's skeleton, so the store never leaks the gold answer for the
        exact query being annotated.
        """
        if self.is_empty:
            return []
        metadata_filter = {"dataset": dataset} if dataset else None
        hits: list[SearchHit] = self._store.search(
            sql, top_k=top_k + 5, metadata_filter=metadata_filter
        )
        return self._hits_to_examples(sql, hits, top_k, exclude_identical)

    def retrieve_many(
        self,
        sqls: list[str],
        top_k: int = 3,
        dataset: str | None = None,
        exclude_identical: bool = True,
    ) -> list[list[AnnotatedExample]]:
        """Batched :meth:`retrieve` for a wave of queries.

        All queries are scored against the store in one matrix product; the
        per-query post-processing matches the scalar path exactly.
        """
        if not sqls:
            return []
        if self.is_empty:
            return [[] for _ in sqls]
        metadata_filter = {"dataset": dataset} if dataset else None
        hit_lists = self._store.search_batch(
            sqls, top_k=top_k + 5, metadata_filter=metadata_filter
        )
        return [
            self._hits_to_examples(sql, hits, top_k, exclude_identical)
            for sql, hits in zip(sqls, hit_lists)
        ]

    def retrieve_count(
        self,
        sql: str,
        top_k: int = 3,
        dataset: str | None = None,
        exclude_identical: bool = True,
    ) -> int:
        """How many examples :meth:`retrieve` would return right now.

        A light-weight variant used by batch-commit validation: it runs the
        same ranked search but materialises no hit objects.
        """
        if self.is_empty:
            return 0
        metadata_filter = {"dataset": dataset} if dataset else None
        doc_ids = self._store.search_ids(sql, top_k=top_k + 5, metadata_filter=metadata_filter)
        skeleton = self._query_skeleton(sql) if exclude_identical else ""
        count = 0
        for doc_id in doc_ids:
            if exclude_identical and self._skeletons[doc_id] == skeleton:
                continue
            count += 1
            if count >= top_k:
                break
        return count

    def _query_skeleton(self, sql: str) -> str:
        """LRU-cached :func:`query_skeleton` (tokenisation is the hot cost)."""
        skeleton = self._query_skeletons.get(sql)
        if skeleton is None:
            skeleton = query_skeleton(sql)
            self._query_skeletons.put(sql, skeleton)
        return skeleton

    def _hits_to_examples(
        self, sql: str, hits: list[SearchHit], top_k: int, exclude_identical: bool
    ) -> list[AnnotatedExample]:
        skeleton = self._query_skeleton(sql) if exclude_identical else ""
        results: list[AnnotatedExample] = []
        for hit in hits:
            example = self._examples[hit.doc_id]
            if exclude_identical and self._skeletons[hit.doc_id] == skeleton:
                continue
            results.append(example)
            if len(results) >= top_k:
                break
        return results

    def seed_from_pairs(self, pairs: list[tuple[str, str]], dataset: str = "seed") -> int:
        """Warm-start the store from existing (SQL, NL) pairs; returns the count."""
        for sql, nl in pairs:
            self.add(sql, nl, dataset=dataset)
        return len(pairs)

    # ------------------------------------------------------------------
    # durability (snapshot) support
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-safe semantic state (examples + vector index, no caches).

        Query skeletons ride along even though they are a pure function of
        the SQL text: re-deriving them means re-tokenising every stored
        example, which would eat most of the warm-start budget.
        """
        return {
            "counter": self._counter,
            "version": self.version,
            "examples": [asdict(example) for example in self._examples.values()],
            "skeletons": dict(self._skeletons),
            "vector_store": self._store.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshotted store in place.

        Skeletons, embedding vectors and IDF state all come from the
        snapshot, so neither re-tokenisation nor re-embedding happens —
        that is what makes warm start fast.  Snapshots from before skeletons
        were serialised fall back to recomputing them, and snapshots written
        by the pre-sharding single-matrix store migrate transparently (the
        entries are re-routed into per-dataset shards on load).
        """
        self._store = ShardedVectorStore.from_state(state["vector_store"])
        skeletons = state.get("skeletons") or {}
        self._examples = {}
        self._skeletons = {}
        self._query_skeletons = LruDict(2048)
        for entry in state["examples"]:
            example = AnnotatedExample(
                example_id=entry["example_id"],
                sql=entry["sql"],
                nl=entry["nl"],
                dataset=entry.get("dataset", ""),
                tables=list(entry.get("tables", [])),
                quality=entry.get("quality", 1.0),
            )
            self._examples[example.example_id] = example
            skeleton = skeletons.get(example.example_id)
            if skeleton is None:
                skeleton = self._query_skeleton(example.sql)
            self._skeletons[example.example_id] = skeleton
        self._counter = int(state["counter"])
        self.version = int(state["version"])
