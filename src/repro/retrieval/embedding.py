"""Deterministic text embeddings (Sentence-BERT stand-in).

The paper retrieves semantically similar SQL queries and annotations using
dense Sentence-BERT embeddings.  Offline we substitute a deterministic
hashed bag-of-features embedding:

* word tokens (identifier-aware) and character trigrams are hashed into a
  fixed-dimensional vector ("feature hashing"),
* features are weighted by an inverse-document-frequency table that the
  :class:`EmbeddingModel` updates as documents are added,
* vectors are L2-normalised so cosine similarity is a dot product.

This preserves exactly the property RAG needs — lexically/structurally
similar SQL or NL ends up close together — while being dependency-free and
fully reproducible.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

import numpy as np

from repro.retrieval.text import character_ngrams, tokenize_text


def _stable_hash(feature: str) -> int:
    """Stable (process-independent) hash of a feature string."""
    digest = hashlib.blake2b(feature.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


@dataclass
class EmbeddingModel:
    """Hashed bag-of-features embedder with incremental IDF weighting.

    Attributes:
        dimensions: Size of the output vectors.
        use_ngrams: Whether to add character trigram features (helps match
            abbreviations such as ``acad_term`` vs "academic term").
    """

    dimensions: int = 256
    use_ngrams: bool = True
    _document_count: int = 0
    _document_frequency: dict[str, int] = field(default_factory=dict)

    def features(self, text: str) -> list[str]:
        """Extract the feature strings for a text."""
        features = [f"w:{token}" for token in tokenize_text(text)]
        if self.use_ngrams:
            features.extend(f"g:{gram}" for gram in character_ngrams(text, 3))
        return features

    def observe(self, text: str) -> None:
        """Update document-frequency statistics with one document."""
        self._document_count += 1
        for feature in set(self.features(text)):
            self._document_frequency[feature] = self._document_frequency.get(feature, 0) + 1

    def _idf(self, feature: str) -> float:
        if self._document_count == 0:
            return 1.0
        frequency = self._document_frequency.get(feature, 0)
        return math.log((1 + self._document_count) / (1 + frequency)) + 1.0

    def embed(self, text: str) -> np.ndarray:
        """Embed a text into a normalised dense vector."""
        vector = np.zeros(self.dimensions, dtype=np.float64)
        features = self.features(text)
        if not features:
            return vector
        counts: dict[str, int] = {}
        for feature in features:
            counts[feature] = counts.get(feature, 0) + 1
        for feature, count in counts.items():
            weight = (1.0 + math.log(count)) * self._idf(feature)
            hashed = _stable_hash(feature)
            index = hashed % self.dimensions
            sign = 1.0 if (hashed >> 32) % 2 == 0 else -1.0
            vector[index] += sign * weight
        norm = float(np.linalg.norm(vector))
        if norm > 0:
            vector /= norm
        return vector

    def embed_batch(self, texts: list[str]) -> np.ndarray:
        """Embed several texts; returns an array of shape (len(texts), dimensions)."""
        if not texts:
            return np.zeros((0, self.dimensions), dtype=np.float64)
        return np.vstack([self.embed(text) for text in texts])


def cosine_similarity(left: np.ndarray, right: np.ndarray) -> float:
    """Cosine similarity between two vectors (0.0 when either is zero)."""
    left_norm = float(np.linalg.norm(left))
    right_norm = float(np.linalg.norm(right))
    if left_norm == 0.0 or right_norm == 0.0:
        return 0.0
    return float(np.dot(left, right) / (left_norm * right_norm))
