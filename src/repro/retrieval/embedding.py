"""Deterministic text embeddings (Sentence-BERT stand-in).

The paper retrieves semantically similar SQL queries and annotations using
dense Sentence-BERT embeddings.  Offline we substitute a deterministic
hashed bag-of-features embedding:

* word tokens (identifier-aware) and character trigrams are hashed into a
  fixed-dimensional vector ("feature hashing"),
* features are weighted by an inverse-document-frequency table that the
  :class:`EmbeddingModel` updates as documents are added,
* vectors are L2-normalised so cosine similarity is a dot product.

This preserves exactly the property RAG needs — lexically/structurally
similar SQL or NL ends up close together — while being dependency-free and
fully reproducible.

The implementation is layered for throughput: per-text tokenisation/hashing
is cached as an IDF-independent *feature profile* (it survives vocabulary
growth), document frequencies live in a numpy array indexed by interned
feature id (so IDF weighting is vectorized), and finished vectors sit in an
LRU cache that is invalidated whenever :meth:`EmbeddingModel.observe` shifts
the IDF table.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field

import numpy as np

from repro.retrieval.cache import LruDict
from repro.retrieval.text import character_ngrams, tokenize_text


def _stable_hash(feature: str) -> int:
    """Stable (process-independent) hash of a feature string."""
    digest = hashlib.blake2b(feature.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


@dataclass
class _FeatureProfile:
    """IDF-independent part of a text's embedding.

    Tokenisation, n-gram extraction and feature hashing depend only on the
    text, so they are computed once and reused even as the IDF table drifts;
    only the (vectorized) IDF weighting is applied per embed.
    """

    feature_ids: np.ndarray  # interned id per unique feature, first-seen order
    indices: np.ndarray  # hashed vector index per feature
    signed_counts: np.ndarray  # sign * (1 + log(count)) per feature


@dataclass
class EmbeddingModel:
    """Hashed bag-of-features embedder with incremental IDF weighting.

    Attributes:
        dimensions: Size of the output vectors.
        use_ngrams: Whether to add character trigram features (helps match
            abbreviations such as ``acad_term`` vs "academic term").
        cache_size: Capacity of the vector and feature-profile LRU caches.
    """

    dimensions: int = 256
    use_ngrams: bool = True
    cache_size: int = 2048
    _document_count: int = 0
    # feature string -> (id, hashed vector index, sign); hashing runs once
    # per unique feature for the lifetime of the model.
    _feature_meta: dict[str, tuple[int, int, float]] = field(default_factory=dict, repr=False)
    _frequencies: np.ndarray = field(
        default_factory=lambda: np.zeros(1024, dtype=np.float64), repr=False
    )
    _cache: LruDict[str, np.ndarray] = field(default=None, repr=False)  # type: ignore[assignment]
    _cache_hits: int = 0
    _cache_misses: int = 0
    _profiles: LruDict[str, _FeatureProfile] = field(default=None, repr=False)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self._cache = LruDict(self.cache_size)
        self._profiles = LruDict(self.cache_size)

    def features(self, text: str) -> list[str]:
        """Extract the feature strings for a text."""
        features = [f"w:{token}" for token in tokenize_text(text)]
        if self.use_ngrams:
            features.extend(f"g:{gram}" for gram in character_ngrams(text, 3))
        return features

    def observe(self, text: str) -> None:
        """Update document-frequency statistics with one document.

        IDF weights shift with every observation, so any cached embedding
        *vectors* are invalidated here; cached feature profiles stay valid
        (they are IDF-independent).
        """
        self._document_count += 1
        profile = self._profile(text)
        np.add.at(self._frequencies, profile.feature_ids, 1.0)
        self._cache.clear()

    def embed(self, text: str) -> np.ndarray:
        """Embed a text into a normalised dense vector.

        Results are served from an LRU cache keyed on the raw text; the cache
        is cleared whenever :meth:`observe` changes the IDF table, so a cached
        vector is always identical to a freshly computed one.  The returned
        array is marked read-only — callers needing a private copy should
        ``.copy()`` it.
        """
        cached = self._cache.get(text)
        if cached is not None:
            self._cache_hits += 1
            return cached
        self._cache_misses += 1
        vector = self._embed_uncached(text)
        vector.setflags(write=False)
        self._cache.put(text, vector)
        return vector

    def embed_batch(self, texts: list[str]) -> np.ndarray:
        """Embed several texts; returns an array of shape (len(texts), dimensions)."""
        if not texts:
            return np.zeros((0, self.dimensions), dtype=np.float64)
        return np.vstack([self.embed(text) for text in texts])

    def cache_info(self) -> dict[str, int]:
        """Hit/miss/size counters for the embedding-vector cache."""
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "size": len(self._cache),
            "max_size": self.cache_size,
        }

    # ------------------------------------------------------------------
    # durability (snapshot) support
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-safe semantic state: IDF table + vocabulary, no caches.

        Feature hashing (vector index, sign) is deterministic per feature
        string, and feature *ids* are an internal allocation detail: features
        get interned lazily whenever a query is merely embedded, yet only
        :meth:`observe` gives them a document frequency.  So the canonical
        state is the document-bearing features with their frequencies, in
        sorted order — two models that saw different query traffic but the
        same documents serialise identically.
        """
        entries = sorted(
            (feature, float(self._frequencies[meta[0]]))
            for feature, meta in self._feature_meta.items()
            if self._frequencies[meta[0]] > 0
        )
        return {
            "dimensions": self.dimensions,
            "use_ngrams": self.use_ngrams,
            "document_count": self._document_count,
            "features": [feature for feature, _ in entries],
            "frequencies": [frequency for _, frequency in entries],
        }

    @classmethod
    def from_state(cls, state: dict) -> "EmbeddingModel":
        """Rebuild a model whose future embeddings match the snapshotted one."""
        model = cls(
            dimensions=int(state["dimensions"]), use_ngrams=bool(state["use_ngrams"])
        )
        model._document_count = int(state["document_count"])
        for feature in state["features"]:
            model._intern(feature)  # re-derives (id, index, sign); grows the DF table
        frequencies = state["frequencies"]
        model._frequencies[: len(frequencies)] = frequencies
        return model

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _profile(self, text: str) -> _FeatureProfile:
        """Cached tokenisation + hashing for one text (IDF-independent)."""
        profile = self._profiles.get(text)
        if profile is not None:
            return profile
        counts: dict[str, int] = {}
        for feature in self.features(text):
            counts[feature] = counts.get(feature, 0) + 1
        feature_ids = np.empty(len(counts), dtype=np.intp)
        indices = np.empty(len(counts), dtype=np.intp)
        signed_counts = np.empty(len(counts), dtype=np.float64)
        for position, (feature, count) in enumerate(counts.items()):
            feature_id, index, sign = self._intern(feature)
            feature_ids[position] = feature_id
            indices[position] = index
            signed_counts[position] = sign * (1.0 + math.log(count))
        profile = _FeatureProfile(
            feature_ids=feature_ids, indices=indices, signed_counts=signed_counts
        )
        self._profiles.put(text, profile)
        return profile

    def _intern(self, feature: str) -> tuple[int, int, float]:
        """(id, vector index, sign) for a feature; grows the DF table as needed."""
        meta = self._feature_meta.get(feature)
        if meta is None:
            feature_id = len(self._feature_meta)
            hashed = _stable_hash(feature)
            meta = (
                feature_id,
                hashed % self.dimensions,
                1.0 if (hashed >> 32) % 2 == 0 else -1.0,
            )
            self._feature_meta[feature] = meta
            if feature_id >= self._frequencies.shape[0]:
                grown = np.zeros(self._frequencies.shape[0] * 2, dtype=np.float64)
                grown[: self._frequencies.shape[0]] = self._frequencies
                self._frequencies = grown
        return meta

    def _embed_uncached(self, text: str) -> np.ndarray:
        vector = np.zeros(self.dimensions, dtype=np.float64)
        profile = self._profile(text)
        if profile.feature_ids.size == 0:
            return vector
        if self._document_count == 0:
            idf = 1.0
        else:
            idf = (
                np.log(
                    (1 + self._document_count)
                    / (1.0 + self._frequencies[profile.feature_ids])
                )
                + 1.0
            )
        vector += np.bincount(
            profile.indices, weights=profile.signed_counts * idf, minlength=self.dimensions
        )
        norm = float(np.linalg.norm(vector))
        if norm > 0:
            vector /= norm
        return vector


def cosine_similarity(left: np.ndarray, right: np.ndarray) -> float:
    """Cosine similarity between two vectors (0.0 when either is zero)."""
    left_norm = float(np.linalg.norm(left))
    right_norm = float(np.linalg.norm(right))
    if left_norm == 0.0 or right_norm == 0.0:
        return 0.0
    return float(np.dot(left, right) / (left_norm * right_norm))
