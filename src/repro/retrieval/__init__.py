"""Retrieval-augmented generation substrate: embeddings, vector store, examples."""

from repro.retrieval.embedding import EmbeddingModel, cosine_similarity
from repro.retrieval.example_store import AnnotatedExample, ExampleStore
from repro.retrieval.retriever import ContextRetriever, RetrievedContext
from repro.retrieval.text import (
    STOPWORDS,
    character_ngrams,
    normalize_whitespace,
    sentence_case,
    tokenize_text,
)
from repro.retrieval.vector_store import (
    SearchHit,
    ShardedVectorStore,
    VectorEntry,
    VectorStore,
)

__all__ = [
    "AnnotatedExample",
    "ContextRetriever",
    "EmbeddingModel",
    "ExampleStore",
    "RetrievedContext",
    "STOPWORDS",
    "SearchHit",
    "ShardedVectorStore",
    "VectorEntry",
    "VectorStore",
    "character_ngrams",
    "cosine_similarity",
    "normalize_whitespace",
    "sentence_case",
    "tokenize_text",
]
