"""An in-memory vector store with vectorized cosine top-k search.

BenchPress stores uploaded SQL logs and accumulated annotations server-side so
RAG has global access to all documents (paper step 2); this class plays that
role for the reproduction.

Vectors live in one contiguous ``(capacity, dimensions)`` numpy matrix that
grows geometrically as documents are appended, so a search is a single
matrix-vector product followed by ``argpartition`` top-k selection instead of
a Python loop over entries.  Removals tombstone their row and the matrix is
compacted lazily once tombstones dominate.

For multi-tenant service deployments :class:`ShardedVectorStore` layers
shard routing on top: documents are partitioned into per-shard matrices by
one designated metadata key (the archive shards by dataset/database), so a
search filtered on that key scores only its shard's rows — O(shard) instead
of O(global archive) — while unfiltered searches merge the per-shard top-k.
All shards share one :class:`EmbeddingModel`, which keeps the vectors — and
therefore the rankings — identical to an unsharded store over the same
documents (scores agree to floating-point rounding; BLAS products over
differently-partitioned matrices may differ in the last ULP).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import RetrievalError
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.retrieval.embedding import EmbeddingModel

#: Initial number of matrix rows; doubled whenever the store outgrows it.
_INITIAL_CAPACITY = 64
#: Fraction of dead rows that triggers lazy compaction on remove.
_COMPACT_THRESHOLD = 0.5


@dataclass
class VectorEntry:
    """One stored document."""

    doc_id: str
    text: str
    vector: np.ndarray
    metadata: dict[str, object] = field(default_factory=dict)


@dataclass
class SearchHit:
    """One search result."""

    doc_id: str
    text: str
    score: float
    metadata: dict[str, object] = field(default_factory=dict)


class VectorStore:
    """Embeds and indexes documents, supports filtered top-k cosine search."""

    #: Observability sink for search accounting.  Class-level no-op default;
    #: owners (e.g. :class:`~repro.retrieval.example_store.ExampleStore`)
    #: overwrite it per instance.  Shards inside a
    #: :class:`ShardedVectorStore` keep the no-op so routed searches are
    #: counted once, at the routing layer.
    telemetry: Telemetry = NULL_TELEMETRY

    def __init__(self, model: EmbeddingModel | None = None) -> None:
        self._model = model or EmbeddingModel()
        self._entries: dict[str, VectorEntry] = {}
        self._matrix = np.zeros((_INITIAL_CAPACITY, self._model.dimensions), dtype=np.float64)
        self._row_ids: list[str | None] = []  # row index -> doc_id (None = tombstone)
        self._row_of: dict[str, int] = {}  # doc_id -> row index
        self._dead_rows = 0
        self._alive = np.zeros(_INITIAL_CAPACITY, dtype=bool)
        # Lazily-registered boolean row masks, one per (key, value) pair seen
        # in a metadata_filter; kept current on add/remove so filtered search
        # stays a numpy AND instead of a Python loop over entries.
        self._meta_masks: dict[tuple[str, object], np.ndarray] = {}

    @property
    def model(self) -> EmbeddingModel:
        """The embedding model used by this store."""
        return self._model

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._entries

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, doc_id: str, text: str, metadata: dict[str, object] | None = None) -> None:
        """Add (or replace) a document."""
        if not doc_id:
            raise RetrievalError("document id must be non-empty")
        self._model.observe(text)
        self._store_entry(doc_id, text, self._model.embed(text), metadata)

    def add_many(self, documents: list[tuple[str, str, dict[str, object]]]) -> None:
        """Add several ``(doc_id, text, metadata)`` documents.

        All texts are observed *before* any is embedded, so every vector in
        the batch is computed under the same (final) vocabulary instead of
        earlier documents seeing a smaller IDF table than later ones.
        """
        for doc_id, _, _ in documents:
            if not doc_id:
                raise RetrievalError("document id must be non-empty")
        for _, text, _ in documents:
            self._model.observe(text)
        for doc_id, text, metadata in documents:
            self._store_entry(doc_id, text, self._model.embed(text), metadata)

    def remove(self, doc_id: str) -> None:
        """Remove a document; unknown ids raise."""
        if doc_id not in self._entries:
            raise RetrievalError(f"unknown document id {doc_id!r}")
        del self._entries[doc_id]
        row = self._row_of.pop(doc_id)
        self._row_ids[row] = None
        self._alive[row] = False
        self._dead_rows += 1
        if (
            self._dead_rows >= 8
            and self._row_ids
            and self._dead_rows / len(self._row_ids) > _COMPACT_THRESHOLD
        ):
            self._compact()

    def get(self, doc_id: str) -> VectorEntry:
        """Fetch a stored document."""
        if doc_id not in self._entries:
            raise RetrievalError(f"unknown document id {doc_id!r}")
        return self._entries[doc_id]

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def search(
        self,
        query: str,
        top_k: int = 5,
        metadata_filter: dict[str, object] | None = None,
        exclude_ids: set[str] | None = None,
        min_score: float = 0.0,
    ) -> list[SearchHit]:
        """Return the ``top_k`` most similar documents to ``query``.

        ``metadata_filter`` keeps only documents whose metadata contains every
        given key/value pair; ``exclude_ids`` removes specific documents (used
        to avoid retrieving the query itself during leave-one-out evaluation).
        Ties are broken by ascending ``doc_id`` for reproducibility.
        """
        if top_k <= 0 or not self._entries:
            return []
        tel = self.telemetry
        started = time.perf_counter() if tel.enabled else 0.0
        query_vector = self._model.embed(query)
        scores = self._matrix[: len(self._row_ids)] @ query_vector
        hits = self._rows_to_hits(
            self._select_rows(scores, top_k, metadata_filter, exclude_ids, min_score), scores
        )
        if tel.enabled:
            tel.count("retrieval_searches_total", store="flat")
            tel.observe(
                "retrieval_search_seconds", time.perf_counter() - started, store="flat"
            )
        return hits

    def search_ids(
        self,
        query: str,
        top_k: int = 5,
        metadata_filter: dict[str, object] | None = None,
        exclude_ids: set[str] | None = None,
        min_score: float = 0.0,
    ) -> list[str]:
        """Like :meth:`search` but returns only the ranked document ids.

        Used on hot paths (e.g. batch-commit validation) that need the result
        ranking but not hit objects with copied metadata.
        """
        if top_k <= 0 or not self._entries:
            return []
        query_vector = self._model.embed(query)
        scores = self._matrix[: len(self._row_ids)] @ query_vector
        rows = self._select_rows(scores, top_k, metadata_filter, exclude_ids, min_score)
        return [self._row_ids[row] for row in rows]

    def search_batch(
        self,
        queries: list[str],
        top_k: int = 5,
        metadata_filter: dict[str, object] | None = None,
        exclude_ids: set[str] | None = None,
        min_score: float = 0.0,
    ) -> list[list[SearchHit]]:
        """Run :meth:`search` for several queries with one matrix product.

        The queries are embedded together (cache-aware) and scored with the
        *same* matrix-vector expression as :meth:`search`, so batched scores
        are bit-identical to scalar ones — batch schedulers rely on that for
        their sequential-parity guarantee.  Results align positionally with
        ``queries``.
        """
        if not queries:
            return []
        if top_k <= 0 or not self._entries:
            return [[] for _ in queries]
        tel = self.telemetry
        started = time.perf_counter() if tel.enabled else 0.0
        documents = self._matrix[: len(self._row_ids)]
        results: list[list[SearchHit]] = []
        for query in queries:
            scores = documents @ self._model.embed(query)
            results.append(
                self._rows_to_hits(
                    self._select_rows(scores, top_k, metadata_filter, exclude_ids, min_score),
                    scores,
                )
            )
        if tel.enabled:
            tel.count("retrieval_searches_total", len(queries), store="flat")
            tel.observe(
                "retrieval_search_seconds", time.perf_counter() - started, store="flat"
            )
        return results

    def all_ids(self) -> list[str]:
        """Ids of every stored document (insertion order)."""
        return list(self._entries.keys())

    # ------------------------------------------------------------------
    # durability (snapshot) support
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-safe semantic state of the store.

        Each entry's *stored* vector is serialised verbatim: vectors are
        embedded under the IDF table as it stood when the document was added,
        so they cannot be recomputed from text after later additions.  Row
        layout (tombstones, capacity) is not semantic and is rebuilt compact.
        """
        return {
            "model": self._model.state_dict(),
            "entries": [
                {
                    "doc_id": entry.doc_id,
                    "text": entry.text,
                    "vector": entry.vector.tolist(),
                    "metadata": dict(entry.metadata),
                }
                for entry in self._entries.values()
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "VectorStore":
        """Rebuild a store that searches bit-identically to the snapshotted one."""
        store = cls(EmbeddingModel.from_state(state["model"]))
        for entry in state["entries"]:
            vector = np.asarray(entry["vector"], dtype=np.float64)
            vector.setflags(write=False)
            # _store_entry skips observe(): document frequencies were already
            # restored with the model, and these vectors are historical.
            store._store_entry(entry["doc_id"], entry["text"], vector, entry["metadata"])
        return store

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _store_entry(
        self,
        doc_id: str,
        text: str,
        vector: np.ndarray,
        metadata: dict[str, object] | None,
    ) -> None:
        self._entries[doc_id] = VectorEntry(
            doc_id=doc_id,
            text=text,
            vector=vector,
            metadata=dict(metadata or {}),
        )
        row = self._row_of.get(doc_id)
        if row is None:
            row = len(self._row_ids)
            if row >= self._matrix.shape[0]:
                self._grow(row + 1)
            self._row_ids.append(doc_id)
            self._row_of[doc_id] = row
        self._matrix[row] = vector
        self._alive[row] = True
        metadata_view = self._entries[doc_id].metadata
        for (key, value), mask in self._meta_masks.items():
            mask[row] = metadata_view.get(key) == value

    def _grow(self, needed: int) -> None:
        capacity = max(_INITIAL_CAPACITY, self._matrix.shape[0])
        while capacity < needed:
            capacity *= 2
        grown = np.zeros((capacity, self._matrix.shape[1]), dtype=np.float64)
        grown[: self._matrix.shape[0]] = self._matrix
        self._matrix = grown
        self._alive = self._grow_mask(self._alive, capacity)
        for key in list(self._meta_masks):
            self._meta_masks[key] = self._grow_mask(self._meta_masks[key], capacity)

    @staticmethod
    def _grow_mask(mask: np.ndarray, capacity: int) -> np.ndarray:
        grown = np.zeros(capacity, dtype=bool)
        grown[: mask.shape[0]] = mask
        return grown

    def _compact(self) -> None:
        """Drop tombstoned rows, preserving the relative order of live ones."""
        live = [row for row, doc_id in enumerate(self._row_ids) if doc_id is not None]
        self._matrix[: len(live)] = self._matrix[live]
        self._row_ids = [self._row_ids[row] for row in live]
        self._row_of = {doc_id: row for row, doc_id in enumerate(self._row_ids)}
        self._dead_rows = 0
        self._alive[:] = False
        self._alive[: len(live)] = True
        for key, mask in list(self._meta_masks.items()):
            compacted = np.zeros(mask.shape[0], dtype=bool)
            compacted[: len(live)] = mask[live]
            self._meta_masks[key] = compacted

    def _mask_for(self, key: str, value: object) -> np.ndarray:
        """Boolean row mask for one metadata (key, value), built lazily."""
        try:
            mask = self._meta_masks.get((key, value))
        except TypeError:  # unhashable filter value: caller falls back to a scan
            return None  # type: ignore[return-value]
        if mask is None:
            mask = np.zeros(self._matrix.shape[0], dtype=bool)
            for doc_id, row in self._row_of.items():
                mask[row] = self._entries[doc_id].metadata.get(key) == value
            self._meta_masks[(key, value)] = mask
        return mask

    def _select_rows(
        self,
        scores: np.ndarray,
        top_k: int,
        metadata_filter: dict[str, object] | None,
        exclude_ids: set[str] | None,
        min_score: float,
    ) -> list[int]:
        """Rows of the top-k admissible documents, ranked by (-score, doc_id)."""
        row_count = len(scores)
        admissible = (scores >= min_score) & self._alive[:row_count]
        if metadata_filter:
            for key, value in metadata_filter.items():
                mask = self._mask_for(key, value)
                if mask is None:  # unhashable value: rare slow path
                    admissible &= np.array(
                        [
                            doc_id is not None
                            and self._entries[doc_id].metadata.get(key) == value
                            for doc_id in self._row_ids
                        ],
                        dtype=bool,
                    )
                else:
                    admissible &= mask[:row_count]
        candidate_rows = np.flatnonzero(admissible)
        if exclude_ids:
            candidate_rows = candidate_rows[
                [self._row_ids[row] not in exclude_ids for row in candidate_rows]
            ]
        if candidate_rows.size == 0:
            return []

        # Oversample the partition so doc_id tie-breaking stays exact even
        # when equal scores straddle the top-k boundary.
        if candidate_rows.size > top_k:
            candidate_scores = scores[candidate_rows]
            cut = np.argpartition(-candidate_scores, top_k - 1)[:top_k]
            boundary = candidate_scores[cut].min()
            keep = candidate_scores >= boundary
            candidate_rows = candidate_rows[keep]

        rows = sorted(
            (int(row) for row in candidate_rows),
            key=lambda row: (-scores[row], self._row_ids[row]),
        )
        return rows[:top_k]

    def _rows_to_hits(self, rows: list[int], scores: np.ndarray) -> list[SearchHit]:
        hits: list[SearchHit] = []
        for row in rows:
            entry = self._entries[self._row_ids[row]]
            hits.append(
                SearchHit(
                    doc_id=entry.doc_id,
                    text=entry.text,
                    score=float(scores[row]),
                    metadata=dict(entry.metadata),
                )
            )
        return hits


#: Sentinel distinguishing "doc not present" from a ``None`` shard key.
_ABSENT = object()


class ShardedVectorStore:
    """Shard-routing layer over per-shard :class:`VectorStore` matrices.

    Documents are routed to shards by the value of one metadata key
    (``shard_key``, by default ``"dataset"``); each shard is an ordinary
    :class:`VectorStore`, and every shard shares one :class:`EmbeddingModel`
    so vectors and scores are exactly what the unsharded store would have
    produced for the same add sequence.

    * A search whose ``metadata_filter`` pins the shard key touches only that
      shard — retrieval cost is O(shard), independent of how many tenants'
      archives the process holds.
    * A search without the shard key fans out and merges the per-shard top-k
      by ``(-score, doc_id)``, reproducing the global ranking bit-for-bit
      (every global winner is necessarily in its own shard's top-k).

    The class mirrors the :class:`VectorStore` API so stores can be swapped
    freely; :meth:`from_state` additionally migrates legacy single-matrix
    snapshots by routing each serialised entry through its metadata.
    """

    #: Observability sink; searches are counted here (per routed call), never
    #: inside the per-shard stores, so a fan-out still counts as one search.
    telemetry: Telemetry = NULL_TELEMETRY

    def __init__(self, model: EmbeddingModel | None = None, shard_key: str = "dataset") -> None:
        self._model = model or EmbeddingModel()
        self.shard_key = shard_key
        self._shards: dict[object, VectorStore] = {}
        self._shard_of: dict[str, object] = {}  # doc_id -> shard value, insertion order

    @property
    def model(self) -> EmbeddingModel:
        """The embedding model shared by every shard."""
        return self._model

    def __len__(self) -> int:
        return len(self._shard_of)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._shard_of

    @property
    def shard_count(self) -> int:
        """Number of non-empty shards."""
        return len(self._shards)

    def shard_sizes(self) -> dict[object, int]:
        """Document count per shard value (tenancy introspection)."""
        return {value: len(shard) for value, shard in self._shards.items()}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, doc_id: str, text: str, metadata: dict[str, object] | None = None) -> None:
        """Add (or replace) a document, routing it to its metadata's shard."""
        if not doc_id:
            raise RetrievalError("document id must be non-empty")
        self._model.observe(text)
        self._route_entry(doc_id, text, self._model.embed(text), metadata)

    def add_many(self, documents: list[tuple[str, str, dict[str, object]]]) -> None:
        """Add several documents, observing every text before embedding any.

        Same final-vocabulary guarantee as :meth:`VectorStore.add_many`.
        """
        for doc_id, _, _ in documents:
            if not doc_id:
                raise RetrievalError("document id must be non-empty")
        for _, text, _ in documents:
            self._model.observe(text)
        for doc_id, text, metadata in documents:
            self._route_entry(doc_id, text, self._model.embed(text), metadata)

    def remove(self, doc_id: str) -> None:
        """Remove a document; unknown ids raise.  Empty shards are dropped."""
        value = self._shard_of.get(doc_id, _ABSENT)
        if value is _ABSENT:
            raise RetrievalError(f"unknown document id {doc_id!r}")
        shard = self._shards[value]
        shard.remove(doc_id)
        del self._shard_of[doc_id]
        if not len(shard):
            del self._shards[value]

    def get(self, doc_id: str) -> VectorEntry:
        """Fetch a stored document."""
        value = self._shard_of.get(doc_id, _ABSENT)
        if value is _ABSENT:
            raise RetrievalError(f"unknown document id {doc_id!r}")
        return self._shards[value].get(doc_id)

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def search(
        self,
        query: str,
        top_k: int = 5,
        metadata_filter: dict[str, object] | None = None,
        exclude_ids: set[str] | None = None,
        min_score: float = 0.0,
    ) -> list[SearchHit]:
        """Top-k cosine search, routed to one shard when the filter allows."""
        shards = self._route(metadata_filter)
        if top_k <= 0 or not shards:
            return []
        tel = self.telemetry
        started = time.perf_counter() if tel.enabled else 0.0
        if len(shards) == 1:
            hits = shards[0].search(query, top_k, metadata_filter, exclude_ids, min_score)
        else:
            merged: list[SearchHit] = []
            for shard in shards:
                merged.extend(
                    shard.search(query, top_k, metadata_filter, exclude_ids, min_score)
                )
            merged.sort(key=lambda hit: (-hit.score, hit.doc_id))
            hits = merged[:top_k]
        if tel.enabled:
            tel.count(
                "retrieval_searches_total", store="sharded", shards=len(shards)
            )
            tel.observe(
                "retrieval_search_seconds",
                time.perf_counter() - started,
                store="sharded",
            )
        return hits

    def search_ids(
        self,
        query: str,
        top_k: int = 5,
        metadata_filter: dict[str, object] | None = None,
        exclude_ids: set[str] | None = None,
        min_score: float = 0.0,
    ) -> list[str]:
        """Ranked document ids only (hot path for batch-commit validation)."""
        shards = self._route(metadata_filter)
        if top_k <= 0 or not shards:
            return []
        if len(shards) == 1:
            return shards[0].search_ids(query, top_k, metadata_filter, exclude_ids, min_score)
        return [
            hit.doc_id
            for hit in self.search(query, top_k, metadata_filter, exclude_ids, min_score)
        ]

    def search_batch(
        self,
        queries: list[str],
        top_k: int = 5,
        metadata_filter: dict[str, object] | None = None,
        exclude_ids: set[str] | None = None,
        min_score: float = 0.0,
    ) -> list[list[SearchHit]]:
        """Batched :meth:`search`, scoring each query against its shard(s)."""
        if not queries:
            return []
        shards = self._route(metadata_filter)
        if top_k <= 0 or not shards:
            return [[] for _ in queries]
        tel = self.telemetry
        started = time.perf_counter() if tel.enabled else 0.0
        if len(shards) == 1:
            results = shards[0].search_batch(
                queries, top_k, metadata_filter, exclude_ids, min_score
            )
        else:
            per_shard = [
                shard.search_batch(queries, top_k, metadata_filter, exclude_ids, min_score)
                for shard in shards
            ]
            results = []
            for index in range(len(queries)):
                merged: list[SearchHit] = []
                for shard_hits in per_shard:
                    merged.extend(shard_hits[index])
                merged.sort(key=lambda hit: (-hit.score, hit.doc_id))
                results.append(merged[:top_k])
        if tel.enabled:
            tel.count(
                "retrieval_searches_total",
                len(queries),
                store="sharded",
                shards=len(shards),
            )
            tel.observe(
                "retrieval_search_seconds",
                time.perf_counter() - started,
                store="sharded",
            )
        return results

    def all_ids(self) -> list[str]:
        """Ids of every stored document (global insertion order)."""
        return list(self._shard_of)

    # ------------------------------------------------------------------
    # durability (snapshot) support
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-safe semantic state: shared model + entries in insertion order.

        The entry list is flat (not nested per shard): routing is a pure
        function of each entry's metadata, so serialising the global order
        keeps the format forward/backward compatible with the unsharded
        :meth:`VectorStore.state_dict` layout.
        """
        entries = []
        for doc_id, value in self._shard_of.items():
            entry = self._shards[value].get(doc_id)
            entries.append(
                {
                    "doc_id": entry.doc_id,
                    "text": entry.text,
                    "vector": entry.vector.tolist(),
                    "metadata": dict(entry.metadata),
                }
            )
        return {
            "model": self._model.state_dict(),
            "shard_key": self.shard_key,
            "entries": entries,
        }

    @classmethod
    def from_state(cls, state: dict) -> "ShardedVectorStore":
        """Rebuild a sharded store from :meth:`state_dict` output.

        Legacy snapshots written by the single-matrix :class:`VectorStore`
        carry the same ``{"model", "entries"}`` layout without a
        ``shard_key``; they migrate transparently — each entry is routed by
        its metadata under the default shard key, and searches afterwards
        rank exactly as the unsharded store did (the stored vectors are
        reused verbatim, so only last-ULP score rounding can differ).
        """
        store = cls(
            EmbeddingModel.from_state(state["model"]),
            shard_key=state.get("shard_key", "dataset"),
        )
        for entry in state["entries"]:
            vector = np.asarray(entry["vector"], dtype=np.float64)
            vector.setflags(write=False)
            # No observe(): document frequencies were restored with the model,
            # and these vectors are historical.
            store._route_entry(entry["doc_id"], entry["text"], vector, entry["metadata"])
        return store

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _shard_value(self, metadata: dict[str, object] | None) -> object:
        value = (metadata or {}).get(self.shard_key)
        try:
            hash(value)
        except TypeError:
            raise RetrievalError(
                f"shard key {self.shard_key!r} value {value!r} is not hashable"
            ) from None
        return value

    def _route_entry(
        self,
        doc_id: str,
        text: str,
        vector: np.ndarray,
        metadata: dict[str, object] | None,
    ) -> None:
        value = self._shard_value(metadata)
        previous = self._shard_of.get(doc_id, _ABSENT)
        if previous is not _ABSENT and previous != value:
            # Replacement that changes shard: drop the old copy first.
            old_shard = self._shards[previous]
            old_shard.remove(doc_id)
            if not len(old_shard):
                del self._shards[previous]
        shard = self._shards.get(value)
        if shard is None:
            shard = VectorStore(self._model)
            self._shards[value] = shard
        shard._store_entry(doc_id, text, vector, metadata)
        self._shard_of[doc_id] = value

    def _route(self, metadata_filter: dict[str, object] | None) -> list[VectorStore]:
        """Shards a filtered search must touch (one when the key is pinned)."""
        if metadata_filter and self.shard_key in metadata_filter:
            value = metadata_filter[self.shard_key]
            try:
                shard = self._shards.get(value)
            except TypeError:  # unhashable filter value matches nothing routable
                return list(self._shards.values())
            return [shard] if shard is not None else []
        return list(self._shards.values())
