"""A small in-memory vector store with cosine top-k search.

BenchPress stores uploaded SQL logs and accumulated annotations server-side so
RAG has global access to all documents (paper step 2); this class plays that
role for the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import RetrievalError
from repro.retrieval.embedding import EmbeddingModel


@dataclass
class VectorEntry:
    """One stored document."""

    doc_id: str
    text: str
    vector: np.ndarray
    metadata: dict[str, object] = field(default_factory=dict)


@dataclass
class SearchHit:
    """One search result."""

    doc_id: str
    text: str
    score: float
    metadata: dict[str, object] = field(default_factory=dict)


class VectorStore:
    """Embeds and indexes documents, supports filtered top-k cosine search."""

    def __init__(self, model: EmbeddingModel | None = None) -> None:
        self._model = model or EmbeddingModel()
        self._entries: dict[str, VectorEntry] = {}

    @property
    def model(self) -> EmbeddingModel:
        """The embedding model used by this store."""
        return self._model

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._entries

    def add(self, doc_id: str, text: str, metadata: dict[str, object] | None = None) -> None:
        """Add (or replace) a document."""
        if not doc_id:
            raise RetrievalError("document id must be non-empty")
        self._model.observe(text)
        self._entries[doc_id] = VectorEntry(
            doc_id=doc_id,
            text=text,
            vector=self._model.embed(text),
            metadata=dict(metadata or {}),
        )

    def add_many(self, documents: list[tuple[str, str, dict[str, object]]]) -> None:
        """Add several ``(doc_id, text, metadata)`` documents."""
        for doc_id, text, metadata in documents:
            self.add(doc_id, text, metadata)

    def remove(self, doc_id: str) -> None:
        """Remove a document; unknown ids raise."""
        if doc_id not in self._entries:
            raise RetrievalError(f"unknown document id {doc_id!r}")
        del self._entries[doc_id]

    def get(self, doc_id: str) -> VectorEntry:
        """Fetch a stored document."""
        if doc_id not in self._entries:
            raise RetrievalError(f"unknown document id {doc_id!r}")
        return self._entries[doc_id]

    def search(
        self,
        query: str,
        top_k: int = 5,
        metadata_filter: dict[str, object] | None = None,
        exclude_ids: set[str] | None = None,
        min_score: float = 0.0,
    ) -> list[SearchHit]:
        """Return the ``top_k`` most similar documents to ``query``.

        ``metadata_filter`` keeps only documents whose metadata contains every
        given key/value pair; ``exclude_ids`` removes specific documents (used
        to avoid retrieving the query itself during leave-one-out evaluation).
        """
        if top_k <= 0 or not self._entries:
            return []
        query_vector = self._model.embed(query)
        hits: list[SearchHit] = []
        for entry in self._entries.values():
            if exclude_ids and entry.doc_id in exclude_ids:
                continue
            if metadata_filter and any(
                entry.metadata.get(key) != value for key, value in metadata_filter.items()
            ):
                continue
            score = float(np.dot(query_vector, entry.vector))
            if score < min_score:
                continue
            hits.append(
                SearchHit(
                    doc_id=entry.doc_id,
                    text=entry.text,
                    score=score,
                    metadata=dict(entry.metadata),
                )
            )
        hits.sort(key=lambda hit: (-hit.score, hit.doc_id))
        return hits[:top_k]

    def all_ids(self) -> list[str]:
        """Ids of every stored document."""
        return list(self._entries.keys())
