"""An in-memory vector store with vectorized cosine top-k search.

BenchPress stores uploaded SQL logs and accumulated annotations server-side so
RAG has global access to all documents (paper step 2); this class plays that
role for the reproduction.

Vectors live in one contiguous ``(capacity, dimensions)`` numpy matrix that
grows geometrically as documents are appended, so a search is a single
matrix-vector product followed by ``argpartition`` top-k selection instead of
a Python loop over entries.  Removals tombstone their row and the matrix is
compacted lazily once tombstones dominate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import RetrievalError
from repro.retrieval.embedding import EmbeddingModel

#: Initial number of matrix rows; doubled whenever the store outgrows it.
_INITIAL_CAPACITY = 64
#: Fraction of dead rows that triggers lazy compaction on remove.
_COMPACT_THRESHOLD = 0.5


@dataclass
class VectorEntry:
    """One stored document."""

    doc_id: str
    text: str
    vector: np.ndarray
    metadata: dict[str, object] = field(default_factory=dict)


@dataclass
class SearchHit:
    """One search result."""

    doc_id: str
    text: str
    score: float
    metadata: dict[str, object] = field(default_factory=dict)


class VectorStore:
    """Embeds and indexes documents, supports filtered top-k cosine search."""

    def __init__(self, model: EmbeddingModel | None = None) -> None:
        self._model = model or EmbeddingModel()
        self._entries: dict[str, VectorEntry] = {}
        self._matrix = np.zeros((_INITIAL_CAPACITY, self._model.dimensions), dtype=np.float64)
        self._row_ids: list[str | None] = []  # row index -> doc_id (None = tombstone)
        self._row_of: dict[str, int] = {}  # doc_id -> row index
        self._dead_rows = 0
        self._alive = np.zeros(_INITIAL_CAPACITY, dtype=bool)
        # Lazily-registered boolean row masks, one per (key, value) pair seen
        # in a metadata_filter; kept current on add/remove so filtered search
        # stays a numpy AND instead of a Python loop over entries.
        self._meta_masks: dict[tuple[str, object], np.ndarray] = {}

    @property
    def model(self) -> EmbeddingModel:
        """The embedding model used by this store."""
        return self._model

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._entries

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def add(self, doc_id: str, text: str, metadata: dict[str, object] | None = None) -> None:
        """Add (or replace) a document."""
        if not doc_id:
            raise RetrievalError("document id must be non-empty")
        self._model.observe(text)
        self._store_entry(doc_id, text, self._model.embed(text), metadata)

    def add_many(self, documents: list[tuple[str, str, dict[str, object]]]) -> None:
        """Add several ``(doc_id, text, metadata)`` documents.

        All texts are observed *before* any is embedded, so every vector in
        the batch is computed under the same (final) vocabulary instead of
        earlier documents seeing a smaller IDF table than later ones.
        """
        for doc_id, _, _ in documents:
            if not doc_id:
                raise RetrievalError("document id must be non-empty")
        for _, text, _ in documents:
            self._model.observe(text)
        for doc_id, text, metadata in documents:
            self._store_entry(doc_id, text, self._model.embed(text), metadata)

    def remove(self, doc_id: str) -> None:
        """Remove a document; unknown ids raise."""
        if doc_id not in self._entries:
            raise RetrievalError(f"unknown document id {doc_id!r}")
        del self._entries[doc_id]
        row = self._row_of.pop(doc_id)
        self._row_ids[row] = None
        self._alive[row] = False
        self._dead_rows += 1
        if (
            self._dead_rows >= 8
            and self._row_ids
            and self._dead_rows / len(self._row_ids) > _COMPACT_THRESHOLD
        ):
            self._compact()

    def get(self, doc_id: str) -> VectorEntry:
        """Fetch a stored document."""
        if doc_id not in self._entries:
            raise RetrievalError(f"unknown document id {doc_id!r}")
        return self._entries[doc_id]

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def search(
        self,
        query: str,
        top_k: int = 5,
        metadata_filter: dict[str, object] | None = None,
        exclude_ids: set[str] | None = None,
        min_score: float = 0.0,
    ) -> list[SearchHit]:
        """Return the ``top_k`` most similar documents to ``query``.

        ``metadata_filter`` keeps only documents whose metadata contains every
        given key/value pair; ``exclude_ids`` removes specific documents (used
        to avoid retrieving the query itself during leave-one-out evaluation).
        Ties are broken by ascending ``doc_id`` for reproducibility.
        """
        if top_k <= 0 or not self._entries:
            return []
        query_vector = self._model.embed(query)
        scores = self._matrix[: len(self._row_ids)] @ query_vector
        return self._rows_to_hits(
            self._select_rows(scores, top_k, metadata_filter, exclude_ids, min_score), scores
        )

    def search_ids(
        self,
        query: str,
        top_k: int = 5,
        metadata_filter: dict[str, object] | None = None,
        exclude_ids: set[str] | None = None,
        min_score: float = 0.0,
    ) -> list[str]:
        """Like :meth:`search` but returns only the ranked document ids.

        Used on hot paths (e.g. batch-commit validation) that need the result
        ranking but not hit objects with copied metadata.
        """
        if top_k <= 0 or not self._entries:
            return []
        query_vector = self._model.embed(query)
        scores = self._matrix[: len(self._row_ids)] @ query_vector
        rows = self._select_rows(scores, top_k, metadata_filter, exclude_ids, min_score)
        return [self._row_ids[row] for row in rows]

    def search_batch(
        self,
        queries: list[str],
        top_k: int = 5,
        metadata_filter: dict[str, object] | None = None,
        exclude_ids: set[str] | None = None,
        min_score: float = 0.0,
    ) -> list[list[SearchHit]]:
        """Run :meth:`search` for several queries with one matrix product.

        The queries are embedded together (cache-aware) and scored with the
        *same* matrix-vector expression as :meth:`search`, so batched scores
        are bit-identical to scalar ones — batch schedulers rely on that for
        their sequential-parity guarantee.  Results align positionally with
        ``queries``.
        """
        if not queries:
            return []
        if top_k <= 0 or not self._entries:
            return [[] for _ in queries]
        documents = self._matrix[: len(self._row_ids)]
        results: list[list[SearchHit]] = []
        for query in queries:
            scores = documents @ self._model.embed(query)
            results.append(
                self._rows_to_hits(
                    self._select_rows(scores, top_k, metadata_filter, exclude_ids, min_score),
                    scores,
                )
            )
        return results

    def all_ids(self) -> list[str]:
        """Ids of every stored document (insertion order)."""
        return list(self._entries.keys())

    # ------------------------------------------------------------------
    # durability (snapshot) support
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-safe semantic state of the store.

        Each entry's *stored* vector is serialised verbatim: vectors are
        embedded under the IDF table as it stood when the document was added,
        so they cannot be recomputed from text after later additions.  Row
        layout (tombstones, capacity) is not semantic and is rebuilt compact.
        """
        return {
            "model": self._model.state_dict(),
            "entries": [
                {
                    "doc_id": entry.doc_id,
                    "text": entry.text,
                    "vector": entry.vector.tolist(),
                    "metadata": dict(entry.metadata),
                }
                for entry in self._entries.values()
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "VectorStore":
        """Rebuild a store that searches bit-identically to the snapshotted one."""
        store = cls(EmbeddingModel.from_state(state["model"]))
        for entry in state["entries"]:
            vector = np.asarray(entry["vector"], dtype=np.float64)
            vector.setflags(write=False)
            # _store_entry skips observe(): document frequencies were already
            # restored with the model, and these vectors are historical.
            store._store_entry(entry["doc_id"], entry["text"], vector, entry["metadata"])
        return store

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _store_entry(
        self,
        doc_id: str,
        text: str,
        vector: np.ndarray,
        metadata: dict[str, object] | None,
    ) -> None:
        self._entries[doc_id] = VectorEntry(
            doc_id=doc_id,
            text=text,
            vector=vector,
            metadata=dict(metadata or {}),
        )
        row = self._row_of.get(doc_id)
        if row is None:
            row = len(self._row_ids)
            if row >= self._matrix.shape[0]:
                self._grow(row + 1)
            self._row_ids.append(doc_id)
            self._row_of[doc_id] = row
        self._matrix[row] = vector
        self._alive[row] = True
        metadata_view = self._entries[doc_id].metadata
        for (key, value), mask in self._meta_masks.items():
            mask[row] = metadata_view.get(key) == value

    def _grow(self, needed: int) -> None:
        capacity = max(_INITIAL_CAPACITY, self._matrix.shape[0])
        while capacity < needed:
            capacity *= 2
        grown = np.zeros((capacity, self._matrix.shape[1]), dtype=np.float64)
        grown[: self._matrix.shape[0]] = self._matrix
        self._matrix = grown
        self._alive = self._grow_mask(self._alive, capacity)
        for key in list(self._meta_masks):
            self._meta_masks[key] = self._grow_mask(self._meta_masks[key], capacity)

    @staticmethod
    def _grow_mask(mask: np.ndarray, capacity: int) -> np.ndarray:
        grown = np.zeros(capacity, dtype=bool)
        grown[: mask.shape[0]] = mask
        return grown

    def _compact(self) -> None:
        """Drop tombstoned rows, preserving the relative order of live ones."""
        live = [row for row, doc_id in enumerate(self._row_ids) if doc_id is not None]
        self._matrix[: len(live)] = self._matrix[live]
        self._row_ids = [self._row_ids[row] for row in live]
        self._row_of = {doc_id: row for row, doc_id in enumerate(self._row_ids)}
        self._dead_rows = 0
        self._alive[:] = False
        self._alive[: len(live)] = True
        for key, mask in list(self._meta_masks.items()):
            compacted = np.zeros(mask.shape[0], dtype=bool)
            compacted[: len(live)] = mask[live]
            self._meta_masks[key] = compacted

    def _mask_for(self, key: str, value: object) -> np.ndarray:
        """Boolean row mask for one metadata (key, value), built lazily."""
        try:
            mask = self._meta_masks.get((key, value))
        except TypeError:  # unhashable filter value: caller falls back to a scan
            return None  # type: ignore[return-value]
        if mask is None:
            mask = np.zeros(self._matrix.shape[0], dtype=bool)
            for doc_id, row in self._row_of.items():
                mask[row] = self._entries[doc_id].metadata.get(key) == value
            self._meta_masks[(key, value)] = mask
        return mask

    def _select_rows(
        self,
        scores: np.ndarray,
        top_k: int,
        metadata_filter: dict[str, object] | None,
        exclude_ids: set[str] | None,
        min_score: float,
    ) -> list[int]:
        """Rows of the top-k admissible documents, ranked by (-score, doc_id)."""
        row_count = len(scores)
        admissible = (scores >= min_score) & self._alive[:row_count]
        if metadata_filter:
            for key, value in metadata_filter.items():
                mask = self._mask_for(key, value)
                if mask is None:  # unhashable value: rare slow path
                    admissible &= np.array(
                        [
                            doc_id is not None
                            and self._entries[doc_id].metadata.get(key) == value
                            for doc_id in self._row_ids
                        ],
                        dtype=bool,
                    )
                else:
                    admissible &= mask[:row_count]
        candidate_rows = np.flatnonzero(admissible)
        if exclude_ids:
            candidate_rows = candidate_rows[
                [self._row_ids[row] not in exclude_ids for row in candidate_rows]
            ]
        if candidate_rows.size == 0:
            return []

        # Oversample the partition so doc_id tie-breaking stays exact even
        # when equal scores straddle the top-k boundary.
        if candidate_rows.size > top_k:
            candidate_scores = scores[candidate_rows]
            cut = np.argpartition(-candidate_scores, top_k - 1)[:top_k]
            boundary = candidate_scores[cut].min()
            keep = candidate_scores >= boundary
            candidate_rows = candidate_rows[keep]

        rows = sorted(
            (int(row) for row in candidate_rows),
            key=lambda row: (-scores[row], self._row_ids[row]),
        )
        return rows[:top_k]

    def _rows_to_hits(self, rows: list[int], scores: np.ndarray) -> list[SearchHit]:
        hits: list[SearchHit] = []
        for row in rows:
            entry = self._entries[self._row_ids[row]]
            hits.append(
                SearchHit(
                    doc_id=entry.doc_id,
                    text=entry.text,
                    score=float(scores[row]),
                    metadata=dict(entry.metadata),
                )
            )
        return hits
