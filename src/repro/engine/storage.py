"""Row storage for the in-memory engine.

A :class:`StoredTable` owns a list of value tuples plus per-column metadata.
The executor operates on :class:`Relation` objects — a lightweight
(column labels, rows) pair — so intermediate join/aggregation results and base
tables share a single representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CatalogError, ExecutionError
from repro.engine.types import DataType, SQLValue, coerce_value


@dataclass(frozen=True)
class ColumnLabel:
    """Identifies one output column of a relation.

    ``relation`` is the table alias (or base-table name) the column is visible
    under inside the query; it is empty for computed columns.
    """

    name: str
    relation: str = ""

    def matches(self, name: str, relation: str | None = None) -> bool:
        """Case-insensitive match against a (possibly qualified) reference."""
        if self.name.lower() != name.lower():
            return False
        if relation:
            return self.relation.lower() == relation.lower()
        return True


@dataclass
class Relation:
    """An ordered bag of rows with labelled columns."""

    labels: list[ColumnLabel]
    rows: list[tuple[SQLValue, ...]] = field(default_factory=list)

    @property
    def column_names(self) -> list[str]:
        """Unqualified output column names."""
        return [label.name for label in self.labels]

    def column_index(self, name: str, relation: str | None = None) -> int:
        """Resolve a column reference to its position.

        Raises:
            ExecutionError: when the reference is unknown or ambiguous.
        """
        matches = [
            index for index, label in enumerate(self.labels) if label.matches(name, relation)
        ]
        if not matches:
            qualified = f"{relation}.{name}" if relation else name
            raise ExecutionError(f"unknown column reference {qualified!r}")
        if len(matches) > 1 and relation is None:
            # Ambiguity between same-named columns of different relations: SQL
            # would reject this; we resolve to the first occurrence, matching
            # the forgiving behaviour needed for enterprise-style schemas with
            # duplicated column names, unless the duplicates disagree in origin.
            return matches[0]
        return matches[0]

    def renamed(self, alias: str) -> "Relation":
        """Return a copy whose columns are re-labelled under ``alias``."""
        labels = [ColumnLabel(name=label.name, relation=alias) for label in self.labels]
        return Relation(labels=labels, rows=list(self.rows))


@dataclass
class StoredColumn:
    """Column metadata of a stored base table."""

    name: str
    data_type: DataType
    not_null: bool = False
    primary_key: bool = False
    unique: bool = False


class StoredTable:
    """A named base table with typed columns and tuple storage."""

    def __init__(self, name: str, columns: list[StoredColumn]) -> None:
        if not columns:
            raise CatalogError(f"table {name!r} must have at least one column")
        names_lower = [column.name.lower() for column in columns]
        if len(set(names_lower)) != len(names_lower):
            raise CatalogError(f"table {name!r} has duplicate column names")
        self.name = name
        self.columns = columns
        self.rows: list[tuple[SQLValue, ...]] = []
        self._index_by_name = {column.name.lower(): i for i, column in enumerate(columns)}
        #: Invoked after every successful row mutation; the owning Database sets
        #: this to its data-version bump so caches invalidate even when rows
        #: are inserted directly on the table (as the workload generator does).
        self.on_mutation = None
        #: Bumped on every row mutation of *this* table.  The stats catalog
        #: compares it against the version its per-table statistics were
        #: computed at, so only mutated tables are ever re-profiled.
        self.version = 0

    @property
    def column_names(self) -> list[str]:
        """Column names in declaration order."""
        return [column.name for column in self.columns]

    def column_position(self, name: str) -> int:
        """Position of a column by case-insensitive name."""
        try:
            return self._index_by_name[name.lower()]
        except KeyError as exc:
            raise CatalogError(f"table {self.name!r} has no column {name!r}") from exc

    def has_column(self, name: str) -> bool:
        """Whether the table has the given column (case-insensitive)."""
        return name.lower() in self._index_by_name

    def insert_row(self, values: dict[str, SQLValue] | list[SQLValue] | tuple[SQLValue, ...]) -> None:
        """Insert a row, coercing each value to the declared column type.

        ``values`` may be a mapping from column name to value (missing columns
        become NULL) or a positional sequence covering every column.
        """
        if isinstance(values, dict):
            lowered = {key.lower(): value for key, value in values.items()}
            unknown = set(lowered) - set(self._index_by_name)
            if unknown:
                raise CatalogError(
                    f"table {self.name!r} has no column(s) {sorted(unknown)!r}"
                )
            row = [lowered.get(column.name.lower()) for column in self.columns]
        else:
            if len(values) != len(self.columns):
                raise ExecutionError(
                    f"expected {len(self.columns)} values for table {self.name!r}, got {len(values)}"
                )
            row = list(values)

        coerced: list[SQLValue] = []
        for column, value in zip(self.columns, row):
            if value is None and column.not_null:
                raise ExecutionError(
                    f"NULL value for NOT NULL column {self.name}.{column.name}"
                )
            coerced.append(coerce_value(value, column.data_type))
        self.rows.append(tuple(coerced))
        self._mark_mutation()

    def insert_rows(self, rows: list[dict[str, SQLValue]] | list[tuple[SQLValue, ...]]) -> None:
        """Insert many rows."""
        for row in rows:
            self.insert_row(row)

    def delete_rows(self, predicate=None) -> int:
        """Delete rows matching ``predicate`` (all rows when ``None``).

        ``predicate`` receives each row tuple and returns whether to delete it.
        Returns the number of rows removed; mutation hooks fire only when at
        least one row was actually removed.
        """
        if predicate is None:
            removed = len(self.rows)
            if removed:
                self.rows = []
                self._mark_mutation()
            return removed
        kept = [row for row in self.rows if not predicate(row)]
        removed = len(self.rows) - len(kept)
        if removed:
            self.rows = kept
            self._mark_mutation()
        return removed

    def _mark_mutation(self) -> None:
        self.version += 1
        if self.on_mutation is not None:
            self.on_mutation()

    def to_relation(self, alias: str | None = None) -> Relation:
        """View the stored table as an executor relation."""
        visible_name = alias or self.name
        labels = [ColumnLabel(name=column.name, relation=visible_name) for column in self.columns]
        return Relation(labels=labels, rows=list(self.rows))

    def column_values(self, name: str) -> list[SQLValue]:
        """All values of one column (used by the schema profiler)."""
        position = self.column_position(name)
        return [row[position] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"StoredTable({self.name!r}, columns={self.column_names}, rows={len(self.rows)})"
