"""Expression-to-closure compiler for the execution hot path.

The tree-walking interpreter in :mod:`repro.engine.executor` re-dispatches on
AST node type and resolves every column reference by string for every row.
This module compiles an expression tree *once* per (expression, relation)
into a plain Python closure ``row -> value``:

* column references are resolved to tuple indices at compile time,
* operator dispatch happens at compile time (each node becomes one closure),
* LIKE patterns with literal patterns become precompiled regexes,
* IN-lists of literals are materialised once.

Compilation is best-effort: :func:`compile_row_expression` returns ``None``
for anything it cannot handle — outer column references, aggregates in row
position, bind parameters — and the executor falls back to the interpreter
*for that expression only*.  Subqueries (IN/EXISTS/scalar) compile when the
caller supplies a ``subqueries`` handler: the handler maps a subquery node to
a ``row -> QueryResult`` runner (the executor binds its cached-subquery
machinery there, so correlated subqueries execute through the compiled path
too).  Without a handler they fall back to the interpreter as before.  Every
compiled closure mirrors the corresponding interpreter branch exactly
(including NULL propagation quirks), so the two paths produce bit-identical
results; ``tests/test_engine_parity.py`` enforces this.

:func:`compile_group_expression` is the aggregation-mode analogue: it
compiles an expression evaluated once per group (HAVING, aggregated select
items) into a closure ``(group_rows, representative_row) -> value``,
mirroring ``Executor._evaluate_aggregate_aware``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable

from repro.engine.functions import SCALAR_FUNCTIONS, call_aggregate
from repro.engine.runtime import (
    apply_binary,
    apply_unary,
    is_true,
    like_match,
    like_regex,
    numeric_binary,
)
from repro.engine.storage import Relation
from repro.engine.types import DataType, SQLValue, coerce_value, compare_values
from repro.errors import ExecutionError
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    BinaryOperator,
    CaseWhen,
    Cast,
    ColumnRef,
    Exists,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Like,
    Literal,
    ScalarSubquery,
    Star,
    UnaryOp,
)

#: Row-mode compiled expression: maps one row tuple to a value.
RowFn = Callable[[tuple], SQLValue]
#: Group-mode compiled expression: maps (group rows, representative row) to a value.
GroupFn = Callable[[list, tuple], SQLValue]
#: Subquery handler: maps a subquery Select node to a ``row -> QueryResult``
#: runner.  Supplied by the executor, which binds its own row context and
#: cached-subquery machinery into the runner.
SubqueryHandler = Callable[[object], Callable[[tuple], object]]

#: Aggregate function names (kept in sync with the executor's dispatch set).
AGGREGATE_NAMES = frozenset(
    {"COUNT", "SUM", "AVG", "MIN", "MAX", "GROUP_CONCAT", "STDDEV", "VARIANCE", "MEDIAN"}
)

#: Scalar function names that accept zero arguments.
_ZERO_ARG_SCALARS = frozenset({"CONCAT", "COALESCE"})


class CannotCompile(Exception):
    """Internal control flow: the expression must run on the interpreter."""


@dataclass
class CompileCounters:
    """Tallies of compile outcomes, shared by an executor across calls.

    EXPLAIN ANALYZE reports the per-query delta of these counters, making
    interpreter fallbacks (correlated subqueries, unknown functions, ...)
    visible without touching the compiled closures themselves.
    """

    compiled: int = 0
    fallbacks: int = 0


def compile_row_expression(
    expression: Expression,
    relation: Relation,
    subqueries: SubqueryHandler | None = None,
    counters: CompileCounters | None = None,
) -> RowFn | None:
    """Compile an expression against a relation, or ``None`` if unsupported."""
    try:
        compiled = _row(expression, relation, subqueries)
    except CannotCompile:
        if counters is not None:
            counters.fallbacks += 1
        return None
    if counters is not None:
        counters.compiled += 1
    return compiled


def compile_group_expression(
    expression: Expression,
    relation: Relation,
    subqueries: SubqueryHandler | None = None,
    counters: CompileCounters | None = None,
) -> GroupFn | None:
    """Compile an aggregation-mode expression, or ``None`` if unsupported."""
    try:
        compiled = _group(expression, relation, subqueries)
    except CannotCompile:
        if counters is not None:
            counters.fallbacks += 1
        return None
    if counters is not None:
        counters.compiled += 1
    return compiled


# ---------------------------------------------------------------------------
# row mode
# ---------------------------------------------------------------------------


def _row(
    expression: Expression, relation: Relation, subqueries: SubqueryHandler | None
) -> RowFn:
    if isinstance(expression, Literal):
        value = expression.value
        return lambda row: value

    if isinstance(expression, ColumnRef):
        try:
            index = relation.column_index(expression.name, expression.table)
        except ExecutionError as exc:
            # Not resolvable locally — may be an outer (correlated) reference,
            # which only the interpreter's context chain can resolve.
            raise CannotCompile(str(exc)) from exc
        return lambda row: row[index]

    if isinstance(expression, BinaryOp):
        return _row_binary(expression, relation, subqueries)

    if isinstance(expression, UnaryOp):
        operand = _row(expression.operand, relation, subqueries)
        op = expression.op
        return lambda row: apply_unary(op, operand(row))

    if isinstance(expression, FunctionCall):
        return _row_function(expression, relation, subqueries)

    if isinstance(expression, Cast):
        operand = _row(expression.operand, relation, subqueries)
        data_type = DataType.from_sql(expression.target_type)

        def cast_fn(row: tuple) -> SQLValue:
            value = operand(row)
            if value is None:
                return None
            return coerce_value(value, data_type)

        return cast_fn

    if isinstance(expression, CaseWhen):
        pairs = [
            (_row(condition, relation, subqueries), _row(result, relation, subqueries))
            for condition, result in expression.conditions
        ]
        else_fn = (
            _row(expression.else_result, relation, subqueries)
            if expression.else_result is not None
            else None
        )

        def case_fn(row: tuple) -> SQLValue:
            for condition_fn, result_fn in pairs:
                if is_true(condition_fn(row)):
                    return result_fn(row)
            return else_fn(row) if else_fn is not None else None

        return case_fn

    if isinstance(expression, IsNull):
        operand = _row(expression.operand, relation, subqueries)
        if expression.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None

    if isinstance(expression, InList):
        return _row_in_list(expression, relation, subqueries)

    if isinstance(expression, Between):
        operand = _row(expression.operand, relation, subqueries)
        low = _row(expression.low, relation, subqueries)
        high = _row(expression.high, relation, subqueries)
        negated = expression.negated

        def between_fn(row: tuple) -> SQLValue:
            value = operand(row)
            low_value = low(row)
            high_value = high(row)
            if value is None or low_value is None or high_value is None:
                return None
            in_range = (
                compare_values(value, low_value) >= 0
                and compare_values(value, high_value) <= 0
            )
            return not in_range if negated else in_range

        return between_fn

    if isinstance(expression, Like):
        return _row_like(expression, relation, subqueries)

    if isinstance(expression, InSubquery) and subqueries is not None:
        operand = _row(expression.operand, relation, subqueries)
        run = subqueries(expression.subquery)
        negated = expression.negated

        def in_subquery_fn(row: tuple) -> SQLValue:
            value = operand(row)
            if value is None:
                return None
            result = run(row)
            contained = any(
                inner_row and inner_row[0] is not None
                and compare_values(value, inner_row[0]) == 0
                for inner_row in result.rows
            )
            return not contained if negated else contained

        return in_subquery_fn

    if isinstance(expression, Exists) and subqueries is not None:
        run = subqueries(expression.subquery)
        negated = expression.negated

        def exists_fn(row: tuple) -> SQLValue:
            exists = len(run(row).rows) > 0
            return not exists if negated else exists

        return exists_fn

    if isinstance(expression, ScalarSubquery) and subqueries is not None:
        run = subqueries(expression.query)

        def scalar_subquery_fn(row: tuple) -> SQLValue:
            result = run(row)
            if not result.rows:
                return None
            if len(result.rows[0]) != 1:
                raise ExecutionError("scalar subquery must return exactly one column")
            return result.rows[0][0]

        return scalar_subquery_fn

    # Star, Parameter, unknown nodes — and subqueries when no handler was
    # supplied: the interpreter owns these (errors, correlated execution).
    raise CannotCompile(type(expression).__name__)


def _row_binary(
    expression: BinaryOp, relation: Relation, subqueries: SubqueryHandler | None
) -> RowFn:
    op = expression.op

    if op is BinaryOperator.AND:
        left = _row(expression.left, relation, subqueries)
        right = _row(expression.right, relation, subqueries)

        def and_fn(row: tuple) -> SQLValue:
            left_value = left(row)
            if left_value is False:
                return False
            right_value = right(row)
            if right_value is False:
                return False
            if left_value is None or right_value is None:
                return None
            return is_true(left_value) and is_true(right_value)

        return and_fn

    if op is BinaryOperator.OR:
        left = _row(expression.left, relation, subqueries)
        right = _row(expression.right, relation, subqueries)

        def or_fn(row: tuple) -> SQLValue:
            left_value = left(row)
            if is_true(left_value):
                return True
            right_value = right(row)
            if is_true(right_value):
                return True
            if left_value is None or right_value is None:
                return None
            return False

        return or_fn

    left = _row(expression.left, relation, subqueries)
    right = _row(expression.right, relation, subqueries)

    comparator = _COMPARISON_FACTORIES.get(op)
    if comparator is not None:
        return comparator(left, right)

    arithmetic = _ARITHMETIC_OPERATIONS.get(op)
    if arithmetic is not None:

        def arithmetic_fn(row: tuple) -> SQLValue:
            left_value = left(row)
            right_value = right(row)
            if left_value is None or right_value is None:
                return None
            return numeric_binary(left_value, right_value, arithmetic)

        return arithmetic_fn

    if op in (BinaryOperator.DIV, BinaryOperator.MOD):
        operation = (
            (lambda a, b: a / b) if op is BinaryOperator.DIV else (lambda a, b: a % b)
        )

        def div_fn(row: tuple) -> SQLValue:
            left_value = left(row)
            right_value = right(row)
            if left_value is None or right_value is None:
                return None
            if float(right_value) == 0.0:
                return None
            return numeric_binary(left_value, right_value, operation)

        return div_fn

    if op is BinaryOperator.CONCAT:

        def concat_fn(row: tuple) -> SQLValue:
            left_value = left(row)
            right_value = right(row)
            if left_value is None or right_value is None:
                return None
            return f"{left_value}{right_value}"

        return concat_fn

    return lambda row: apply_binary(op, left(row), right(row))


def _make_comparison(predicate) -> Callable[[RowFn, RowFn], RowFn]:
    def factory(left: RowFn, right: RowFn) -> RowFn:
        def compare_fn(row: tuple) -> SQLValue:
            left_value = left(row)
            right_value = right(row)
            if left_value is None or right_value is None:
                return None
            return predicate(compare_values(left_value, right_value))

        return compare_fn

    return factory


_COMPARISON_FACTORIES: dict[BinaryOperator, Callable[[RowFn, RowFn], RowFn]] = {
    BinaryOperator.EQ: _make_comparison(lambda c: c == 0),
    BinaryOperator.NEQ: _make_comparison(lambda c: c != 0),
    BinaryOperator.LT: _make_comparison(lambda c: c < 0),
    BinaryOperator.LTE: _make_comparison(lambda c: c <= 0),
    BinaryOperator.GT: _make_comparison(lambda c: c > 0),
    BinaryOperator.GTE: _make_comparison(lambda c: c >= 0),
}

_ARITHMETIC_OPERATIONS = {
    BinaryOperator.ADD: lambda a, b: a + b,
    BinaryOperator.SUB: lambda a, b: a - b,
    BinaryOperator.MUL: lambda a, b: a * b,
}


def _row_function(
    expression: FunctionCall, relation: Relation, subqueries: SubqueryHandler | None
) -> RowFn:
    upper = expression.upper_name
    if upper in AGGREGATE_NAMES:
        # Aggregates need group context; row mode cannot supply it.
        raise CannotCompile(upper)
    function = SCALAR_FUNCTIONS.get(upper)
    if function is None:
        # Unknown function: the interpreter raises the canonical error.
        raise CannotCompile(upper)
    if not expression.args and upper not in _ZERO_ARG_SCALARS:
        raise CannotCompile(f"{upper} with no arguments")
    arg_fns = [_row(arg, relation, subqueries) for arg in expression.args]
    if len(arg_fns) == 1:
        only = arg_fns[0]
        return lambda row: function([only(row)])
    return lambda row: function([arg_fn(row) for arg_fn in arg_fns])


def _row_in_list(
    expression: InList, relation: Relation, subqueries: SubqueryHandler | None
) -> RowFn:
    operand = _row(expression.operand, relation, subqueries)
    negated = expression.negated
    if all(isinstance(member, Literal) for member in expression.values):
        members = tuple(member.value for member in expression.values)

        def static_in_fn(row: tuple) -> SQLValue:
            value = operand(row)
            if value is None:
                return None
            contained = any(
                member is not None and compare_values(value, member) == 0
                for member in members
            )
            return not contained if negated else contained

        return static_in_fn

    member_fns = [_row(member, relation, subqueries) for member in expression.values]

    def dynamic_in_fn(row: tuple) -> SQLValue:
        value = operand(row)
        if value is None:
            return None
        contained = any(
            member is not None and compare_values(value, member) == 0
            for member in (member_fn(row) for member_fn in member_fns)
        )
        return not contained if negated else contained

    return dynamic_in_fn


def _row_like(
    expression: Like, relation: Relation, subqueries: SubqueryHandler | None
) -> RowFn:
    operand = _row(expression.operand, relation, subqueries)
    negated = expression.negated
    if isinstance(expression.pattern, Literal):
        pattern_value = expression.pattern.value
        if pattern_value is None:

            def null_pattern_fn(row: tuple) -> SQLValue:
                operand(row)  # evaluated for error parity with the interpreter
                return None

            return null_pattern_fn
        regex = re.compile(like_regex(str(pattern_value)), re.IGNORECASE)

        def static_like_fn(row: tuple) -> SQLValue:
            value = operand(row)
            if value is None:
                return None
            matched = regex.match(str(value)) is not None
            return not matched if negated else matched

        return static_like_fn

    pattern_fn = _row(expression.pattern, relation, subqueries)

    def dynamic_like_fn(row: tuple) -> SQLValue:
        value = operand(row)
        pattern = pattern_fn(row)
        if value is None or pattern is None:
            return None
        matched = like_match(str(value), str(pattern))
        return not matched if negated else matched

    return dynamic_like_fn


# ---------------------------------------------------------------------------
# aggregation mode
# ---------------------------------------------------------------------------


def _group(
    expression: Expression, relation: Relation, subqueries: SubqueryHandler | None
) -> GroupFn:
    if isinstance(expression, FunctionCall) and expression.upper_name in AGGREGATE_NAMES:
        upper = expression.upper_name
        distinct = expression.distinct
        count_star = bool(expression.args) and isinstance(expression.args[0], Star)
        if count_star or not expression.args:

            def star_fn(group_rows: list, representative: tuple) -> SQLValue:
                return call_aggregate(upper, [1] * len(group_rows), distinct, count_star)

            return star_fn

        arg_fn = _row(expression.args[0], relation, subqueries)

        def aggregate_fn(group_rows: list, representative: tuple) -> SQLValue:
            return call_aggregate(
                upper, [arg_fn(row) for row in group_rows], distinct, count_star
            )

        return aggregate_fn

    if isinstance(expression, BinaryOp):
        left = _group(expression.left, relation, subqueries)
        right = _group(expression.right, relation, subqueries)
        op = expression.op
        # NB: the interpreter's aggregate-aware path evaluates AND/OR through
        # apply_binary (no short-circuit); mirror that exactly.
        return lambda group_rows, representative: apply_binary(
            op, left(group_rows, representative), right(group_rows, representative)
        )

    if isinstance(expression, UnaryOp):
        operand = _group(expression.operand, relation, subqueries)
        op = expression.op
        return lambda group_rows, representative: apply_unary(
            op, operand(group_rows, representative)
        )

    if isinstance(expression, FunctionCall) and expression.upper_name in SCALAR_FUNCTIONS:
        function = SCALAR_FUNCTIONS[expression.upper_name]
        arg_fns = [_group(arg, relation, subqueries) for arg in expression.args]
        return lambda group_rows, representative: function(
            [arg_fn(group_rows, representative) for arg_fn in arg_fns]
        )

    if isinstance(expression, CaseWhen):
        pairs = [
            (_group(condition, relation, subqueries), _group(result, relation, subqueries))
            for condition, result in expression.conditions
        ]
        else_fn = (
            _group(expression.else_result, relation, subqueries)
            if expression.else_result is not None
            else None
        )

        def case_fn(group_rows: list, representative: tuple) -> SQLValue:
            for condition_fn, result_fn in pairs:
                if is_true(condition_fn(group_rows, representative)):
                    return result_fn(group_rows, representative)
            return else_fn(group_rows, representative) if else_fn is not None else None

        return case_fn

    if isinstance(expression, Cast):
        operand = _group(expression.operand, relation, subqueries)
        data_type = DataType.from_sql(expression.target_type)

        def cast_fn(group_rows: list, representative: tuple) -> SQLValue:
            value = operand(group_rows, representative)
            if value is None:
                return None
            return coerce_value(value, data_type)

        return cast_fn

    # Every other node falls through to plain row evaluation against the
    # group's representative row — but only when no aggregate hides inside
    # (the interpreter would aggregate it via the group context).
    if contains_aggregate(expression):
        raise CannotCompile(type(expression).__name__)
    row_fn = _row(expression, relation, subqueries)
    return lambda group_rows, representative: row_fn(representative)


def contains_aggregate(expression: Expression) -> bool:
    """Whether any aggregate function call appears anywhere in the tree."""
    from repro.sql.analyzer import iter_expressions

    for node in iter_expressions(expression):
        if isinstance(node, FunctionCall) and node.upper_name in AGGREGATE_NAMES:
            return True
    return False
