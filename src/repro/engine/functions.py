"""Scalar and aggregate function library for the execution engine."""

from __future__ import annotations

import math
import statistics

from repro.errors import ExecutionError
from repro.engine.types import SQLValue, is_numeric


# ---------------------------------------------------------------------------
# scalar functions
# ---------------------------------------------------------------------------


def _scalar_upper(args: list[SQLValue]) -> SQLValue:
    value = args[0]
    return None if value is None else str(value).upper()


def _scalar_lower(args: list[SQLValue]) -> SQLValue:
    value = args[0]
    return None if value is None else str(value).lower()


def _scalar_length(args: list[SQLValue]) -> SQLValue:
    value = args[0]
    return None if value is None else len(str(value))


def _scalar_abs(args: list[SQLValue]) -> SQLValue:
    value = args[0]
    if value is None:
        return None
    if not is_numeric(value):
        raise ExecutionError(f"ABS expects a numeric argument, got {value!r}")
    return abs(value)


def _scalar_round(args: list[SQLValue]) -> SQLValue:
    value = args[0]
    if value is None:
        return None
    digits = int(args[1]) if len(args) > 1 and args[1] is not None else 0
    if not is_numeric(value):
        raise ExecutionError(f"ROUND expects a numeric argument, got {value!r}")
    result = round(float(value), digits)
    return int(result) if digits == 0 else result


def _scalar_coalesce(args: list[SQLValue]) -> SQLValue:
    for value in args:
        if value is not None:
            return value
    return None


def _scalar_nullif(args: list[SQLValue]) -> SQLValue:
    if len(args) != 2:
        raise ExecutionError("NULLIF expects exactly two arguments")
    return None if args[0] == args[1] else args[0]

def _scalar_ifnull(args: list[SQLValue]) -> SQLValue:
    if len(args) != 2:
        raise ExecutionError("IFNULL expects exactly two arguments")
    return args[1] if args[0] is None else args[0]


def _scalar_substr(args: list[SQLValue]) -> SQLValue:
    value = args[0]
    if value is None:
        return None
    text = str(value)
    start = int(args[1]) if len(args) > 1 and args[1] is not None else 1
    start_index = max(start - 1, 0)
    if len(args) > 2 and args[2] is not None:
        length = int(args[2])
        return text[start_index : start_index + length]
    return text[start_index:]


def _scalar_trim(args: list[SQLValue]) -> SQLValue:
    value = args[0]
    return None if value is None else str(value).strip()


def _scalar_concat(args: list[SQLValue]) -> SQLValue:
    parts = [str(value) for value in args if value is not None]
    return "".join(parts)


def _scalar_floor(args: list[SQLValue]) -> SQLValue:
    value = args[0]
    if value is None:
        return None
    return math.floor(float(value))


def _scalar_ceil(args: list[SQLValue]) -> SQLValue:
    value = args[0]
    if value is None:
        return None
    return math.ceil(float(value))


def _scalar_sqrt(args: list[SQLValue]) -> SQLValue:
    value = args[0]
    if value is None:
        return None
    return math.sqrt(float(value))


def _scalar_mod(args: list[SQLValue]) -> SQLValue:
    if args[0] is None or args[1] is None:
        return None
    return float(args[0]) % float(args[1]) if isinstance(args[0], float) or isinstance(args[1], float) else int(args[0]) % int(args[1])


SCALAR_FUNCTIONS = {
    "UPPER": _scalar_upper,
    "LOWER": _scalar_lower,
    "LENGTH": _scalar_length,
    "LEN": _scalar_length,
    "ABS": _scalar_abs,
    "ROUND": _scalar_round,
    "COALESCE": _scalar_coalesce,
    "NULLIF": _scalar_nullif,
    "IFNULL": _scalar_ifnull,
    "NVL": _scalar_ifnull,
    "SUBSTR": _scalar_substr,
    "SUBSTRING": _scalar_substr,
    "TRIM": _scalar_trim,
    "CONCAT": _scalar_concat,
    "FLOOR": _scalar_floor,
    "CEIL": _scalar_ceil,
    "CEILING": _scalar_ceil,
    "SQRT": _scalar_sqrt,
    "MOD": _scalar_mod,
}


def call_scalar(name: str, args: list[SQLValue]) -> SQLValue:
    """Invoke a scalar function by (upper-cased) name."""
    function = SCALAR_FUNCTIONS.get(name.upper())
    if function is None:
        raise ExecutionError(f"unknown scalar function {name!r}")
    if not args and name.upper() not in ("CONCAT", "COALESCE"):
        raise ExecutionError(f"scalar function {name!r} expects at least one argument")
    return function(args)


def is_scalar_function(name: str) -> bool:
    """Whether ``name`` is a known scalar function."""
    return name.upper() in SCALAR_FUNCTIONS


# ---------------------------------------------------------------------------
# aggregate functions
# ---------------------------------------------------------------------------


def aggregate_count(values: list[SQLValue], distinct: bool, count_star: bool) -> SQLValue:
    """``COUNT(*)``, ``COUNT(expr)`` or ``COUNT(DISTINCT expr)``."""
    if count_star:
        return len(values)
    non_null = [value for value in values if value is not None]
    if distinct:
        return len(set(non_null))
    return len(non_null)


def _numeric_values(values: list[SQLValue], function: str) -> list[float]:
    result: list[float] = []
    for value in values:
        if value is None:
            continue
        if not is_numeric(value):
            raise ExecutionError(f"{function} expects numeric inputs, got {value!r}")
        result.append(float(value))
    return result


def aggregate_sum(values: list[SQLValue], distinct: bool = False) -> SQLValue:
    """``SUM(expr)``; returns NULL over an empty/all-NULL input per SQL semantics."""
    numbers = _numeric_values(values, "SUM")
    if distinct:
        numbers = list(set(numbers))
    if not numbers:
        return None
    total = sum(numbers)
    if all(float(value).is_integer() for value in numbers):
        return int(total)
    return total


def aggregate_avg(values: list[SQLValue], distinct: bool = False) -> SQLValue:
    """``AVG(expr)``."""
    numbers = _numeric_values(values, "AVG")
    if distinct:
        numbers = list(set(numbers))
    if not numbers:
        return None
    return sum(numbers) / len(numbers)


def aggregate_min(values: list[SQLValue], distinct: bool = False) -> SQLValue:
    """``MIN(expr)``."""
    non_null = [value for value in values if value is not None]
    if not non_null:
        return None
    return min(non_null, key=_sort_key)


def aggregate_max(values: list[SQLValue], distinct: bool = False) -> SQLValue:
    """``MAX(expr)``."""
    non_null = [value for value in values if value is not None]
    if not non_null:
        return None
    return max(non_null, key=_sort_key)


def aggregate_group_concat(values: list[SQLValue], distinct: bool = False) -> SQLValue:
    """``GROUP_CONCAT(expr)`` with ',' separator."""
    non_null = [str(value) for value in values if value is not None]
    if distinct:
        seen: set[str] = set()
        unique: list[str] = []
        for value in non_null:
            if value not in seen:
                seen.add(value)
                unique.append(value)
        non_null = unique
    if not non_null:
        return None
    return ",".join(non_null)


def aggregate_stddev(values: list[SQLValue], distinct: bool = False) -> SQLValue:
    """Sample standard deviation."""
    numbers = _numeric_values(values, "STDDEV")
    if distinct:
        numbers = list(set(numbers))
    if len(numbers) < 2:
        return None
    return statistics.stdev(numbers)


def aggregate_variance(values: list[SQLValue], distinct: bool = False) -> SQLValue:
    """Sample variance."""
    numbers = _numeric_values(values, "VARIANCE")
    if distinct:
        numbers = list(set(numbers))
    if len(numbers) < 2:
        return None
    return statistics.variance(numbers)


def aggregate_median(values: list[SQLValue], distinct: bool = False) -> SQLValue:
    """Median of non-NULL numeric values."""
    numbers = _numeric_values(values, "MEDIAN")
    if distinct:
        numbers = list(set(numbers))
    if not numbers:
        return None
    return statistics.median(numbers)


def _sort_key(value: SQLValue) -> tuple[int, object]:
    if is_numeric(value):
        return (0, float(value))
    return (1, str(value))


AGGREGATE_DISPATCH = {
    "SUM": aggregate_sum,
    "AVG": aggregate_avg,
    "MIN": aggregate_min,
    "MAX": aggregate_max,
    "GROUP_CONCAT": aggregate_group_concat,
    "STDDEV": aggregate_stddev,
    "VARIANCE": aggregate_variance,
    "MEDIAN": aggregate_median,
}


def call_aggregate(name: str, values: list[SQLValue], distinct: bool, count_star: bool = False) -> SQLValue:
    """Invoke an aggregate function over collected input values."""
    upper = name.upper()
    if upper == "COUNT":
        return aggregate_count(values, distinct, count_star)
    function = AGGREGATE_DISPATCH.get(upper)
    if function is None:
        raise ExecutionError(f"unknown aggregate function {name!r}")
    return function(values, distinct)
