"""Cost-based source planner: join reordering and predicate pushdown.

Sits between the statement cache and the compiled executor.  For a SELECT
whose FROM clause is a chain of INNER/CROSS joins over base tables and CTEs,
the planner builds a :class:`SourcePlan` that

* pushes single-table WHERE (and ON) conjuncts below the joins as compiled
  scan pre-filters,
* reorders the join chain greedily — smallest estimated input first, then
  whichever connected table minimises the estimated intermediate size — using
  the :class:`~repro.engine.stats.StatsCatalog` cardinalities,
* keeps results **bit-identical** to the unplanned executor: every surviving
  row remembers the original scan positions it was built from, and the final
  rows are sorted back into the source order the textual join order would
  have produced (hash-join emission order is lexicographic in scan positions,
  and filters only remove rows, so this reconstruction is exact).

Conjunct classification is deliberately conservative about semantics:

* hash-join *edges* come only from ON-clause column equalities — they use the
  executor's bucket equality (``hashable_key`` + ``==``), exactly as the
  unplanned hash join would.  WHERE equalities keep ``compare_values``
  semantics and are never turned into edges;
* conjuncts the compiler cannot handle (subqueries, outer references,
  unknown names) become *post-filters* evaluated on the reassembled relation
  through the executor's standard evaluator, so correlated predicates and
  error behaviour match the unplanned path;
* anything the planner cannot prove equivalent (outer joins, subquery
  sources, unresolvable ON references, ambiguous names that resolve
  differently under the reordered prefix) makes the query *unplannable* and
  the executor silently falls back to the standard compiled path.

Pushdown does change the order in which WHERE conjuncts are *evaluated*; a
query whose conjuncts raise mid-evaluation may surface a different error
than the unplanned path (the executor catches engine errors from the planned
path and falls back, so such queries still complete identically whenever the
unplanned path completes).

Plans are cached in an LRU keyed by the FROM/WHERE AST node identities plus
the catalog version, and are re-derived once the database's data version has
drifted past a staleness threshold, so cost estimates follow DML without
replanning on every execution.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import CatalogError, ExecutionError
from repro.engine.compiler import compile_row_expression
from repro.engine.executor import Executor, _conjoin, _split_conjuncts
from repro.engine.runtime import hashable_key, is_true
from repro.engine.stats import TableStats
from repro.engine.storage import ColumnLabel, Relation
from repro.sql.analyzer import iter_expressions
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    BinaryOperator,
    ColumnRef,
    Exists,
    Expression,
    InList,
    InSubquery,
    IsNull,
    Join,
    JoinType,
    Like,
    Literal,
    Parameter,
    ScalarSubquery,
    Select,
    TableRef,
)

#: Data-version drift after which a cached plan's costs are re-derived.
DEFAULT_PLAN_STALENESS = 64

#: Maximum number of cached plans; least recently used entries are evicted.
_PLAN_LRU_LIMIT = 256

#: Fallback equality selectivity when no distinct count is available.
_DEFAULT_EQ_SELECTIVITY = 0.1

#: Fallback selectivity for range-style predicates.
_DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0

#: Fallback join-key divisor when neither side has a distinct count.
_DEFAULT_KEY_DISTINCT = 10.0

#: Nodes whose presence in a conjunct forces interpreter-grade evaluation.
_SUBQUERY_NODES = (InSubquery, Exists, ScalarSubquery, Parameter)


class _NotPlannable(Exception):
    """Internal signal: this SELECT must run through the standard path."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass
class ScanPlan:
    """One base input of a plan: a table or CTE leaf plus pushed filters."""

    leaf: int                      # position in the textual join order
    name: str                      # alias the leaf is visible under
    source: str                    # base table / CTE name to fetch rows from
    kind: str                      # "table" | "cte"
    labels: tuple[ColumnLabel, ...]
    base_rows: int
    stats: TableStats | None
    pushed: list[tuple[Expression, object]] = field(default_factory=list)
    estimated_rows: float = 0.0


@dataclass
class JoinStep:
    """One hash/nested-loop step of the chosen join order."""

    leaf: int
    key_pairs: list[tuple[int, int]]          # (accumulated index, scan index)
    residuals: list[object] = field(default_factory=list)  # compiled predicates
    estimated_rows: float = 0.0


@dataclass
class SourcePlan:
    """Executable plan for a SELECT's FROM/WHERE source rows.

    ``execute`` consumes one row list per scan (in textual leaf order) and
    returns combined rows in the exact order the unplanned executor would
    produce, with columns back in textual order.
    """

    scans: list[ScanPlan]                     # textual leaf order
    order: list[int]                          # chosen join order (leaf indices)
    steps: list[JoinStep]                     # one per joined leaf after the first
    post_filter: Expression | None            # evaluated by the executor afterwards
    labels: list[ColumnLabel]                 # combined labels, textual order
    identity: bool                            # chosen order == textual order
    position_rank: list[int]                  # leaf -> position in ``order``
    slice_ranges: list[tuple[int, int]]       # leaf -> slice of the join-order row
    estimated_rows: float
    explain_data: dict

    def execute(self, leaf_rows: list[list[tuple]]) -> list[tuple]:
        """Run the plan over one row list per scan (textual leaf order).

        Each hash step builds its table from whichever side is *smaller* and
        probes the other — after a selective pushdown the accumulated side is
        tiny, so bucketing a big scan would dominate the runtime.  Probing
        scan-side-out emits rows in scan-major order, which the final
        position sort puts back; only the all-acc-side identity case can
        skip that sort.
        """
        filtered: list[list[tuple[int, tuple]]] = [None] * len(self.scans)  # type: ignore[list-item]
        for scan in self.scans:
            rows = leaf_rows[scan.leaf]
            if scan.pushed:
                predicates = [fn for _, fn in scan.pushed]
                entries = []
                for position, row in enumerate(rows):
                    for predicate in predicates:
                        if not is_true(predicate(row)):
                            break
                    else:
                        entries.append((position, row))
            else:
                entries = list(enumerate(rows))
            filtered[scan.leaf] = entries

        acc: list[tuple[tuple[int, ...], tuple]] = [
            ((position,), row) for position, row in filtered[self.order[0]]
        ]
        needs_sort = not self.identity
        for step in self.steps:
            scan_entries = filtered[step.leaf]
            new_acc: list[tuple[tuple[int, ...], tuple]] = []
            residuals = step.residuals
            if step.key_pairs:
                single = len(step.key_pairs) == 1
                if single:
                    acc_index, scan_index = step.key_pairs[0]
                else:
                    acc_indices = [pair[0] for pair in step.key_pairs]
                    scan_indices = [pair[1] for pair in step.key_pairs]
                if len(scan_entries) <= len(acc):
                    # Bucket the scan side, probe acc: acc-major emission.
                    scan_buckets: dict = {}
                    for position, row in scan_entries:
                        if single:
                            key = hashable_key(row[scan_index])
                            if key is None:
                                continue
                        else:
                            key = tuple(hashable_key(row[index]) for index in scan_indices)
                            if None in key:
                                continue
                        scan_buckets.setdefault(key, []).append((position, row))
                    empty: list = []
                    for positions, acc_row in acc:
                        if single:
                            key = hashable_key(acc_row[acc_index])
                            if key is None:
                                continue
                        else:
                            key = tuple(hashable_key(acc_row[index]) for index in acc_indices)
                            if None in key:
                                continue
                        for position, row in scan_buckets.get(key, empty):
                            combined = acc_row + row
                            if residuals:
                                keep = True
                                for predicate in residuals:
                                    if not is_true(predicate(combined)):
                                        keep = False
                                        break
                                if not keep:
                                    continue
                            new_acc.append((positions + (position,), combined))
                else:
                    # Bucket acc, probe the scan side: scan-major emission.
                    needs_sort = True
                    acc_buckets: dict = {}
                    for entry in acc:
                        acc_row = entry[1]
                        if single:
                            key = hashable_key(acc_row[acc_index])
                            if key is None:
                                continue
                        else:
                            key = tuple(hashable_key(acc_row[index]) for index in acc_indices)
                            if None in key:
                                continue
                        acc_buckets.setdefault(key, []).append(entry)
                    empty = []
                    for position, row in scan_entries:
                        if single:
                            key = hashable_key(row[scan_index])
                            if key is None:
                                continue
                        else:
                            key = tuple(hashable_key(row[index]) for index in scan_indices)
                            if None in key:
                                continue
                        for positions, acc_row in acc_buckets.get(key, empty):
                            combined = acc_row + row
                            if residuals:
                                keep = True
                                for predicate in residuals:
                                    if not is_true(predicate(combined)):
                                        keep = False
                                        break
                                if not keep:
                                    continue
                            new_acc.append((positions + (position,), combined))
            else:
                for positions, acc_row in acc:
                    for position, row in scan_entries:
                        combined = acc_row + row
                        if residuals:
                            keep = True
                            for predicate in residuals:
                                if not is_true(predicate(combined)):
                                    keep = False
                                    break
                            if not keep:
                                continue
                        new_acc.append((positions + (position,), combined))
            acc = new_acc

        if not needs_sort:
            return [row for _, row in acc]
        rank = self.position_rank
        acc.sort(key=lambda entry: tuple(entry[0][rank[leaf]] for leaf in range(len(rank))))
        if self.identity:
            return [row for _, row in acc]
        ranges = self.slice_ranges
        rows_out: list[tuple] = []
        for _, row in acc:
            rebuilt: list = []
            for start, end in ranges:
                rebuilt.extend(row[start:end])
            rows_out.append(tuple(rebuilt))
        return rows_out


@dataclass
class _CacheEntry:
    from_anchor: object
    where_anchor: object
    catalog_version: int
    data_version: int
    plan: SourcePlan | None
    reason: str | None


class QueryPlanner:
    """Builds and caches :class:`SourcePlan` objects for one database."""

    def __init__(
        self, database: "Database", staleness_threshold: int = DEFAULT_PLAN_STALENESS  # noqa: F821
    ) -> None:
        self._database = database
        self.staleness_threshold = staleness_threshold
        self._cache: "OrderedDict[tuple[int, int], _CacheEntry]" = OrderedDict()
        self.plans_built = 0
        self.cache_hits = 0

    def clear(self) -> None:
        """Drop every cached plan."""
        self._cache.clear()

    def plan_for(self, select: Select, cte_scope: dict[str, Relation]) -> SourcePlan | None:
        """Cached plan for a SELECT's source, or None when unplannable."""
        return self._lookup(select, cte_scope).plan

    def explain(self, select: Select, cte_scope: dict[str, Relation]) -> dict:
        """Explain dict for a SELECT's source (includes the unplannable reason)."""
        entry = self._lookup(select, cte_scope)
        if entry.plan is None:
            return {"planned": False, "reason": entry.reason or "not plannable"}
        return dict(entry.plan.explain_data)

    # ------------------------------------------------------------------
    # cache
    # ------------------------------------------------------------------

    def _lookup(self, select: Select, cte_scope: dict[str, Relation]) -> _CacheEntry:
        database = self._database
        key = (id(select.from_relation), id(select.where))
        entry = self._cache.get(key)
        if (
            entry is not None
            and entry.from_anchor is select.from_relation
            and entry.where_anchor is select.where
            and entry.catalog_version == database.catalog_version
        ):
            # Unplannable verdicts depend only on the AST and catalog shape,
            # so they never go stale under DML; plans re-derive their costs
            # once the data version has drifted past the threshold.
            if entry.plan is None or (
                database.data_version - entry.data_version < self.staleness_threshold
            ):
                self.cache_hits += 1
                self._cache.move_to_end(key)
                return entry
        try:
            plan = self._build(select, cte_scope)
            reason = None
        except _NotPlannable as blocked:
            plan = None
            reason = blocked.reason
        self.plans_built += 1
        entry = _CacheEntry(
            from_anchor=select.from_relation,
            where_anchor=select.where,
            catalog_version=database.catalog_version,
            data_version=database.data_version,
            plan=plan,
            reason=reason,
        )
        self._cache[key] = entry
        self._cache.move_to_end(key)
        while len(self._cache) > _PLAN_LRU_LIMIT:
            self._cache.popitem(last=False)
        return entry

    # ------------------------------------------------------------------
    # plan construction
    # ------------------------------------------------------------------

    def _build(self, select: Select, cte_scope: dict[str, Relation]) -> SourcePlan:
        if select.from_relation is None:
            raise _NotPlannable("no FROM clause")
        if not isinstance(select.from_relation, Join):
            raise _NotPlannable("single-relation FROM clause")

        leaves: list[dict] = []
        edges: list[dict] = []
        pushed_raw: list[tuple[Expression, int]] = []      # (conjunct, leaf)
        residual_raw: list[tuple[Expression, dict]] = []   # (conjunct, {id(ref): (leaf, col)})
        post_conjuncts: list[Expression] = []

        self._walk_from(select.from_relation, cte_scope, leaves, edges, pushed_raw, residual_raw)
        if len(leaves) < 2:
            raise _NotPlannable("single-relation FROM clause")

        full_labels = [label for leaf in leaves for label in leaf["labels"]]
        full_origin = [
            (index, offset)
            for index, leaf in enumerate(leaves)
            for offset in range(len(leaf["labels"]))
        ]
        full_relation = Relation(labels=full_labels)

        if select.where is not None:
            for conjunct in _split_conjuncts(select.where):
                self._classify_where(
                    conjunct, full_relation, full_origin, pushed_raw, residual_raw, post_conjuncts
                )

        # Compile the pushed filters against their leaf; anything the compiler
        # rejects keeps interpreter-grade semantics as a post-filter.
        for conjunct, leaf_index in pushed_raw:
            leaf = leaves[leaf_index]
            compiled = compile_row_expression(conjunct, Relation(labels=list(leaf["labels"])))
            if compiled is None:
                post_conjuncts.append(conjunct)
            else:
                leaf["pushed"].append((conjunct, compiled))

        scans = [
            ScanPlan(
                leaf=index,
                name=leaf["name"],
                source=leaf["source"],
                kind=leaf["kind"],
                labels=tuple(leaf["labels"]),
                base_rows=leaf["base_rows"],
                stats=leaf["stats"],
                pushed=leaf["pushed"],
            )
            for index, leaf in enumerate(leaves)
        ]
        for scan in scans:
            selectivity = 1.0
            for conjunct, _ in scan.pushed:
                selectivity *= _selectivity(conjunct, scan.stats)
            scan.estimated_rows = scan.base_rows * selectivity

        order, step_estimates = self._greedy_order(scans, edges)

        plan = self._assemble(
            select, leaves, scans, edges, residual_raw, post_conjuncts,
            full_relation, full_origin, order, step_estimates,
        )
        return plan

    # -- FROM-tree walk -------------------------------------------------

    def _walk_from(
        self,
        node,
        cte_scope: dict[str, Relation],
        leaves: list[dict],
        edges: list[dict],
        pushed_raw: list[tuple[Expression, int]],
        residual_raw: list[tuple[Expression, dict]],
    ) -> list[int]:
        """Collect leaves and ON conjuncts; returns the subtree's leaf indices."""
        if isinstance(node, TableRef):
            leaves.append(self._leaf_info(node, cte_scope))
            return [len(leaves) - 1]
        if not isinstance(node, Join):
            raise _NotPlannable(f"unsupported FROM node {type(node).__name__}")
        if node.join_type not in (JoinType.INNER, JoinType.CROSS):
            raise _NotPlannable(f"{node.join_type.value} join")
        left_scope = self._walk_from(
            node.left, cte_scope, leaves, edges, pushed_raw, residual_raw
        )
        right_scope = self._walk_from(
            node.right, cte_scope, leaves, edges, pushed_raw, residual_raw
        )
        scope = left_scope + right_scope

        condition = node.condition
        if node.using_columns and condition is None:
            left_relation = Relation(
                labels=[label for index in left_scope for label in leaves[index]["labels"]]
            )
            right_relation = Relation(
                labels=[label for index in right_scope for label in leaves[index]["labels"]]
            )
            try:
                condition = Executor._build_using_condition(
                    node.using_columns, left_relation, right_relation
                )
            except ExecutionError as exc:
                raise _NotPlannable(str(exc)) from exc
        if condition is None:
            return scope

        scoped_labels = [label for index in scope for label in leaves[index]["labels"]]
        scoped_origin = [
            (index, offset)
            for index in scope
            for offset in range(len(leaves[index]["labels"]))
        ]
        scoped_relation = Relation(labels=scoped_labels)
        conjuncts = _split_conjuncts(condition)

        if len(conjuncts) == 1:
            # Mirror the single-equality fast path's left/right-preferring
            # resolution so ambiguous names bind exactly as the unplanned
            # hash join binds them.
            pair = self._equi_pair(conjuncts[0], leaves, left_scope, right_scope)
            if pair is not None:
                edges.append(pair)
                return scope

        for conjunct in conjuncts:
            if len(conjuncts) > 1:
                pair = self._spanning_pair(
                    conjunct, scoped_relation, scoped_origin, left_scope, right_scope
                )
                if pair is not None:
                    edges.append(pair)
                    continue
            self._classify_on(
                conjunct, scoped_relation, scoped_origin, pushed_raw, residual_raw, scope
            )
        return scope

    def _leaf_info(self, node: TableRef, cte_scope: dict[str, Relation]) -> dict:
        key = node.name.lower()
        if key in cte_scope:
            relation = cte_scope[key]
            labels = tuple(
                ColumnLabel(name=label.name, relation=node.effective_name)
                for label in relation.labels
            )
            return {
                "name": node.effective_name,
                "source": node.name,
                "kind": "cte",
                "labels": labels,
                "base_rows": len(relation.rows),
                "stats": None,
                "pushed": [],
            }
        try:
            table = self._database.table(node.name)
        except CatalogError as exc:
            # Fall back so the standard path raises the canonical error.
            raise _NotPlannable(str(exc)) from exc
        labels = tuple(
            ColumnLabel(name=column.name, relation=node.effective_name)
            for column in table.columns
        )
        try:
            stats = self._database.stats.table_stats(node.name)
        except CatalogError:  # pragma: no cover - table just resolved
            stats = None
        return {
            "name": node.effective_name,
            "source": node.name,
            "kind": "table",
            "labels": labels,
            "base_rows": len(table.rows),
            "stats": stats,
            "pushed": [],
        }

    # -- conjunct classification ---------------------------------------

    def _equi_pair(
        self,
        conjunct: Expression,
        leaves: list[dict],
        left_scope: list[int],
        right_scope: list[int],
    ) -> dict | None:
        """Single-conjunct ON equality, resolved left/right like the executor."""
        if (
            not isinstance(conjunct, BinaryOp)
            or conjunct.op is not BinaryOperator.EQ
            or not isinstance(conjunct.left, ColumnRef)
            or not isinstance(conjunct.right, ColumnRef)
        ):
            return None
        left_relation = Relation(
            labels=[label for index in left_scope for label in leaves[index]["labels"]]
        )
        right_relation = Relation(
            labels=[label for index in right_scope for label in leaves[index]["labels"]]
        )
        left_origin = [
            (index, offset)
            for index in left_scope
            for offset in range(len(leaves[index]["labels"]))
        ]
        right_origin = [
            (index, offset)
            for index in right_scope
            for offset in range(len(leaves[index]["labels"]))
        ]
        for first, second in (
            (conjunct.left, conjunct.right),
            (conjunct.right, conjunct.left),
        ):
            try:
                left_position = left_relation.column_index(first.name, first.table)
                right_position = right_relation.column_index(second.name, second.table)
            except ExecutionError:
                continue
            return {
                "a": left_origin[left_position],
                "b": right_origin[right_position],
                "expression": conjunct,
            }
        return None

    def _spanning_pair(
        self,
        conjunct: Expression,
        scoped_relation: Relation,
        scoped_origin: list[tuple[int, int]],
        left_scope: list[int],
        right_scope: list[int],
    ) -> dict | None:
        """Multi-conjunct ON equality spanning the join's two sides."""
        if (
            not isinstance(conjunct, BinaryOp)
            or conjunct.op is not BinaryOperator.EQ
            or not isinstance(conjunct.left, ColumnRef)
            or not isinstance(conjunct.right, ColumnRef)
        ):
            return None
        try:
            first = scoped_relation.column_index(conjunct.left.name, conjunct.left.table)
            second = scoped_relation.column_index(conjunct.right.name, conjunct.right.table)
        except ExecutionError:
            return None
        origin_a = scoped_origin[first]
        origin_b = scoped_origin[second]
        left_set = set(left_scope)
        if origin_a[0] in left_set and origin_b[0] not in left_set:
            return {"a": origin_a, "b": origin_b, "expression": conjunct}
        if origin_b[0] in left_set and origin_a[0] not in left_set:
            return {"a": origin_b, "b": origin_a, "expression": conjunct}
        return None

    def _classify_on(
        self,
        conjunct: Expression,
        scoped_relation: Relation,
        scoped_origin: list[tuple[int, int]],
        pushed_raw: list[tuple[Expression, int]],
        residual_raw: list[tuple[Expression, dict]],
        scope: list[int],
    ) -> None:
        """Classify a non-edge ON conjunct as pushed or residual.

        ON conjuncts must resolve entirely inside their join scope: a
        reference that only an outer context (or a later join input) could
        satisfy makes the query unplannable, because a reordered evaluation
        could change which binding wins.
        """
        if _contains_subquery(conjunct):
            raise _NotPlannable("subquery inside a join condition")
        resolution: dict[int, tuple[int, int]] = {}
        ref_leaves: set[int] = set()
        for expression in iter_expressions(conjunct):
            if not isinstance(expression, ColumnRef):
                continue
            try:
                position = scoped_relation.column_index(expression.name, expression.table)
            except ExecutionError as exc:
                raise _NotPlannable(str(exc)) from exc
            origin = scoped_origin[position]
            resolution[id(expression)] = origin
            ref_leaves.add(origin[0])
        if len(ref_leaves) <= 1:
            target = next(iter(ref_leaves)) if ref_leaves else scope[0]
            pushed_raw.append((conjunct, target))
        else:
            residual_raw.append((conjunct, resolution))

    def _classify_where(
        self,
        conjunct: Expression,
        full_relation: Relation,
        full_origin: list[tuple[int, int]],
        pushed_raw: list[tuple[Expression, int]],
        residual_raw: list[tuple[Expression, dict]],
        post_conjuncts: list[Expression],
    ) -> None:
        """Classify a WHERE conjunct as pushed, residual, or post-filter.

        Unlike ON conjuncts, an unresolvable WHERE reference is *not* fatal:
        the original scope for WHERE is the full combined relation, so
        deferring the conjunct to a post-filter (standard evaluator, outer
        context included) is exactly the unplanned behaviour.
        """
        if _contains_subquery(conjunct):
            post_conjuncts.append(conjunct)
            return
        resolution: dict[int, tuple[int, int]] = {}
        ref_leaves: set[int] = set()
        for expression in iter_expressions(conjunct):
            if not isinstance(expression, ColumnRef):
                continue
            try:
                position = full_relation.column_index(expression.name, expression.table)
            except ExecutionError:
                post_conjuncts.append(conjunct)
                return
            origin = full_origin[position]
            resolution[id(expression)] = origin
            ref_leaves.add(origin[0])
        if len(ref_leaves) <= 1:
            target = next(iter(ref_leaves)) if ref_leaves else 0
            pushed_raw.append((conjunct, target))
        else:
            residual_raw.append((conjunct, resolution))

    # -- ordering and assembly -----------------------------------------

    def _greedy_order(
        self, scans: list[ScanPlan], edges: list[dict]
    ) -> tuple[list[int], list[float]]:
        """Smallest scan first, then the connected leaf minimising the step."""
        count = len(scans)
        remaining = set(range(count))
        start = min(remaining, key=lambda index: (scans[index].estimated_rows, index))
        order = [start]
        remaining.discard(start)
        placed = {start}
        accumulated = scans[start].estimated_rows
        step_estimates: list[float] = []
        while remaining:
            connected = [
                index
                for index in sorted(remaining)
                if any(
                    (edge["a"][0] in placed and edge["b"][0] == index)
                    or (edge["b"][0] in placed and edge["a"][0] == index)
                    for edge in edges
                )
            ]
            candidates = connected or sorted(remaining)
            best_index = None
            best_estimate = 0.0
            for index in candidates:
                estimate = _step_estimate(accumulated, scans[index], edges, placed, index, scans)
                if best_index is None or estimate < best_estimate:
                    best_index = index
                    best_estimate = estimate
            order.append(best_index)
            remaining.discard(best_index)
            placed.add(best_index)
            accumulated = best_estimate
            step_estimates.append(best_estimate)
        return order, step_estimates

    def _assemble(
        self,
        select: Select,
        leaves: list[dict],
        scans: list[ScanPlan],
        edges: list[dict],
        residual_raw: list[tuple[Expression, dict]],
        post_conjuncts: list[Expression],
        full_relation: Relation,
        full_origin: list[tuple[int, int]],
        order: list[int],
        step_estimates: list[float],
    ) -> SourcePlan:
        count = len(scans)
        position_rank = [0] * count
        for rank, leaf in enumerate(order):
            position_rank[leaf] = rank

        widths = [len(leaf["labels"]) for leaf in leaves]
        join_offsets = [0] * count
        running = 0
        for leaf in order:
            join_offsets[leaf] = running
            running += widths[leaf]
        slice_ranges = [
            (join_offsets[leaf], join_offsets[leaf] + widths[leaf]) for leaf in range(count)
        ]
        identity = order == list(range(count))

        # Join-order label prefixes, for compiling step residuals.
        order_labels: list[ColumnLabel] = []
        order_origin: list[tuple[int, int]] = []
        prefix_labels: dict[int, int] = {}
        for rank, leaf in enumerate(order):
            order_labels.extend(leaves[leaf]["labels"])
            order_origin.extend(
                (leaf, offset) for offset in range(len(leaves[leaf]["labels"]))
            )
            prefix_labels[rank] = len(order_labels)

        steps = [
            JoinStep(leaf=leaf, key_pairs=[], estimated_rows=step_estimates[rank - 1])
            for rank, leaf in enumerate(order)
            if rank > 0
        ]
        for edge in edges:
            rank = max(position_rank[edge["a"][0]], position_rank[edge["b"][0]])
            step = steps[rank - 1]
            if position_rank[edge["a"][0]] == rank:
                late, early = edge["a"], edge["b"]
            else:
                late, early = edge["b"], edge["a"]
            acc_index = join_offsets[early[0]] + early[1]
            step.key_pairs.append((acc_index, late[1]))

        explain_steps_residuals: dict[int, list[str]] = {}
        for conjunct, resolution in residual_raw:
            rank = max(position_rank[origin[0]] for origin in resolution.values())
            prefix = Relation(labels=order_labels[: prefix_labels[rank]])
            agreed = True
            for expression in iter_expressions(conjunct):
                if not isinstance(expression, ColumnRef):
                    continue
                try:
                    position = prefix.column_index(expression.name, expression.table)
                except ExecutionError:
                    agreed = False
                    break
                if order_origin[position] != resolution[id(expression)]:
                    agreed = False
                    break
            compiled = (
                compile_row_expression(conjunct, prefix) if agreed else None
            )
            if compiled is None:
                # Demoting to a post-filter is only sound when the full
                # combined relation resolves every reference to the same
                # column the join-scoped resolution chose.
                for expression in iter_expressions(conjunct):
                    if not isinstance(expression, ColumnRef):
                        continue
                    try:
                        position = full_relation.column_index(
                            expression.name, expression.table
                        )
                    except ExecutionError as exc:
                        raise _NotPlannable(str(exc)) from exc
                    if full_origin[position] != resolution[id(expression)]:
                        raise _NotPlannable(
                            f"ambiguous reference {expression.name!r} under reordering"
                        )
                post_conjuncts.append(conjunct)
            else:
                steps[rank - 1].residuals.append(compiled)
                explain_steps_residuals.setdefault(rank - 1, []).append(
                    _printed(conjunct)
                )

        estimated_rows = step_estimates[-1] if step_estimates else scans[order[0]].estimated_rows
        explain_data = {
            "planned": True,
            "reordered": not identity,
            "estimated_rows": estimated_rows,
            "leaves": [
                {
                    "name": scan.name,
                    "source": scan.source,
                    "kind": scan.kind,
                    "base_rows": scan.base_rows,
                    "estimated_rows": scan.estimated_rows,
                    "pushed_filters": [_printed(conjunct) for conjunct, _ in scan.pushed],
                }
                for scan in scans
            ],
            "join_order": [scans[leaf].name for leaf in order],
            "steps": [
                {
                    "relation": scans[step.leaf].name,
                    "keys": [
                        _printed(edge["expression"])
                        for edge in edges
                        if max(position_rank[edge["a"][0]], position_rank[edge["b"][0]])
                        == position_rank[step.leaf]
                    ],
                    "residual": explain_steps_residuals.get(index, []),
                    "estimated_rows": step.estimated_rows,
                }
                for index, step in enumerate(steps)
            ],
            "post_filters": [_printed(conjunct) for conjunct in post_conjuncts],
        }

        return SourcePlan(
            scans=scans,
            order=order,
            steps=steps,
            post_filter=_conjoin(post_conjuncts),
            labels=list(full_relation.labels),
            identity=identity,
            position_rank=position_rank,
            slice_ranges=slice_ranges,
            estimated_rows=estimated_rows,
            explain_data=explain_data,
        )


# ---------------------------------------------------------------------------
# estimation helpers
# ---------------------------------------------------------------------------


def _contains_subquery(conjunct: Expression) -> bool:
    return any(
        isinstance(expression, _SUBQUERY_NODES) for expression in iter_expressions(conjunct)
    )


def _printed(expression: Expression) -> str:
    from repro.sql.printer import print_expression

    try:
        return print_expression(expression)
    except Exception:  # pragma: no cover - printer handles every planned node
        return repr(expression)


def _column_distinct(scan: ScanPlan, column_index: int) -> int | None:
    if scan.stats is None:
        return None
    label = scan.labels[column_index]
    column = scan.stats.column(label.name)
    return column.distinct if column is not None else None


def _step_estimate(
    accumulated: float,
    scan: ScanPlan,
    edges: list[dict],
    placed: set[int],
    candidate: int,
    scans: list[ScanPlan],
) -> float:
    """Estimated rows after joining ``candidate`` onto the placed set."""
    estimate = accumulated * scan.estimated_rows
    first_edge = True
    for edge in edges:
        endpoints = {edge["a"][0], edge["b"][0]}
        if candidate not in endpoints:
            continue
        other = (endpoints - {candidate}).pop() if len(endpoints) > 1 else candidate
        if other not in placed:
            continue
        if first_edge:
            divisor = _DEFAULT_KEY_DISTINCT
            for origin in (edge["a"], edge["b"]):
                distinct = _column_distinct(scans[origin[0]], origin[1])
                if distinct:
                    divisor = max(float(distinct), 1.0)
                    break
            estimate /= divisor
            first_edge = False
        else:
            # Additional equality keys tighten the match further.
            estimate *= 0.2
    return estimate


def _selectivity(conjunct: Expression, stats: TableStats | None) -> float:
    """Heuristic fraction of rows a pushed-down predicate keeps."""

    def distinct_of(expression: Expression) -> int | None:
        if stats is None or not isinstance(expression, ColumnRef):
            return None
        column = stats.column(expression.name)
        return column.distinct if column is not None else None

    if isinstance(conjunct, BinaryOp):
        op = conjunct.op
        if op is BinaryOperator.EQ:
            for side, other in (
                (conjunct.left, conjunct.right),
                (conjunct.right, conjunct.left),
            ):
                if isinstance(side, ColumnRef) and isinstance(other, Literal):
                    distinct = distinct_of(side)
                    if distinct:
                        return 1.0 / distinct
            return _DEFAULT_EQ_SELECTIVITY
        if op is BinaryOperator.NEQ:
            return 1.0 - _DEFAULT_EQ_SELECTIVITY
        if op in (
            BinaryOperator.LT,
            BinaryOperator.LTE,
            BinaryOperator.GT,
            BinaryOperator.GTE,
        ):
            return _DEFAULT_RANGE_SELECTIVITY
        if op is BinaryOperator.OR:
            return min(
                1.0,
                _selectivity(conjunct.left, stats) + _selectivity(conjunct.right, stats),
            )
        if op is BinaryOperator.AND:
            return _selectivity(conjunct.left, stats) * _selectivity(conjunct.right, stats)
        return _DEFAULT_RANGE_SELECTIVITY
    if isinstance(conjunct, Between):
        return 0.75 if conjunct.negated else 0.25
    if isinstance(conjunct, InList):
        distinct = distinct_of(conjunct.operand)
        if distinct:
            selectivity = min(1.0, len(conjunct.values) / distinct)
        else:
            selectivity = min(1.0, len(conjunct.values) * _DEFAULT_EQ_SELECTIVITY)
        return 1.0 - selectivity if conjunct.negated else selectivity
    if isinstance(conjunct, IsNull):
        fraction = 0.1
        if stats is not None and isinstance(conjunct.operand, ColumnRef):
            column = stats.column(conjunct.operand.name)
            if column is not None:
                fraction = column.null_fraction
        return 1.0 - fraction if conjunct.negated else fraction
    if isinstance(conjunct, Like):
        return 0.75 if conjunct.negated else 0.25
    return _DEFAULT_RANGE_SELECTIVITY
