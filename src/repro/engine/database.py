"""Database facade: catalog + storage + executor in one object.

:class:`Database` is the substrate on which every experiment runs: workload
generators populate databases, the execution-accuracy metric runs gold and
predicted SQL against them, and the backtranslation rubric re-executes
regenerated SQL.

Hot-path machinery (all transparent to callers):

* an LRU **statement cache** mapping SQL text to its parsed AST — parsing is
  pure, so re-executing the same SQL (the execution-accuracy loop does this
  constantly) skips the lexer/parser entirely.  Cached ASTs also keep stable
  object identities, which lets the executor reuse compiled plans and
  uncorrelated-subquery results across ``execute`` calls;
* a **catalog version** (bumped by CREATE/DROP) that invalidates compiled
  plans whose column indices may have moved, and a **data version** (bumped
  by every row mutation, including direct ``StoredTable`` inserts) that
  invalidates cached subquery results — so DML never requires a full cache
  clear and read-only workloads never re-execute a cached subquery.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque

from repro.errors import CatalogError, ExecutionError
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.engine.executor import EXECUTOR_MODES, Executor, QueryResult
from repro.engine.planner import DEFAULT_PLAN_STALENESS
from repro.engine.runtime import is_true
from repro.engine.stats import StatsCatalog
from repro.engine.storage import StoredColumn, StoredTable
from repro.engine.types import DataType, SQLValue
from repro.sql.ast_nodes import (
    CreateTable,
    Delete,
    DropTable,
    Insert,
    Literal,
    Select,
    Statement,
    UnaryOp,
    UnaryOperator,
)
from repro.sql.parser import parse, parse_many

#: Default capacity of the SQL-text -> AST statement cache.
DEFAULT_STATEMENT_CACHE_SIZE = 256

#: Default ring capacity of the slow-query log.
DEFAULT_SLOW_QUERY_CAPACITY = 128


class Database:
    """An in-memory relational database with a SQL interface.

    Example:
        >>> db = Database("demo")
        >>> db.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
        >>> db.execute("INSERT INTO t (id, name) VALUES (1, 'a'), (2, 'b')")
        >>> db.execute("SELECT COUNT(*) FROM t").rows
        [(2,)]
    """

    #: Observability sink for slow-query accounting (class-level no-op
    #: default; assign per instance to enable).
    telemetry: Telemetry = NULL_TELEMETRY

    def __init__(
        self,
        name: str = "main",
        executor_mode: str = "compiled",
        statement_cache_size: int = DEFAULT_STATEMENT_CACHE_SIZE,
        plan_staleness_threshold: int = DEFAULT_PLAN_STALENESS,
    ) -> None:
        self.name = name
        self._tables: dict[str, StoredTable] = {}
        #: Bumped by CREATE/DROP: compiled plans must re-resolve column indices.
        self.catalog_version = 0
        #: Bumped by any row mutation: cached subquery/gold results are stale.
        self.data_version = 0
        self._statement_cache: OrderedDict[str, Statement] = OrderedDict()
        self._statement_cache_size = statement_cache_size
        self.statement_cache_hits = 0
        self.statement_cache_misses = 0
        #: Data-version drift after which cached source plans re-derive costs.
        self.plan_staleness_threshold = plan_staleness_threshold
        #: Incrementally-maintained per-table statistics for the planner.
        self.stats = StatsCatalog(self)
        self._executor = Executor(self, mode=executor_mode)
        #: Slow-query log; disabled (None threshold) keeps execute un-timed.
        self._slow_query_threshold: float | None = None
        self.slow_queries: deque[dict] = deque(maxlen=DEFAULT_SLOW_QUERY_CAPACITY)

    # ------------------------------------------------------------------
    # execution mode
    # ------------------------------------------------------------------

    @property
    def executor_mode(self) -> str:
        """Evaluation mode: ``"compiled"``, ``"interpreted"`` or ``"planned"``."""
        return self._executor.mode

    @executor_mode.setter
    def executor_mode(self, mode: str) -> None:
        if mode not in EXECUTOR_MODES:
            raise ValueError(f"unknown executor mode {mode!r}; expected one of {EXECUTOR_MODES}")
        self._executor.mode = mode

    # ------------------------------------------------------------------
    # catalog
    # ------------------------------------------------------------------

    @property
    def table_names(self) -> list[str]:
        """Names of all tables in creation order."""
        return [table.name for table in self._tables.values()]

    def has_table(self, name: str) -> bool:
        """Whether a table with this (case-insensitive) name exists."""
        return name.lower() in self._tables

    def table(self, name: str) -> StoredTable:
        """Look up a table by name.

        Raises:
            CatalogError: if the table does not exist.
        """
        try:
            return self._tables[name.lower()]
        except KeyError as exc:
            raise CatalogError(f"unknown table {name!r}") from exc

    def tables(self) -> list[StoredTable]:
        """All stored tables."""
        return list(self._tables.values())

    def create_table(
        self,
        name: str,
        columns: list[tuple[str, str]] | list[StoredColumn],
        primary_key: list[str] | None = None,
    ) -> StoredTable:
        """Create a table programmatically.

        ``columns`` is either a list of :class:`StoredColumn` or
        ``(name, sql_type)`` pairs.
        """
        if self.has_table(name):
            raise CatalogError(f"table {name!r} already exists")
        stored_columns: list[StoredColumn] = []
        for column in columns:
            if isinstance(column, StoredColumn):
                stored_columns.append(column)
            else:
                column_name, type_name = column
                stored_columns.append(
                    StoredColumn(name=column_name, data_type=DataType.from_sql(type_name))
                )
        if primary_key:
            pk_lower = {column.lower() for column in primary_key}
            for column in stored_columns:
                if column.name.lower() in pk_lower:
                    column.primary_key = True
                    column.not_null = True
        table = StoredTable(name=name, columns=stored_columns)
        self._register_table(table)
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog."""
        if not self.has_table(name):
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[name.lower()]
        self._mark_catalog_change()

    def insert(self, table_name: str, rows: list[dict[str, SQLValue]] | list[tuple]) -> int:
        """Insert rows programmatically; returns the number of rows inserted."""
        table = self.table(table_name)
        table.insert_rows(rows)
        return len(rows)

    # ------------------------------------------------------------------
    # SQL interface
    # ------------------------------------------------------------------

    def parse_cached(self, sql: str) -> Statement:
        """Parse a statement through the LRU statement cache.

        Parsing is pure, so the same SQL text always maps to the same AST —
        callers must treat the returned tree as immutable.  Parse failures are
        not cached.
        """
        cache = self._statement_cache
        statement = cache.get(sql)
        if statement is not None:
            cache.move_to_end(sql)
            self.statement_cache_hits += 1
            return statement
        statement = parse(sql)
        self.statement_cache_misses += 1
        cache[sql] = statement
        if len(cache) > self._statement_cache_size:
            cache.popitem(last=False)
        return statement

    def execute(self, sql: str) -> QueryResult:
        """Parse (through the statement cache) and execute one statement.

        When a slow-query threshold is configured (:meth:`set_slow_query_log`)
        the statement is timed and logged if it runs at/over the threshold;
        with the log disabled — the default — no clock is read at all.
        """
        threshold = self._slow_query_threshold
        if threshold is None:
            return self.execute_statement(self.parse_cached(sql))
        started = time.perf_counter()
        result = self.execute_statement(self.parse_cached(sql))
        elapsed = time.perf_counter() - started
        if elapsed >= threshold:
            self.slow_queries.append(
                {"sql": sql, "seconds": round(elapsed, 9), "rows": len(result.rows)}
            )
            tel = self.telemetry
            if tel.enabled:
                tel.count("database_slow_queries_total", database=self.name)
                tel.event(
                    "slow_query",
                    database=self.name,
                    sql=sql,
                    seconds=round(elapsed, 6),
                )
        return result

    def set_slow_query_log(
        self,
        threshold_seconds: float | None,
        capacity: int = DEFAULT_SLOW_QUERY_CAPACITY,
    ) -> None:
        """Configure the slow-query log.

        Statements whose end-to-end ``execute`` takes at least
        ``threshold_seconds`` are recorded in the bounded :attr:`slow_queries`
        ring (newest last).  ``None`` disables logging and removes the timing
        overhead entirely; already-recorded entries are kept (re-bounded to
        ``capacity``).
        """
        if threshold_seconds is not None and threshold_seconds < 0:
            raise ValueError("slow-query threshold cannot be negative")
        if capacity < 1:
            raise ValueError("slow-query log capacity must be at least 1")
        self._slow_query_threshold = (
            float(threshold_seconds) if threshold_seconds is not None else None
        )
        self.slow_queries = deque(self.slow_queries, maxlen=capacity)

    def execute_script(self, sql: str) -> list[QueryResult]:
        """Execute a ``;``-separated script, returning one result per statement."""
        return [self.execute_statement(statement) for statement in parse_many(sql)]

    def execute_statement(self, statement: Statement) -> QueryResult:
        """Execute an already-parsed statement."""
        if isinstance(statement, Select):
            return self._executor.execute_select(statement)
        if isinstance(statement, CreateTable):
            return self._execute_create_table(statement)
        if isinstance(statement, Insert):
            return self._execute_insert(statement)
        if isinstance(statement, Delete):
            return self._execute_delete(statement)
        if isinstance(statement, DropTable):
            return self._execute_drop_table(statement)
        raise ExecutionError(f"unsupported statement type {type(statement).__name__}")

    def query(self, sql: str) -> list[tuple[SQLValue, ...]]:
        """Execute a SELECT and return just the rows."""
        return self.execute(sql).rows

    def explain(self, sql: str, analyze: bool = False) -> dict:
        """Describe how the source planner would execute a statement.

        For a plannable SELECT the dict carries the chosen join order, the
        predicates pushed to each scan, and estimated cardinalities; for
        everything else it carries ``planned: False`` plus the reason.  Works
        in every executor mode — the plan is only *used* in ``"planned"``.

        With ``analyze=True`` (EXPLAIN ANALYZE) the SELECT is additionally
        *executed* under per-operator instrumentation, and the dict gains an
        ``"analyze"`` key: executed operators with wall time and rows in/out,
        total wall time, and the query's cache-counter deltas.  The analyzed
        execution observes but never perturbs evaluation, so the rows it
        produces are bit-identical to a plain ``execute`` in every mode.
        """
        statement = self.parse_cached(sql)
        if not isinstance(statement, Select):
            return {
                "statement": type(statement).__name__,
                "planned": False,
                "reason": "not a SELECT statement",
            }
        info = self._executor.explain_select(statement)
        if analyze:
            info["analyze"] = self._executor.analyze_select(statement)
        return info

    # ------------------------------------------------------------------
    # cache invalidation
    # ------------------------------------------------------------------

    def _register_table(self, table: StoredTable) -> None:
        table.on_mutation = self._mark_data_change
        self._tables[table.name.lower()] = table
        self._mark_catalog_change()

    def _mark_data_change(self) -> None:
        self.data_version += 1

    def _mark_catalog_change(self) -> None:
        self.catalog_version += 1
        self.data_version += 1

    # ------------------------------------------------------------------
    # DDL / DML execution
    # ------------------------------------------------------------------

    def _execute_create_table(self, statement: CreateTable) -> QueryResult:
        if self.has_table(statement.name):
            if statement.if_not_exists:
                return QueryResult(columns=[], rows=[])
            raise CatalogError(f"table {statement.name!r} already exists")
        pk_from_table = {name.lower() for name in statement.primary_key}
        columns = []
        for column_def in statement.columns:
            column = StoredColumn(
                name=column_def.name,
                data_type=DataType.from_sql(column_def.type_name),
                not_null=column_def.not_null or column_def.primary_key,
                primary_key=column_def.primary_key or column_def.name.lower() in pk_from_table,
                unique=column_def.unique,
            )
            if column.primary_key:
                column.not_null = True
            columns.append(column)
        table = StoredTable(name=statement.name, columns=columns)
        self._register_table(table)
        return QueryResult(columns=[], rows=[])

    def _execute_insert(self, statement: Insert) -> QueryResult:
        table = self.table(statement.table)
        inserted = 0
        for row in statement.rows:
            values = [self._literal_value(expression) for expression in row]
            if statement.columns:
                if len(values) != len(statement.columns):
                    raise ExecutionError(
                        f"INSERT into {statement.table!r}: {len(statement.columns)} columns "
                        f"but {len(values)} values"
                    )
                table.insert_row(dict(zip(statement.columns, values)))
            else:
                table.insert_row(values)
            inserted += 1
        return QueryResult(columns=["rows_inserted"], rows=[(inserted,)])

    def _execute_delete(self, statement: Delete) -> QueryResult:
        table = self.table(statement.table)
        if statement.where is None:
            deleted = table.delete_rows()
        else:
            relation = table.to_relation()
            predicate = self._executor._row_evaluator(statement.where, relation, None)
            deleted = table.delete_rows(lambda row: is_true(predicate(row)))
        return QueryResult(columns=["rows_deleted"], rows=[(deleted,)])

    def _execute_drop_table(self, statement: DropTable) -> QueryResult:
        if not self.has_table(statement.name):
            if statement.if_exists:
                return QueryResult(columns=[], rows=[])
            raise CatalogError(f"unknown table {statement.name!r}")
        self.drop_table(statement.name)
        return QueryResult(columns=[], rows=[])

    @staticmethod
    def _literal_value(expression) -> SQLValue:
        if isinstance(expression, Literal):
            return expression.value
        if isinstance(expression, UnaryOp) and expression.op is UnaryOperator.NEG and isinstance(
            expression.operand, Literal
        ):
            value = expression.operand.value
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return -value
        raise ExecutionError("INSERT VALUES must be literal constants")

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def row_count(self, table_name: str) -> int:
        """Number of rows stored in a table."""
        return len(self.table(table_name))

    def total_rows(self) -> int:
        """Total number of rows across all tables."""
        return sum(len(table) for table in self._tables.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"Database({self.name!r}, tables={len(self._tables)}, rows={self.total_rows()})"
