"""Value-level runtime helpers shared by the interpreter and the compiler.

These functions implement the engine's SQL semantics on plain Python values:
three-valued truthiness, NULL-propagating binary/unary operators, CAST
coercion, LIKE matching and hash-key normalisation.  Both execution paths —
the tree-walking interpreter in :mod:`repro.engine.executor` and the
closure compiler in :mod:`repro.engine.compiler` — call into this module so
their results stay bit-identical by construction.
"""

from __future__ import annotations

import re

from repro.errors import ExecutionError
from repro.engine.types import SQLValue, compare_values, is_numeric
from repro.sql.ast_nodes import BinaryOperator, OrderItem, UnaryOperator


def is_true(value: SQLValue) -> bool:
    """SQL three-valued truthiness collapsed to a filter decision."""
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if is_numeric(value):
        return value != 0
    return bool(value)


def apply_binary(op: BinaryOperator, left: SQLValue, right: SQLValue) -> SQLValue:
    """Evaluate a binary operator with SQL NULL propagation."""
    if op in (BinaryOperator.AND, BinaryOperator.OR):
        if left is None or right is None:
            return None
        return is_true(left) and is_true(right) if op is BinaryOperator.AND else (
            is_true(left) or is_true(right)
        )
    if left is None or right is None:
        return None
    if op is BinaryOperator.ADD:
        return numeric_binary(left, right, lambda a, b: a + b)
    if op is BinaryOperator.SUB:
        return numeric_binary(left, right, lambda a, b: a - b)
    if op is BinaryOperator.MUL:
        return numeric_binary(left, right, lambda a, b: a * b)
    if op is BinaryOperator.DIV:
        if float(right) == 0.0:
            return None
        return numeric_binary(left, right, lambda a, b: a / b)
    if op is BinaryOperator.MOD:
        if float(right) == 0.0:
            return None
        return numeric_binary(left, right, lambda a, b: a % b)
    if op is BinaryOperator.CONCAT:
        return f"{left}{right}"
    comparison = compare_values(left, right)
    if op is BinaryOperator.EQ:
        return comparison == 0
    if op is BinaryOperator.NEQ:
        return comparison != 0
    if op is BinaryOperator.LT:
        return comparison < 0
    if op is BinaryOperator.LTE:
        return comparison <= 0
    if op is BinaryOperator.GT:
        return comparison > 0
    if op is BinaryOperator.GTE:
        return comparison >= 0
    raise ExecutionError(f"unsupported binary operator {op}")


def numeric_binary(left: SQLValue, right: SQLValue, operation) -> SQLValue:
    """Apply an arithmetic operation, coercing string operands to float."""
    try:
        left_number = float(left) if not is_numeric(left) else left
        right_number = float(right) if not is_numeric(right) else right
    except (TypeError, ValueError) as exc:
        raise ExecutionError(f"arithmetic on non-numeric values {left!r}, {right!r}") from exc
    result = operation(left_number, right_number)
    if isinstance(left_number, int) and isinstance(right_number, int) and isinstance(result, int):
        return result
    if isinstance(result, float) and result.is_integer() and isinstance(left_number, int) and isinstance(right_number, int):
        return int(result)
    return result


def apply_unary(op: UnaryOperator, operand: SQLValue) -> SQLValue:
    """Evaluate a unary operator with SQL NULL propagation."""
    if operand is None:
        return None
    if op is UnaryOperator.NEG:
        if not is_numeric(operand):
            raise ExecutionError(f"cannot negate non-numeric value {operand!r}")
        return -operand
    if op is UnaryOperator.POS:
        return operand
    if op is UnaryOperator.NOT:
        return not is_true(operand)
    raise ExecutionError(f"unsupported unary operator {op}")


def apply_cast(value: SQLValue, target_type: str) -> SQLValue:
    """Evaluate ``CAST(value AS target_type)``."""
    from repro.engine.types import DataType, coerce_value

    if value is None:
        return None
    return coerce_value(value, DataType.from_sql(target_type))


def like_regex(pattern: str) -> str:
    """Translate a SQL LIKE pattern into an anchored regular expression."""
    regex_parts: list[str] = []
    for char in pattern:
        if char == "%":
            regex_parts.append(".*")
        elif char == "_":
            regex_parts.append(".")
        else:
            regex_parts.append(re.escape(char))
    return "^" + "".join(regex_parts) + "$"


def like_match(value: str, pattern: str) -> bool:
    """Case-insensitive SQL LIKE match."""
    return re.match(like_regex(pattern), value, flags=re.IGNORECASE) is not None


def hashable_key(value: SQLValue) -> object:
    """Normalise a value for use as a hash/group key (integral floats → int)."""
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def row_key(row: tuple[SQLValue, ...]) -> tuple:
    """Normalised hash key for a whole row (DISTINCT / set operations)."""
    return tuple(hashable_key(value) for value in row)


def distinct_rows(rows: list[tuple[SQLValue, ...]]) -> list[tuple[SQLValue, ...]]:
    """First-occurrence deduplication preserving row order."""
    seen: set[tuple] = set()
    unique: list[tuple[SQLValue, ...]] = []
    for row in rows:
        key = row_key(row)
        if key not in seen:
            seen.add(key)
            unique.append(row)
    return unique


def null_aware_compare(left: SQLValue, right: SQLValue, item: OrderItem) -> int:
    """Three-way ORDER BY comparison honouring NULLS FIRST/LAST."""
    if left is None and right is None:
        return 0
    if left is None:
        if item.nulls_first is True:
            return -1
        if item.nulls_first is False:
            return 1
        return -1 if item.ascending else 1
    if right is None:
        if item.nulls_first is True:
            return 1
        if item.nulls_first is False:
            return -1
        return 1 if item.ascending else -1
    return compare_values(left, right)
