"""Value and type model for the in-memory relational engine.

The engine uses plain Python values at runtime (``None``, ``bool``, ``int``,
``float``, ``str``) and a small set of declared column types that matter for
schema profiling (Table 2's *data-type diversity* metric) and for coercion on
insert.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import TypeMismatchError


class DataType(Enum):
    """Declared column types supported by the engine."""

    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    DATE = "DATE"

    @classmethod
    def from_sql(cls, type_name: str) -> "DataType":
        """Map a SQL type name (e.g. ``VARCHAR(255)``, ``NUMBER``) to a DataType."""
        base = type_name.upper().split("(")[0].strip()
        if base in _SQL_TYPE_ALIASES:
            return _SQL_TYPE_ALIASES[base]
        return cls.TEXT


_SQL_TYPE_ALIASES: dict[str, DataType] = {
    "INT": DataType.INTEGER,
    "INTEGER": DataType.INTEGER,
    "BIGINT": DataType.INTEGER,
    "SMALLINT": DataType.INTEGER,
    "TINYINT": DataType.INTEGER,
    "SERIAL": DataType.INTEGER,
    "NUMBER": DataType.REAL,
    "NUMERIC": DataType.REAL,
    "DECIMAL": DataType.REAL,
    "REAL": DataType.REAL,
    "FLOAT": DataType.REAL,
    "DOUBLE": DataType.REAL,
    "TEXT": DataType.TEXT,
    "VARCHAR": DataType.TEXT,
    "VARCHAR2": DataType.TEXT,
    "CHAR": DataType.TEXT,
    "NCHAR": DataType.TEXT,
    "NVARCHAR": DataType.TEXT,
    "STRING": DataType.TEXT,
    "CLOB": DataType.TEXT,
    "BOOLEAN": DataType.BOOLEAN,
    "BOOL": DataType.BOOLEAN,
    "DATE": DataType.DATE,
    "DATETIME": DataType.DATE,
    "TIMESTAMP": DataType.DATE,
    "TIME": DataType.DATE,
}

#: Runtime Python value type. ``None`` represents SQL NULL.
SQLValue = object


def coerce_value(value: SQLValue, data_type: DataType) -> SQLValue:
    """Coerce a Python value to the declared column type.

    ``None`` passes through (NULL is typeless).  Failed numeric coercions raise
    :class:`TypeMismatchError` so bad synthetic data is caught early.
    """
    if value is None:
        return None
    try:
        if data_type is DataType.INTEGER:
            if isinstance(value, bool):
                return int(value)
            return int(value)
        if data_type is DataType.REAL:
            return float(value)
        if data_type is DataType.BOOLEAN:
            if isinstance(value, str):
                return value.strip().lower() in ("1", "true", "t", "yes")
            return bool(value)
        if data_type in (DataType.TEXT, DataType.DATE):
            if isinstance(value, bool):
                return "TRUE" if value else "FALSE"
            return str(value)
    except (TypeError, ValueError) as exc:
        raise TypeMismatchError(
            f"cannot coerce {value!r} to {data_type.value}"
        ) from exc
    return value


def is_numeric(value: SQLValue) -> bool:
    """Return True for int/float values that are not booleans."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare_values(left: SQLValue, right: SQLValue) -> int:
    """Three-way comparison used by ORDER BY and comparison operators.

    NULLs compare as smaller than everything (engine-internal convention; the
    executor handles SQL's NULL-propagation before calling this).  Numeric
    values compare numerically, everything else falls back to string
    comparison so heterogeneous columns never raise.
    """
    if left is None and right is None:
        return 0
    if left is None:
        return -1
    if right is None:
        return 1
    if is_numeric(left) and is_numeric(right):
        if left < right:
            return -1
        if left > right:
            return 1
        return 0
    if isinstance(left, bool) and isinstance(right, bool):
        return int(left) - int(right)
    left_str, right_str = str(left), str(right)
    if left_str < right_str:
        return -1
    if left_str > right_str:
        return 1
    return 0


def values_equal(left: SQLValue, right: SQLValue) -> bool:
    """SQL-style equality for result-set comparison (NULL equals NULL here)."""
    if left is None or right is None:
        return left is None and right is None
    if is_numeric(left) and is_numeric(right):
        return float(left) == float(right)
    return compare_values(left, right) == 0
