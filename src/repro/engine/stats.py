"""Cheap per-table statistics for the query planner.

The planner needs three things to order joins and price predicates: how many
rows a table has, how selective an equality on a column is (approximated by
the column's distinct count), and how often a column is NULL.  This module
maintains exactly that — nothing histogram-shaped — because the engine's
workloads are small enough that a full-column pass is cheap and the planner
only needs *relative* cardinalities to pick a join order.

Statistics are maintained incrementally off the engine's version counters:
every :class:`~repro.engine.storage.StoredTable` bumps its own ``version`` on
each row mutation, and :class:`StatsCatalog` recomputes a table's profile
lazily the next time it is asked about a table whose version moved.  Tables
that never change are profiled exactly once no matter how much DML happens
elsewhere, and read-only workloads never profile twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.runtime import hashable_key
from repro.engine.storage import StoredTable


@dataclass(frozen=True)
class ColumnStats:
    """Profile of one column: distinct non-NULL values and NULL fraction."""

    name: str
    distinct: int
    null_count: int
    row_count: int

    @property
    def null_fraction(self) -> float:
        """Fraction of rows where the column is NULL."""
        if self.row_count == 0:
            return 0.0
        return self.null_count / self.row_count


@dataclass
class TableStats:
    """Profile of one table at a specific table version."""

    table: str
    row_count: int
    version: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats | None:
        """Stats for a column by case-insensitive name, if profiled."""
        return self.columns.get(name.lower())


def profile_table(table: StoredTable) -> TableStats:
    """Profile every column of a table in one pass over its rows.

    Distinct counts use the same :func:`hashable_key` normalisation as the
    hash-join buckets, so an equality selectivity of ``1/distinct`` prices
    exactly the matching semantics the executor will apply.
    """
    row_count = len(table.rows)
    distinct_sets: list[set] = [set() for _ in table.columns]
    null_counts = [0] * len(table.columns)
    for row in table.rows:
        for index, value in enumerate(row):
            if value is None:
                null_counts[index] += 1
            else:
                distinct_sets[index].add(hashable_key(value))
    columns = {
        column.name.lower(): ColumnStats(
            name=column.name,
            distinct=len(distinct_sets[index]),
            null_count=null_counts[index],
            row_count=row_count,
        )
        for index, column in enumerate(table.columns)
    }
    return TableStats(
        table=table.name, row_count=row_count, version=table.version, columns=columns
    )


class StatsCatalog:
    """Lazily-maintained statistics for every table of one database.

    ``table_stats`` returns a cached profile as long as the table's own
    version counter has not moved; dropped tables fall out of the cache via
    the catalog version.  ``profiles_computed`` counts actual profiling
    passes, which tests use to assert incrementality.
    """

    def __init__(self, database: "Database") -> None:  # noqa: F821
        self._database = database
        self._profiles: dict[str, TableStats] = {}
        self._catalog_version = database.catalog_version
        self.profiles_computed = 0

    def table_stats(self, name: str) -> TableStats:
        """Current statistics for a table, recomputing only when it mutated.

        Raises:
            CatalogError: if the table does not exist.
        """
        if self._catalog_version != self._database.catalog_version:
            # CREATE/DROP may have removed — or recreated under a reused name,
            # resetting the version counter — any table; start fresh.
            self._profiles.clear()
            self._catalog_version = self._database.catalog_version
        table = self._database.table(name)
        key = table.name.lower()
        cached = self._profiles.get(key)
        if cached is not None and cached.version == table.version:
            return cached
        profile = profile_table(table)
        self.profiles_computed += 1
        self._profiles[key] = profile
        return profile

    def __len__(self) -> int:
        return len(self._profiles)
