"""Query executor for the in-memory relational engine.

Executes :class:`repro.sql.ast_nodes.Select` trees against a
:class:`repro.engine.database.Database`.  Supports the query shapes produced
by the workload generators and needed by the evaluation harnesses:

* joins (inner/left/right/full/cross) with ON / USING conditions,
* WHERE filters with three-valued NULL handling,
* GROUP BY / HAVING with the aggregate functions in
  :mod:`repro.engine.functions`, including implicit aggregation
  (``SELECT COUNT(*) FROM t``),
* correlated and uncorrelated subqueries (scalar, IN, EXISTS),
* common table expressions, set operations, DISTINCT, ORDER BY, LIMIT/OFFSET.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import ExecutionError
from repro.engine.functions import call_aggregate, call_scalar, is_scalar_function
from repro.engine.storage import ColumnLabel, Relation
from repro.engine.types import SQLValue, compare_values, is_numeric
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    BinaryOperator,
    Cast,
    CaseWhen,
    ColumnRef,
    Exists,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Join,
    JoinType,
    Like,
    Literal,
    OrderItem,
    Parameter,
    Relation as ASTRelation,
    ScalarSubquery,
    Select,
    SelectItem,
    SetOperator,
    Star,
    SubqueryRef,
    TableRef,
    UnaryOp,
    UnaryOperator,
)

#: Sentinel returned by _order_key in non-strict mode when no key was found.
_ORDER_KEY_MISS = object()

#: Aggregate function names the executor recognises.
_AGGREGATE_NAMES = {"COUNT", "SUM", "AVG", "MIN", "MAX", "GROUP_CONCAT", "STDDEV", "VARIANCE", "MEDIAN"}


@dataclass
class RowContext:
    """Binds one row of a relation for expression evaluation.

    ``parent`` links to the enclosing query's context, enabling correlated
    subqueries.  ``group_rows`` is set while evaluating aggregated output: it
    holds every (relation, row) pair of the current group so aggregate calls
    can collect their inputs.
    """

    relation: Relation | None = None
    row: tuple[SQLValue, ...] | None = None
    parent: "RowContext | None" = None
    group_rows: list[tuple[SQLValue, ...]] | None = None

    def lookup(self, name: str, table: str | None) -> SQLValue:
        """Resolve a column reference, walking up to outer query contexts."""
        context: RowContext | None = self
        while context is not None:
            if context.relation is not None and context.row is not None:
                try:
                    index = context.relation.column_index(name, table)
                    return context.row[index]
                except ExecutionError:
                    pass
            context = context.parent
        qualified = f"{table}.{name}" if table else name
        raise ExecutionError(f"unknown column reference {qualified!r}")


@dataclass
class QueryResult:
    """Materialised result of executing a query."""

    columns: list[str]
    rows: list[tuple[SQLValue, ...]] = field(default_factory=list)

    def as_relation(self) -> Relation:
        """View the result as an executor relation (columns unqualified)."""
        labels = [ColumnLabel(name=name) for name in self.columns]
        return Relation(labels=labels, rows=list(self.rows))

    def __len__(self) -> int:
        return len(self.rows)


class Executor:
    """Executes SELECT statements against a database's table catalog."""

    def __init__(self, database: "Database") -> None:  # noqa: F821 - forward ref
        self._database = database
        # Cache of uncorrelated subquery results, keyed by AST node id.  The
        # node itself is kept in the value so its id cannot be reused while the
        # cache entry is alive.  The database clears this cache on any DDL/DML.
        self._subquery_cache: dict[int, tuple[Select, QueryResult]] = {}

    def clear_cache(self) -> None:
        """Drop cached subquery results (called after data modifications)."""
        self._subquery_cache.clear()

    def _execute_subquery_cached(self, subquery: Select, context: RowContext) -> QueryResult:
        """Execute a subquery, caching the result when it is uncorrelated.

        The first execution is attempted without the outer row context; if that
        succeeds the subquery cannot reference outer columns and its result is
        reused for every outer row.  Correlated subqueries fall back to per-row
        execution.
        """
        key = id(subquery)
        cached = self._subquery_cache.get(key)
        if cached is not None and cached[0] is subquery:
            return cached[1]
        try:
            result = self.execute_select(subquery, None)
        except ExecutionError:
            return self.execute_select(subquery, context)
        self._subquery_cache[key] = (subquery, result)
        return result

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------

    def execute_select(self, select: Select, outer: RowContext | None = None) -> QueryResult:
        """Execute a SELECT and return a materialised result."""
        cte_scope: dict[str, Relation] = {}
        for cte in select.ctes:
            result = self.execute_select(cte.query, outer)
            relation = result.as_relation()
            if cte.column_names:
                if len(cte.column_names) != len(relation.labels):
                    raise ExecutionError(
                        f"CTE {cte.name!r} declares {len(cte.column_names)} columns "
                        f"but its query produces {len(relation.labels)}"
                    )
                relation = Relation(
                    labels=[ColumnLabel(name=name) for name in cte.column_names],
                    rows=relation.rows,
                )
            cte_scope[cte.name.lower()] = relation

        return self._execute_body(select, cte_scope, outer)

    # ------------------------------------------------------------------
    # core execution
    # ------------------------------------------------------------------

    def _execute_body(
        self, select: Select, cte_scope: dict[str, Relation], outer: RowContext | None
    ) -> QueryResult:
        if select.set_operator is not None and select.set_right is not None:
            return self._execute_set_operation(select, cte_scope, outer)

        source = self._execute_relation(select.from_relation, cte_scope, outer)

        # WHERE
        filtered_rows: list[tuple[SQLValue, ...]] = []
        if select.where is not None:
            for row in source.rows:
                context = RowContext(relation=source, row=row, parent=outer)
                if _is_true(self._evaluate(select.where, context)):
                    filtered_rows.append(row)
        else:
            filtered_rows = list(source.rows)

        needs_aggregation = bool(select.group_by) or self._has_aggregate_items(select)

        if needs_aggregation:
            result = self._execute_aggregation(select, source, filtered_rows, outer)
        else:
            result = self._execute_projection(select, source, filtered_rows, outer)

        if select.distinct:
            result = QueryResult(columns=result.columns, rows=_distinct_rows(result.rows))

        if select.order_by:
            result = self._apply_order_by(select, source, filtered_rows, result, outer, needs_aggregation)

        if select.limit is not None or select.offset is not None:
            offset = select.offset or 0
            end = offset + select.limit if select.limit is not None else None
            result = QueryResult(columns=result.columns, rows=result.rows[offset:end])

        return result

    def _execute_set_operation(
        self, select: Select, cte_scope: dict[str, Relation], outer: RowContext | None
    ) -> QueryResult:
        left_core = Select(
            select_items=select.select_items,
            distinct=select.distinct,
            from_relation=select.from_relation,
            where=select.where,
            group_by=select.group_by,
            having=select.having,
        )
        left = self._execute_body(left_core, cte_scope, outer)
        right = self._execute_body(select.set_right, cte_scope, outer)
        if len(left.columns) != len(right.columns):
            raise ExecutionError(
                "set operation requires both sides to produce the same number of columns"
            )

        if select.set_operator is SetOperator.UNION_ALL:
            rows = left.rows + right.rows
        elif select.set_operator is SetOperator.UNION:
            rows = _distinct_rows(left.rows + right.rows)
        elif select.set_operator is SetOperator.INTERSECT:
            right_set = {_row_key(row) for row in right.rows}
            rows = _distinct_rows([row for row in left.rows if _row_key(row) in right_set])
        else:  # EXCEPT
            right_set = {_row_key(row) for row in right.rows}
            rows = _distinct_rows([row for row in left.rows if _row_key(row) not in right_set])

        result = QueryResult(columns=left.columns, rows=rows)

        if select.order_by:
            relation = result.as_relation()
            result = QueryResult(
                columns=result.columns,
                rows=self._sort_output_rows(select.order_by, relation, result.rows, outer),
            )
        if select.limit is not None or select.offset is not None:
            offset = select.offset or 0
            end = offset + select.limit if select.limit is not None else None
            result = QueryResult(columns=result.columns, rows=result.rows[offset:end])
        return result

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------

    def _execute_relation(
        self,
        relation: ASTRelation | None,
        cte_scope: dict[str, Relation],
        outer: RowContext | None,
    ) -> Relation:
        if relation is None:
            # SELECT without FROM: a single empty row so expressions evaluate once.
            return Relation(labels=[], rows=[tuple()])
        if isinstance(relation, TableRef):
            return self._resolve_table(relation, cte_scope)
        if isinstance(relation, SubqueryRef):
            result = self.execute_select(relation.query, outer)
            return result.as_relation().renamed(relation.alias)
        if isinstance(relation, Join):
            return self._execute_join(relation, cte_scope, outer)
        raise ExecutionError(f"unsupported relation node {type(relation).__name__}")

    def _resolve_table(self, table_ref: TableRef, cte_scope: dict[str, Relation]) -> Relation:
        key = table_ref.name.lower()
        if key in cte_scope:
            relation = cte_scope[key]
            return relation.renamed(table_ref.effective_name)
        stored = self._database.table(table_ref.name)
        return stored.to_relation(alias=table_ref.effective_name)

    def _execute_join(
        self, join: Join, cte_scope: dict[str, Relation], outer: RowContext | None
    ) -> Relation:
        left = self._execute_relation(join.left, cte_scope, outer)
        right = self._execute_relation(join.right, cte_scope, outer)
        labels = left.labels + right.labels
        combined = Relation(labels=labels)

        condition = join.condition
        if join.using_columns and condition is None:
            condition = self._build_using_condition(join.using_columns, left, right)

        rows: list[tuple[SQLValue, ...]] = []
        matched_right: set[int] = set()

        equi_columns = self._equi_join_columns(condition, left, right)
        if equi_columns is not None:
            left_index, right_index_position = equi_columns
            buckets: dict[object, list[int]] = {}
            for position, right_row in enumerate(right.rows):
                key = _hashable(right_row[right_index_position])
                if key is None:
                    continue
                buckets.setdefault(key, []).append(position)
            for left_row in left.rows:
                key = _hashable(left_row[left_index])
                positions = buckets.get(key, []) if key is not None else []
                if positions:
                    for position in positions:
                        rows.append(left_row + right.rows[position])
                        matched_right.add(position)
                elif join.join_type in (JoinType.LEFT, JoinType.FULL):
                    rows.append(left_row + tuple([None] * len(right.labels)))
        else:
            def matches(left_row: tuple, right_row: tuple) -> bool:
                if condition is None:
                    return True
                context = RowContext(relation=combined, row=left_row + right_row, parent=outer)
                return _is_true(self._evaluate(condition, context))

            for left_row in left.rows:
                matched = False
                for right_position, right_row in enumerate(right.rows):
                    if matches(left_row, right_row):
                        rows.append(left_row + right_row)
                        matched = True
                        matched_right.add(right_position)
                if not matched and join.join_type in (JoinType.LEFT, JoinType.FULL):
                    rows.append(left_row + tuple([None] * len(right.labels)))

        if join.join_type in (JoinType.RIGHT, JoinType.FULL):
            for right_position, right_row in enumerate(right.rows):
                if right_position not in matched_right:
                    rows.append(tuple([None] * len(left.labels)) + right_row)

        combined.rows = rows
        return combined

    def _equi_join_columns(
        self, condition: Expression | None, left: Relation, right: Relation
    ) -> tuple[int, int] | None:
        """Resolve a simple equality join condition to (left index, right index).

        Returns None when the condition is not a plain column equality spanning
        the two inputs, in which case the executor falls back to a nested loop.
        """
        if not isinstance(condition, BinaryOp) or condition.op is not BinaryOperator.EQ:
            return None
        if not isinstance(condition.left, ColumnRef) or not isinstance(condition.right, ColumnRef):
            return None
        for first, second in ((condition.left, condition.right), (condition.right, condition.left)):
            try:
                left_position = left.column_index(first.name, first.table)
                right_position = right.column_index(second.name, second.table)
                return left_position, right_position
            except ExecutionError:
                continue
        return None

    @staticmethod
    def _build_using_condition(columns: list[str], left: Relation, right: Relation) -> Expression:
        condition: Expression | None = None
        for name in columns:
            left_label = next(label for label in left.labels if label.matches(name))
            right_label = next(label for label in right.labels if label.matches(name))
            comparison = BinaryOp(
                op=BinaryOperator.EQ,
                left=ColumnRef(name=left_label.name, table=left_label.relation or None),
                right=ColumnRef(name=right_label.name, table=right_label.relation or None),
            )
            condition = comparison if condition is None else BinaryOp(
                op=BinaryOperator.AND, left=condition, right=comparison
            )
        assert condition is not None
        return condition

    # ------------------------------------------------------------------
    # projection / aggregation
    # ------------------------------------------------------------------

    def _expand_select_items(self, select: Select, source: Relation) -> list[SelectItem]:
        expanded: list[SelectItem] = []
        for item in select.select_items:
            if isinstance(item.expression, Star):
                table_filter = item.expression.table
                for label in source.labels:
                    if table_filter and label.relation.lower() != table_filter.lower():
                        continue
                    expanded.append(
                        SelectItem(
                            expression=ColumnRef(name=label.name, table=label.relation or None),
                            alias=label.name,
                        )
                    )
            else:
                expanded.append(item)
        return expanded

    def _execute_projection(
        self,
        select: Select,
        source: Relation,
        rows: list[tuple[SQLValue, ...]],
        outer: RowContext | None,
    ) -> QueryResult:
        items = self._expand_select_items(select, source)
        columns = [_output_name(item, index) for index, item in enumerate(items)]
        output_rows: list[tuple[SQLValue, ...]] = []
        for row in rows:
            context = RowContext(relation=source, row=row, parent=outer)
            output_rows.append(tuple(self._evaluate(item.expression, context) for item in items))
        return QueryResult(columns=columns, rows=output_rows)

    def _has_aggregate_items(self, select: Select) -> bool:
        expressions: list[Expression | None] = [item.expression for item in select.select_items]
        expressions.append(select.having)
        for expression in expressions:
            if expression is not None and _contains_aggregate(expression):
                return True
        return False

    def _execute_aggregation(
        self,
        select: Select,
        source: Relation,
        rows: list[tuple[SQLValue, ...]],
        outer: RowContext | None,
    ) -> QueryResult:
        items = self._expand_select_items(select, source)
        columns = [_output_name(item, index) for index, item in enumerate(items)]

        groups: dict[tuple, list[tuple[SQLValue, ...]]] = {}
        if select.group_by:
            for row in rows:
                context = RowContext(relation=source, row=row, parent=outer)
                key = tuple(
                    _hashable(self._evaluate(expression, context)) for expression in select.group_by
                )
                groups.setdefault(key, []).append(row)
        else:
            groups[()] = rows

        output_rows: list[tuple[SQLValue, ...]] = []
        for _, group_rows in groups.items():
            representative = group_rows[0] if group_rows else tuple([None] * len(source.labels))
            context = RowContext(
                relation=source, row=representative, parent=outer, group_rows=group_rows
            )
            if select.having is not None:
                if not _is_true(self._evaluate_aggregate_aware(select.having, context, source, outer)):
                    continue
            output_rows.append(
                tuple(
                    self._evaluate_aggregate_aware(item.expression, context, source, outer)
                    for item in items
                )
            )
        return QueryResult(columns=columns, rows=output_rows)

    # ------------------------------------------------------------------
    # ORDER BY
    # ------------------------------------------------------------------

    def _apply_order_by(
        self,
        select: Select,
        source: Relation,
        source_rows: list[tuple[SQLValue, ...]],
        result: QueryResult,
        outer: RowContext | None,
        aggregated: bool,
    ) -> QueryResult:
        output_relation = result.as_relation()
        expression_positions = self._projected_expression_positions(select, source)

        if not aggregated and not select.distinct and len(source_rows) == len(result.rows):
            # Sort keys may reference columns that were not projected; evaluate
            # them against the source rows, which stay aligned with the output.
            return QueryResult(
                columns=result.columns,
                rows=self._sort_with_source(
                    select.order_by, output_relation, result.rows, source, source_rows,
                    outer, expression_positions,
                ),
            )
        return QueryResult(
            columns=result.columns,
            rows=self._sort_output_rows(
                select.order_by, output_relation, result.rows, outer, expression_positions
            ),
        )

    def _projected_expression_positions(
        self, select: Select, source: Relation
    ) -> dict[str, int]:
        """Map printed select-item expressions to their output positions."""
        from repro.sql.printer import print_expression

        positions: dict[str, int] = {}
        items = self._expand_select_items(select, source)
        for index, item in enumerate(items):
            try:
                positions.setdefault(print_expression(item.expression), index)
            except Exception:
                continue
        return positions

    def _sort_with_source(
        self,
        order_by: list[OrderItem],
        output_relation: Relation,
        rows: list[tuple[SQLValue, ...]],
        source: Relation,
        source_rows: list[tuple[SQLValue, ...]],
        outer: RowContext | None,
        expression_positions: dict[str, int],
    ) -> list[tuple[SQLValue, ...]]:
        import functools

        paired = list(zip(rows, source_rows))

        def key_for(item: OrderItem, output_row: tuple, source_row: tuple) -> SQLValue:
            value = self._order_key(
                item, output_relation, output_row, outer, expression_positions, strict=False
            )
            if value is not _ORDER_KEY_MISS:
                return value
            context = RowContext(relation=source, row=source_row, parent=outer)
            try:
                return self._evaluate(item.expression, context)
            except ExecutionError:
                return None

        def compare(left: tuple, right: tuple) -> int:
            for item in order_by:
                value_a = key_for(item, left[0], left[1])
                value_b = key_for(item, right[0], right[1])
                comparison = _null_aware_compare(value_a, value_b, item)
                if comparison != 0:
                    return comparison if item.ascending else -comparison
            return 0

        return [pair[0] for pair in sorted(paired, key=functools.cmp_to_key(compare))]

    def _sort_output_rows(
        self,
        order_by: list[OrderItem],
        output_relation: Relation,
        rows: list[tuple[SQLValue, ...]],
        outer: RowContext | None,
        expression_positions: dict[str, int] | None = None,
    ) -> list[tuple[SQLValue, ...]]:
        import functools

        positions = expression_positions or {}

        def compare(row_a: tuple, row_b: tuple) -> int:
            for item in order_by:
                value_a = self._order_key(item, output_relation, row_a, outer, positions)
                value_b = self._order_key(item, output_relation, row_b, outer, positions)
                comparison = _null_aware_compare(value_a, value_b, item)
                if comparison != 0:
                    return comparison if item.ascending else -comparison
            return 0

        return sorted(rows, key=functools.cmp_to_key(compare))

    def _order_key(
        self,
        item: OrderItem,
        output_relation: Relation,
        row: tuple[SQLValue, ...],
        outer: RowContext | None,
        expression_positions: dict[str, int] | None = None,
        strict: bool = True,
    ) -> SQLValue:
        expression = item.expression
        # ORDER BY <position>
        if isinstance(expression, Literal) and isinstance(expression.value, int):
            index = expression.value - 1
            if 0 <= index < len(row):
                return row[index]
            raise ExecutionError(f"ORDER BY position {expression.value} is out of range")
        # ORDER BY <output column or alias>
        if isinstance(expression, ColumnRef):
            try:
                index = output_relation.column_index(expression.name, expression.table)
                return row[index]
            except ExecutionError:
                pass
        # ORDER BY <expression identical to a projected expression> (e.g. COUNT(*)).
        if expression_positions:
            from repro.sql.printer import print_expression

            try:
                printed = print_expression(expression)
            except Exception:
                printed = None
            if printed is not None and printed in expression_positions:
                return row[expression_positions[printed]]
        if not strict:
            return _ORDER_KEY_MISS
        context = RowContext(relation=output_relation, row=row, parent=outer)
        try:
            return self._evaluate(expression, context)
        except ExecutionError:
            return None

    # ------------------------------------------------------------------
    # expression evaluation
    # ------------------------------------------------------------------

    def _evaluate_aggregate_aware(
        self,
        expression: Expression,
        context: RowContext,
        source: Relation,
        outer: RowContext | None,
    ) -> SQLValue:
        """Evaluate an expression in grouped mode (aggregates over the group)."""
        if isinstance(expression, FunctionCall) and expression.upper_name in _AGGREGATE_NAMES:
            group_rows = context.group_rows or []
            count_star = bool(expression.args) and isinstance(expression.args[0], Star)
            if count_star or not expression.args:
                values: list[SQLValue] = [1] * len(group_rows)
            else:
                values = []
                for row in group_rows:
                    row_context = RowContext(relation=source, row=row, parent=outer)
                    values.append(self._evaluate(expression.args[0], row_context))
            return call_aggregate(expression.upper_name, values, expression.distinct, count_star)
        if isinstance(expression, BinaryOp):
            left = self._evaluate_aggregate_aware(expression.left, context, source, outer)
            right = self._evaluate_aggregate_aware(expression.right, context, source, outer)
            return _apply_binary(expression.op, left, right)
        if isinstance(expression, UnaryOp):
            operand = self._evaluate_aggregate_aware(expression.operand, context, source, outer)
            return _apply_unary(expression.op, operand)
        if isinstance(expression, FunctionCall) and is_scalar_function(expression.name):
            args = [
                self._evaluate_aggregate_aware(arg, context, source, outer)
                for arg in expression.args
            ]
            return call_scalar(expression.name, args)
        if isinstance(expression, CaseWhen):
            for condition, result in expression.conditions:
                if _is_true(self._evaluate_aggregate_aware(condition, context, source, outer)):
                    return self._evaluate_aggregate_aware(result, context, source, outer)
            if expression.else_result is not None:
                return self._evaluate_aggregate_aware(expression.else_result, context, source, outer)
            return None
        if isinstance(expression, Cast):
            operand = self._evaluate_aggregate_aware(expression.operand, context, source, outer)
            return _apply_cast(operand, expression.target_type)
        return self._evaluate(expression, context)

    def _evaluate(self, expression: Expression, context: RowContext) -> SQLValue:
        if isinstance(expression, Literal):
            return expression.value
        if isinstance(expression, ColumnRef):
            return context.lookup(expression.name, expression.table)
        if isinstance(expression, Star):
            raise ExecutionError("'*' is only valid inside COUNT(*) or the select list")
        if isinstance(expression, Parameter):
            raise ExecutionError("bind parameters are not supported during direct execution")
        if isinstance(expression, BinaryOp):
            if expression.op is BinaryOperator.AND:
                left = self._evaluate(expression.left, context)
                if left is False:
                    return False
                right = self._evaluate(expression.right, context)
                if right is False:
                    return False
                if left is None or right is None:
                    return None
                return _is_true(left) and _is_true(right)
            if expression.op is BinaryOperator.OR:
                left = self._evaluate(expression.left, context)
                if _is_true(left):
                    return True
                right = self._evaluate(expression.right, context)
                if _is_true(right):
                    return True
                if left is None or right is None:
                    return None
                return False
            left = self._evaluate(expression.left, context)
            right = self._evaluate(expression.right, context)
            return _apply_binary(expression.op, left, right)
        if isinstance(expression, UnaryOp):
            operand = self._evaluate(expression.operand, context)
            return _apply_unary(expression.op, operand)
        if isinstance(expression, FunctionCall):
            if expression.upper_name in _AGGREGATE_NAMES:
                # Aggregate outside grouped evaluation: aggregate over the group
                # rows when available, otherwise this is a malformed query.
                if context.group_rows is not None and context.relation is not None:
                    values = []
                    count_star = bool(expression.args) and isinstance(expression.args[0], Star)
                    for row in context.group_rows:
                        if count_star or not expression.args:
                            values.append(1)
                        else:
                            row_context = RowContext(
                                relation=context.relation, row=row, parent=context.parent
                            )
                            values.append(self._evaluate(expression.args[0], row_context))
                    return call_aggregate(
                        expression.upper_name, values, expression.distinct, count_star
                    )
                raise ExecutionError(
                    f"aggregate {expression.upper_name} used outside aggregation context"
                )
            args = [self._evaluate(arg, context) for arg in expression.args]
            return call_scalar(expression.name, args)
        if isinstance(expression, Cast):
            return _apply_cast(self._evaluate(expression.operand, context), expression.target_type)
        if isinstance(expression, CaseWhen):
            for condition, result in expression.conditions:
                if _is_true(self._evaluate(condition, context)):
                    return self._evaluate(result, context)
            if expression.else_result is not None:
                return self._evaluate(expression.else_result, context)
            return None
        if isinstance(expression, IsNull):
            value = self._evaluate(expression.operand, context)
            result = value is None
            return not result if expression.negated else result
        if isinstance(expression, InList):
            value = self._evaluate(expression.operand, context)
            if value is None:
                return None
            members = [self._evaluate(item, context) for item in expression.values]
            contained = any(
                member is not None and compare_values(value, member) == 0 for member in members
            )
            return not contained if expression.negated else contained
        if isinstance(expression, InSubquery):
            value = self._evaluate(expression.operand, context)
            if value is None:
                return None
            result = self._execute_subquery_cached(expression.subquery, context)
            members = [row[0] for row in result.rows if row]
            contained = any(
                member is not None and compare_values(value, member) == 0 for member in members
            )
            return not contained if expression.negated else contained
        if isinstance(expression, Exists):
            result = self._execute_subquery_cached(expression.subquery, context)
            exists = len(result.rows) > 0
            return not exists if expression.negated else exists
        if isinstance(expression, Between):
            value = self._evaluate(expression.operand, context)
            low = self._evaluate(expression.low, context)
            high = self._evaluate(expression.high, context)
            if value is None or low is None or high is None:
                return None
            in_range = compare_values(value, low) >= 0 and compare_values(value, high) <= 0
            return not in_range if expression.negated else in_range
        if isinstance(expression, Like):
            value = self._evaluate(expression.operand, context)
            pattern = self._evaluate(expression.pattern, context)
            if value is None or pattern is None:
                return None
            matched = _like_match(str(value), str(pattern))
            return not matched if expression.negated else matched
        if isinstance(expression, ScalarSubquery):
            result = self._execute_subquery_cached(expression.query, context)
            if not result.rows:
                return None
            if len(result.rows[0]) != 1:
                raise ExecutionError("scalar subquery must return exactly one column")
            return result.rows[0][0]
        raise ExecutionError(f"unsupported expression node {type(expression).__name__}")


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _output_name(item: SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    expression = item.expression
    if isinstance(expression, ColumnRef):
        return expression.name
    if isinstance(expression, FunctionCall):
        return expression.upper_name.lower()
    return f"col_{index}"


def _is_true(value: SQLValue) -> bool:
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if is_numeric(value):
        return value != 0
    return bool(value)


def _contains_aggregate(expression: Expression) -> bool:
    from repro.sql.analyzer import iter_expressions

    for node in iter_expressions(expression):
        if isinstance(node, FunctionCall) and node.upper_name in _AGGREGATE_NAMES:
            return True
    return False


def _apply_binary(op: BinaryOperator, left: SQLValue, right: SQLValue) -> SQLValue:
    if op in (BinaryOperator.AND, BinaryOperator.OR):
        if left is None or right is None:
            return None
        return _is_true(left) and _is_true(right) if op is BinaryOperator.AND else (
            _is_true(left) or _is_true(right)
        )
    if left is None or right is None:
        return None
    if op is BinaryOperator.ADD:
        return _numeric_binary(left, right, lambda a, b: a + b)
    if op is BinaryOperator.SUB:
        return _numeric_binary(left, right, lambda a, b: a - b)
    if op is BinaryOperator.MUL:
        return _numeric_binary(left, right, lambda a, b: a * b)
    if op is BinaryOperator.DIV:
        if float(right) == 0.0:
            return None
        return _numeric_binary(left, right, lambda a, b: a / b)
    if op is BinaryOperator.MOD:
        if float(right) == 0.0:
            return None
        return _numeric_binary(left, right, lambda a, b: a % b)
    if op is BinaryOperator.CONCAT:
        return f"{left}{right}"
    comparison = compare_values(left, right)
    if op is BinaryOperator.EQ:
        return comparison == 0
    if op is BinaryOperator.NEQ:
        return comparison != 0
    if op is BinaryOperator.LT:
        return comparison < 0
    if op is BinaryOperator.LTE:
        return comparison <= 0
    if op is BinaryOperator.GT:
        return comparison > 0
    if op is BinaryOperator.GTE:
        return comparison >= 0
    raise ExecutionError(f"unsupported binary operator {op}")


def _numeric_binary(left: SQLValue, right: SQLValue, operation) -> SQLValue:
    try:
        left_number = float(left) if not is_numeric(left) else left
        right_number = float(right) if not is_numeric(right) else right
    except (TypeError, ValueError) as exc:
        raise ExecutionError(f"arithmetic on non-numeric values {left!r}, {right!r}") from exc
    result = operation(left_number, right_number)
    if isinstance(left_number, int) and isinstance(right_number, int) and isinstance(result, int):
        return result
    if isinstance(result, float) and result.is_integer() and isinstance(left_number, int) and isinstance(right_number, int):
        return int(result)
    return result


def _apply_unary(op: UnaryOperator, operand: SQLValue) -> SQLValue:
    if operand is None:
        return None
    if op is UnaryOperator.NEG:
        if not is_numeric(operand):
            raise ExecutionError(f"cannot negate non-numeric value {operand!r}")
        return -operand
    if op is UnaryOperator.POS:
        return operand
    if op is UnaryOperator.NOT:
        return not _is_true(operand)
    raise ExecutionError(f"unsupported unary operator {op}")


def _apply_cast(value: SQLValue, target_type: str) -> SQLValue:
    from repro.engine.types import DataType, coerce_value

    if value is None:
        return None
    return coerce_value(value, DataType.from_sql(target_type))


def _like_match(value: str, pattern: str) -> bool:
    regex_parts: list[str] = []
    for char in pattern:
        if char == "%":
            regex_parts.append(".*")
        elif char == "_":
            regex_parts.append(".")
        else:
            regex_parts.append(re.escape(char))
    regex = "^" + "".join(regex_parts) + "$"
    return re.match(regex, value, flags=re.IGNORECASE) is not None


def _hashable(value: SQLValue) -> object:
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def _row_key(row: tuple[SQLValue, ...]) -> tuple:
    return tuple(_hashable(value) for value in row)


def _distinct_rows(rows: list[tuple[SQLValue, ...]]) -> list[tuple[SQLValue, ...]]:
    seen: set[tuple] = set()
    unique: list[tuple[SQLValue, ...]] = []
    for row in rows:
        key = _row_key(row)
        if key not in seen:
            seen.add(key)
            unique.append(row)
    return unique


def _null_aware_compare(left: SQLValue, right: SQLValue, item: OrderItem) -> int:
    if left is None and right is None:
        return 0
    if left is None:
        if item.nulls_first is True:
            return -1
        if item.nulls_first is False:
            return 1
        return -1 if item.ascending else 1
    if right is None:
        if item.nulls_first is True:
            return 1
        if item.nulls_first is False:
            return -1
        return 1 if item.ascending else -1
    return compare_values(left, right)
