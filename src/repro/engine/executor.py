"""Query executor for the in-memory relational engine.

Executes :class:`repro.sql.ast_nodes.Select` trees against a
:class:`repro.engine.database.Database`.  Supports the query shapes produced
by the workload generators and needed by the evaluation harnesses:

* joins (inner/left/right/full/cross) with ON / USING conditions,
* WHERE filters with three-valued NULL handling,
* GROUP BY / HAVING with the aggregate functions in
  :mod:`repro.engine.functions`, including implicit aggregation
  (``SELECT COUNT(*) FROM t``),
* correlated and uncorrelated subqueries (scalar, IN, EXISTS),
* common table expressions, set operations, DISTINCT, ORDER BY, LIMIT/OFFSET.

The executor has three expression-evaluation paths, selected by ``mode``:

* ``"compiled"`` (default): each WHERE predicate, join condition, projection
  item, grouping key, ORDER BY key and HAVING clause is compiled once into a
  Python closure with column indices pre-resolved
  (:mod:`repro.engine.compiler`); AND-of-equality join conditions run as
  multi-key hash joins; compiled plans are cached per AST node and relation
  shape, invalidated by the database's catalog version.
* ``"planned"``: everything ``"compiled"`` does, plus a cost-based source
  planner (:mod:`repro.engine.planner`) that reorders INNER-join chains and
  pushes single-table WHERE conjuncts below the joins as scan pre-filters.
  Queries the planner cannot prove equivalent fall back to the compiled
  path, so planned results stay bit-identical to the other two modes.
* ``"interpreted"``: the original per-row tree-walking evaluator, kept
  verbatim as the semantic reference.  The parity suite runs every query
  through all modes and asserts bit-identical results.

Expressions the compiler cannot handle (correlated subqueries, outer column
references, unknown functions) transparently fall back to the interpreter
for that expression only, so compiled mode never changes semantics.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field

from repro.errors import EngineError, ExecutionError
from repro.engine.compiler import (
    AGGREGATE_NAMES as _AGGREGATE_NAMES,
    CompileCounters,
    compile_group_expression,
    compile_row_expression,
    contains_aggregate as _contains_aggregate,
)
from repro.engine.functions import call_aggregate, call_scalar, is_scalar_function
from repro.engine.runtime import (
    apply_binary as _apply_binary,
    apply_cast as _apply_cast,
    apply_unary as _apply_unary,
    distinct_rows as _distinct_rows,
    hashable_key as _hashable,
    is_true as _is_true,
    like_match as _like_match,
    null_aware_compare as _null_aware_compare,
    row_key as _row_key,
)
from repro.engine.storage import ColumnLabel, Relation
from repro.engine.types import SQLValue, compare_values
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    BinaryOperator,
    Cast,
    CaseWhen,
    ColumnRef,
    Exists,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Join,
    JoinType,
    Like,
    Literal,
    OrderItem,
    Parameter,
    Relation as ASTRelation,
    ScalarSubquery,
    Select,
    SelectItem,
    SetOperator,
    Star,
    SubqueryRef,
    TableRef,
    UnaryOp,
)

#: Sentinel returned by _order_key in non-strict mode when no key was found.
_ORDER_KEY_MISS = object()

#: Executor modes understood by :class:`Executor` and :class:`Database`.
EXECUTOR_MODES = ("compiled", "interpreted", "planned")

#: Compiled-plan cache bound; the cache is cleared wholesale beyond this.
_PLAN_CACHE_LIMIT = 4096

#: Cached-subquery-result bound.
_SUBQUERY_CACHE_LIMIT = 1024

#: Operator-entry bound for one EXPLAIN ANALYZE run (correlated subqueries
#: re-execute per outer row and would otherwise grow the list without bound).
_ANALYZE_OPERATOR_LIMIT = 256


class _AnalyzeCollector:
    """Accumulates per-operator timings during one EXPLAIN ANALYZE execution.

    The executor holds at most one collector at a time (``Executor._analyze``);
    when it is ``None`` — the normal case — the execution path pays only a
    handful of ``is not None`` branch checks.  ``depth`` tracks SELECT-body
    nesting (subqueries, CTE bodies, set-operation branches) so the operator
    list can be rendered as a tree.
    """

    __slots__ = ("operators", "depth", "truncated")

    def __init__(self) -> None:
        self.operators: list[dict] = []
        self.depth = 0
        self.truncated = False

    def enter(self) -> None:
        self.depth += 1

    def exit(self) -> None:
        self.depth -= 1

    def record(
        self, op: str, seconds: float, rows_in: int, rows_out: int, **detail
    ) -> None:
        if len(self.operators) >= _ANALYZE_OPERATOR_LIMIT:
            self.truncated = True
            return
        entry = {
            "op": op,
            "seconds": round(seconds, 9),
            "rows_in": rows_in,
            "rows_out": rows_out,
            "depth": self.depth - 1,
        }
        if detail:
            entry.update(detail)
        self.operators.append(entry)


@dataclass
class RowContext:
    """Binds one row of a relation for expression evaluation.

    ``parent`` links to the enclosing query's context, enabling correlated
    subqueries.  ``group_rows`` is set while evaluating aggregated output: it
    holds every (relation, row) pair of the current group so aggregate calls
    can collect their inputs.
    """

    relation: Relation | None = None
    row: tuple[SQLValue, ...] | None = None
    parent: "RowContext | None" = None
    group_rows: list[tuple[SQLValue, ...]] | None = None

    def lookup(self, name: str, table: str | None) -> SQLValue:
        """Resolve a column reference, walking up to outer query contexts."""
        context: RowContext | None = self
        while context is not None:
            if context.relation is not None and context.row is not None:
                try:
                    index = context.relation.column_index(name, table)
                    return context.row[index]
                except ExecutionError:
                    pass
            context = context.parent
        qualified = f"{table}.{name}" if table else name
        raise ExecutionError(f"unknown column reference {qualified!r}")


@dataclass
class QueryResult:
    """Materialised result of executing a query."""

    columns: list[str]
    rows: list[tuple[SQLValue, ...]] = field(default_factory=list)

    def as_relation(self) -> Relation:
        """View the result as an executor relation (columns unqualified)."""
        labels = [ColumnLabel(name=name) for name in self.columns]
        return Relation(labels=labels, rows=list(self.rows))

    def __len__(self) -> int:
        return len(self.rows)


class Executor:
    """Executes SELECT statements against a database's table catalog."""

    def __init__(self, database: "Database", mode: str = "compiled") -> None:  # noqa: F821
        if mode not in EXECUTOR_MODES:
            raise ValueError(f"unknown executor mode {mode!r}; expected one of {EXECUTOR_MODES}")
        self._database = database
        self.mode = mode
        # Cache of uncorrelated subquery results, keyed by AST node id.  The
        # node itself is kept in the value so its id cannot be reused while the
        # cache entry is alive; each entry is tagged with the database's data
        # version so DML invalidates it lazily without a full clear.
        self._subquery_cache: dict[int, tuple[Select, int, QueryResult]] = {}
        # Subqueries known to be correlated (their context-free execution
        # failed once); they skip the doomed context-free attempt afterwards.
        self._subquery_kind: dict[int, tuple[Select, bool]] = {}
        # Compiled-plan cache: (node id, kind, relation signature) -> closure
        # (or None for known-uncompilable expressions).  Tagged with the
        # catalog version: schema changes can move column indices.
        self._plan_cache: dict[tuple, tuple[object, object]] = {}
        self._plan_version: int = -1
        #: Compiled-plan cache accounting (EXPLAIN ANALYZE reports deltas).
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        #: Expression-compile outcome tallies (compiled vs interpreter fallback).
        self.compile_counters = CompileCounters()
        # Active EXPLAIN ANALYZE collector; None outside analyze_select.
        self._analyze: _AnalyzeCollector | None = None
        # Source planner (join reordering + predicate pushdown); created
        # lazily so the import stays off the interpreted/compiled hot path.
        self._planner = None

    @property
    def planner(self):
        """The database's :class:`~repro.engine.planner.QueryPlanner`."""
        if self._planner is None:
            from repro.engine.planner import QueryPlanner

            self._planner = QueryPlanner(
                self._database,
                staleness_threshold=getattr(
                    self._database, "plan_staleness_threshold", 64
                ),
            )
        return self._planner

    def clear_cache(self) -> None:
        """Drop cached subquery results, compiled plans and source plans."""
        self._subquery_cache.clear()
        self._subquery_kind.clear()
        self._plan_cache.clear()
        if self._planner is not None:
            self._planner.clear()

    def _execute_subquery_cached(self, subquery: Select, context: RowContext) -> QueryResult:
        """Execute a subquery, caching the result when it is uncorrelated.

        The first execution is attempted without the outer row context; if that
        succeeds the subquery cannot reference outer columns and its result is
        reused for every outer row — and, because entries are tagged with the
        database's data version, across repeated executions of the same cached
        statement until the next DML.  Correlated subqueries fall back to
        per-row execution, and are remembered as correlated so later rows skip
        the doomed context-free attempt.
        """
        version = self._database.data_version
        key = id(subquery)
        cached = self._subquery_cache.get(key)
        if cached is not None and cached[0] is subquery and cached[1] == version:
            return cached[2]
        kind = self._subquery_kind.get(key)
        known_correlated = kind is not None and kind[0] is subquery and kind[1]
        if not known_correlated:
            try:
                result = self.execute_select(subquery, None)
            except ExecutionError:
                if len(self._subquery_kind) >= _SUBQUERY_CACHE_LIMIT:
                    self._subquery_kind.clear()
                self._subquery_kind[key] = (subquery, True)
            else:
                if len(self._subquery_cache) >= _SUBQUERY_CACHE_LIMIT:
                    self._subquery_cache.clear()
                self._subquery_cache[key] = (subquery, version, result)
                return result
        return self.execute_select(subquery, context)

    # ------------------------------------------------------------------
    # compiled-plan helpers
    # ------------------------------------------------------------------

    def _cached_plan(self, anchor: object, kind: str, signature: tuple, build):
        """Memoise a compiled artifact for an AST node under a relation shape.

        ``anchor`` is the AST node the artifact was derived from; it is stored
        in the entry so its id cannot be recycled while the entry lives.  The
        ``signature`` (typically the relation's label tuple) guards against
        the same node being compiled against differently-shaped inputs.
        """
        if self._plan_version != self._database.catalog_version:
            self._plan_cache.clear()
            self._plan_version = self._database.catalog_version
        key = (id(anchor), kind, signature)
        entry = self._plan_cache.get(key)
        if entry is not None and entry[0] is anchor:
            self.plan_cache_hits += 1
            return entry[1]
        self.plan_cache_misses += 1
        value = build()
        if len(self._plan_cache) >= _PLAN_CACHE_LIMIT:
            self._plan_cache.clear()
        self._plan_cache[key] = (anchor, value)
        return value

    def _subquery_handler(self, relation: Relation):
        """Compiler hook: maps a subquery node to a ``row -> QueryResult`` runner.

        The runner binds the evaluating row as the subquery's outer context, so
        correlated subqueries execute through compiled closures too (sharing
        the uncorrelated-result cache with the interpreter).  Only used for
        top-level expressions (``outer is None``): a deeper context chain needs
        the interpreter's parent links.
        """

        def handler(subquery: Select):
            def run(row: tuple) -> QueryResult:
                return self._execute_subquery_cached(
                    subquery, RowContext(relation=relation, row=row)
                )

            return run

        return handler

    def _row_evaluator(self, expression: Expression, relation: Relation, outer: RowContext | None):
        """Best closure for evaluating ``expression`` once per row.

        Compiled when possible (and cached per relation shape); otherwise an
        interpreter fallback that builds a :class:`RowContext` per row.
        Subqueries compile only at the top level (no enclosing context): the
        compiled runners bind the evaluating row as the sole outer context,
        which a nested evaluation cannot represent.
        """
        if self.mode != "interpreted":
            if outer is None:
                compiled = self._cached_plan(
                    expression,
                    "row",
                    tuple(relation.labels),
                    lambda: compile_row_expression(
                        expression,
                        relation,
                        self._subquery_handler(relation),
                        self.compile_counters,
                    ),
                )
            else:
                compiled = self._cached_plan(
                    expression,
                    "row-nested",
                    tuple(relation.labels),
                    lambda: compile_row_expression(
                        expression, relation, None, self.compile_counters
                    ),
                )
            if compiled is not None:
                return compiled

        def fallback(row: tuple) -> SQLValue:
            return self._evaluate(expression, RowContext(relation=relation, row=row, parent=outer))

        return fallback

    def _group_evaluator(self, expression: Expression, source: Relation, outer: RowContext | None):
        """Best closure for evaluating an aggregation-mode expression per group."""
        if self.mode != "interpreted":
            if outer is None:
                compiled = self._cached_plan(
                    expression,
                    "group",
                    tuple(source.labels),
                    lambda: compile_group_expression(
                        expression,
                        source,
                        self._subquery_handler(source),
                        self.compile_counters,
                    ),
                )
            else:
                compiled = self._cached_plan(
                    expression,
                    "group-nested",
                    tuple(source.labels),
                    lambda: compile_group_expression(
                        expression, source, None, self.compile_counters
                    ),
                )
            if compiled is not None:
                return compiled

        def fallback(group_rows: list, representative: tuple) -> SQLValue:
            context = RowContext(
                relation=source, row=representative, parent=outer, group_rows=group_rows
            )
            return self._evaluate_aggregate_aware(expression, context, source, outer)

        return fallback

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------

    def execute_select(self, select: Select, outer: RowContext | None = None) -> QueryResult:
        """Execute a SELECT and return a materialised result."""
        return self._execute_body(select, self._cte_scope(select, outer), outer)

    def _cte_scope(self, select: Select, outer: RowContext | None) -> dict[str, Relation]:
        """Materialise a SELECT's CTEs into a name -> relation scope."""
        cte_scope: dict[str, Relation] = {}
        for cte in select.ctes:
            result = self.execute_select(cte.query, outer)
            relation = result.as_relation()
            if cte.column_names:
                if len(cte.column_names) != len(relation.labels):
                    raise ExecutionError(
                        f"CTE {cte.name!r} declares {len(cte.column_names)} columns "
                        f"but its query produces {len(relation.labels)}"
                    )
                relation = Relation(
                    labels=[ColumnLabel(name=name) for name in cte.column_names],
                    rows=relation.rows,
                )
            cte_scope[cte.name.lower()] = relation
        return cte_scope

    def explain_select(self, select: Select) -> dict:
        """Describe how the planner would execute a SELECT's source.

        Works in every executor mode (the plan is only *used* in
        ``"planned"`` mode); set operations report the left input's plan.
        """
        info: dict = {"statement": "Select", "executor_mode": self.mode}
        target = select
        if select.set_operator is not None and select.set_right is not None:
            info["set_operation"] = select.set_operator.value
        info.update(self.planner.explain(target, self._cte_scope(select, None)))
        return info

    # ------------------------------------------------------------------
    # core execution
    # ------------------------------------------------------------------

    def analyze_select(self, select: Select) -> dict:
        """Execute a SELECT with per-operator instrumentation (EXPLAIN ANALYZE).

        Returns the executed operator list (wall time, rows in/out, nesting
        depth), total wall time, rows/columns returned, and the per-query
        deltas of the compiled-plan, expression-compile and source-planner
        counters.  The execution is observed, never perturbed: the collector
        only reads stage boundaries, so the produced rows are bit-identical
        to a plain ``execute_select`` in every executor mode.
        """
        if self._analyze is not None:
            raise ExecutionError("EXPLAIN ANALYZE cannot be nested")
        collector = _AnalyzeCollector()
        plan_hits = self.plan_cache_hits
        plan_misses = self.plan_cache_misses
        compiled_before = self.compile_counters.compiled
        fallbacks_before = self.compile_counters.fallbacks
        planner = self._planner
        plans_built_before = planner.plans_built if planner is not None else 0
        planner_hits_before = planner.cache_hits if planner is not None else 0
        self._analyze = collector
        started = time.perf_counter()
        try:
            result = self.execute_select(select)
        finally:
            self._analyze = None
        total = time.perf_counter() - started
        planner = self._planner
        plans_built = planner.plans_built if planner is not None else 0
        planner_hits = planner.cache_hits if planner is not None else 0
        return {
            "executor_mode": self.mode,
            "operators": collector.operators,
            "truncated": collector.truncated,
            "total_seconds": round(total, 9),
            "rows_returned": len(result.rows),
            "columns": list(result.columns),
            "plan_cache": {
                "hits": self.plan_cache_hits - plan_hits,
                "misses": self.plan_cache_misses - plan_misses,
            },
            "expressions": {
                "compiled": self.compile_counters.compiled - compiled_before,
                "interpreter_fallbacks": self.compile_counters.fallbacks
                - fallbacks_before,
            },
            "source_planner": {
                "plans_built": plans_built - plans_built_before,
                "cache_hits": planner_hits - planner_hits_before,
            },
        }

    def _execute_body(
        self, select: Select, cte_scope: dict[str, Relation], outer: RowContext | None
    ) -> QueryResult:
        collector = self._analyze
        if collector is None:
            if select.set_operator is not None and select.set_right is not None:
                return self._execute_set_operation(select, cte_scope, outer)
            return self._execute_stages(select, cte_scope, outer, None)
        # enter/exit must balance even when a context-free subquery attempt
        # aborts with ExecutionError mid-body (see _execute_subquery_cached).
        collector.enter()
        try:
            if select.set_operator is not None and select.set_right is not None:
                return self._execute_set_operation(select, cte_scope, outer)
            return self._execute_stages(select, cte_scope, outer, collector)
        finally:
            collector.exit()

    def _execute_stages(
        self,
        select: Select,
        cte_scope: dict[str, Relation],
        outer: RowContext | None,
        collector: _AnalyzeCollector | None,
    ) -> QueryResult:
        stage_start = time.perf_counter() if collector is not None else 0.0
        planned = (
            self._execute_planned(select, cte_scope, outer) if self.mode == "planned" else None
        )
        if planned is not None:
            source, filtered_rows = planned
            if collector is not None:
                collector.record(
                    "planned_source",
                    time.perf_counter() - stage_start,
                    len(source.rows),
                    len(filtered_rows),
                )
        else:
            if collector is not None:
                if self.mode == "planned":
                    collector.record(
                        "plan_fallback", time.perf_counter() - stage_start, 0, 0
                    )
                stage_start = time.perf_counter()
            source = self._execute_relation(select.from_relation, cte_scope, outer)
            if collector is not None:
                collector.record(
                    "scan",
                    time.perf_counter() - stage_start,
                    len(source.rows),
                    len(source.rows),
                    source=type(select.from_relation).__name__
                    if select.from_relation is not None
                    else "dual",
                )
                stage_start = time.perf_counter()

            # WHERE
            filtered_rows = []
            if select.where is not None:
                if self.mode != "interpreted":
                    predicate = self._row_evaluator(select.where, source, outer)
                    filtered_rows = [row for row in source.rows if _is_true(predicate(row))]
                else:
                    for row in source.rows:
                        context = RowContext(relation=source, row=row, parent=outer)
                        if _is_true(self._evaluate(select.where, context)):
                            filtered_rows.append(row)
                if collector is not None:
                    collector.record(
                        "filter",
                        time.perf_counter() - stage_start,
                        len(source.rows),
                        len(filtered_rows),
                    )
            else:
                filtered_rows = list(source.rows)

        needs_aggregation = bool(select.group_by) or self._has_aggregate_items(select)

        if collector is not None:
            stage_start = time.perf_counter()
        if needs_aggregation:
            result = self._execute_aggregation(select, source, filtered_rows, outer)
        else:
            result = self._execute_projection(select, source, filtered_rows, outer)
        if collector is not None:
            collector.record(
                "aggregate" if needs_aggregation else "project",
                time.perf_counter() - stage_start,
                len(filtered_rows),
                len(result.rows),
            )

        if select.distinct:
            if collector is not None:
                stage_start = time.perf_counter()
                rows_before = len(result.rows)
            result = QueryResult(columns=result.columns, rows=_distinct_rows(result.rows))
            if collector is not None:
                collector.record(
                    "distinct",
                    time.perf_counter() - stage_start,
                    rows_before,
                    len(result.rows),
                )

        if select.order_by:
            if collector is not None:
                stage_start = time.perf_counter()
            result = self._apply_order_by(select, source, filtered_rows, result, outer, needs_aggregation)
            if collector is not None:
                collector.record(
                    "sort",
                    time.perf_counter() - stage_start,
                    len(result.rows),
                    len(result.rows),
                    keys=len(select.order_by),
                )

        if select.limit is not None or select.offset is not None:
            if collector is not None:
                stage_start = time.perf_counter()
                rows_before = len(result.rows)
            offset = select.offset or 0
            end = offset + select.limit if select.limit is not None else None
            result = QueryResult(columns=result.columns, rows=result.rows[offset:end])
            if collector is not None:
                collector.record(
                    "limit",
                    time.perf_counter() - stage_start,
                    rows_before,
                    len(result.rows),
                )

        return result

    def _execute_planned(
        self, select: Select, cte_scope: dict[str, Relation], outer: RowContext | None
    ) -> tuple[Relation, list[tuple[SQLValue, ...]]] | None:
        """Produce (source, filtered rows) through the source planner.

        Returns None when the query is unplannable or the planned execution
        hits an engine error (e.g. a pushed-down predicate raising on a row
        the textual evaluation order would never have reached); the caller
        then runs the standard compiled path, which defines the semantics.
        """
        plan = self.planner.plan_for(select, cte_scope)
        if plan is None:
            return None
        try:
            leaf_rows = []
            for scan in plan.scans:
                if scan.kind == "cte":
                    relation = cte_scope.get(scan.source.lower())
                    if relation is None or len(relation.labels) != len(scan.labels):
                        return None
                    leaf_rows.append(relation.rows)
                else:
                    leaf_rows.append(self._database.table(scan.source).rows)
            rows = plan.execute(leaf_rows)
        except EngineError:
            return None
        source = Relation(labels=list(plan.labels), rows=rows)
        if plan.post_filter is not None:
            predicate = self._row_evaluator(plan.post_filter, source, outer)
            rows = [row for row in rows if _is_true(predicate(row))]
        return source, rows

    def _execute_set_operation(
        self, select: Select, cte_scope: dict[str, Relation], outer: RowContext | None
    ) -> QueryResult:
        left_core = Select(
            select_items=select.select_items,
            distinct=select.distinct,
            from_relation=select.from_relation,
            where=select.where,
            group_by=select.group_by,
            having=select.having,
        )
        left = self._execute_body(left_core, cte_scope, outer)
        right = self._execute_body(select.set_right, cte_scope, outer)
        if len(left.columns) != len(right.columns):
            raise ExecutionError(
                "set operation requires both sides to produce the same number of columns"
            )

        collector = self._analyze
        stage_start = time.perf_counter() if collector is not None else 0.0
        if select.set_operator is SetOperator.UNION_ALL:
            rows = left.rows + right.rows
        elif select.set_operator is SetOperator.UNION:
            rows = _distinct_rows(left.rows + right.rows)
        elif select.set_operator is SetOperator.INTERSECT:
            right_set = {_row_key(row) for row in right.rows}
            rows = _distinct_rows([row for row in left.rows if _row_key(row) in right_set])
        else:  # EXCEPT
            right_set = {_row_key(row) for row in right.rows}
            rows = _distinct_rows([row for row in left.rows if _row_key(row) not in right_set])

        result = QueryResult(columns=left.columns, rows=rows)
        if collector is not None:
            collector.record(
                "set_op",
                time.perf_counter() - stage_start,
                len(left.rows) + len(right.rows),
                len(rows),
                operator=select.set_operator.value,
            )

        if select.order_by:
            if collector is not None:
                stage_start = time.perf_counter()
            relation = result.as_relation()
            result = QueryResult(
                columns=result.columns,
                rows=self._sort_output_rows(select.order_by, relation, result.rows, outer),
            )
            if collector is not None:
                collector.record(
                    "sort",
                    time.perf_counter() - stage_start,
                    len(result.rows),
                    len(result.rows),
                    keys=len(select.order_by),
                )
        if select.limit is not None or select.offset is not None:
            if collector is not None:
                stage_start = time.perf_counter()
                rows_before = len(result.rows)
            offset = select.offset or 0
            end = offset + select.limit if select.limit is not None else None
            result = QueryResult(columns=result.columns, rows=result.rows[offset:end])
            if collector is not None:
                collector.record(
                    "limit",
                    time.perf_counter() - stage_start,
                    rows_before,
                    len(result.rows),
                )
        return result

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------

    def _execute_relation(
        self,
        relation: ASTRelation | None,
        cte_scope: dict[str, Relation],
        outer: RowContext | None,
    ) -> Relation:
        if relation is None:
            # SELECT without FROM: a single empty row so expressions evaluate once.
            return Relation(labels=[], rows=[tuple()])
        if isinstance(relation, TableRef):
            return self._resolve_table(relation, cte_scope)
        if isinstance(relation, SubqueryRef):
            result = self.execute_select(relation.query, outer)
            return result.as_relation().renamed(relation.alias)
        if isinstance(relation, Join):
            return self._execute_join(relation, cte_scope, outer)
        raise ExecutionError(f"unsupported relation node {type(relation).__name__}")

    def _resolve_table(self, table_ref: TableRef, cte_scope: dict[str, Relation]) -> Relation:
        key = table_ref.name.lower()
        if key in cte_scope:
            relation = cte_scope[key]
            return relation.renamed(table_ref.effective_name)
        stored = self._database.table(table_ref.name)
        return stored.to_relation(alias=table_ref.effective_name)

    def _execute_join(
        self, join: Join, cte_scope: dict[str, Relation], outer: RowContext | None
    ) -> Relation:
        left = self._execute_relation(join.left, cte_scope, outer)
        right = self._execute_relation(join.right, cte_scope, outer)
        labels = left.labels + right.labels
        combined = Relation(labels=labels)

        condition = join.condition
        if join.using_columns and condition is None:
            if self.mode != "interpreted":
                condition = self._cached_plan(
                    join,
                    "using",
                    (tuple(left.labels), tuple(right.labels)),
                    lambda: self._build_using_condition(join.using_columns, left, right),
                )
            else:
                condition = self._build_using_condition(join.using_columns, left, right)

        if self.mode != "interpreted":
            rows, matched_right = self._join_rows_compiled(
                join, left, right, combined, condition, outer
            )
        else:
            rows, matched_right = self._join_rows_interpreted(
                join, left, right, combined, condition, outer
            )

        if join.join_type in (JoinType.RIGHT, JoinType.FULL):
            left_pad = tuple([None] * len(left.labels))
            for right_position, right_row in enumerate(right.rows):
                if right_position not in matched_right:
                    rows.append(left_pad + right_row)

        combined.rows = rows
        return combined

    # -- compiled join path --------------------------------------------

    def _join_rows_compiled(
        self,
        join: Join,
        left: Relation,
        right: Relation,
        combined: Relation,
        condition: Expression | None,
        outer: RowContext | None,
    ) -> tuple[list[tuple[SQLValue, ...]], set[int]]:
        rows: list[tuple[SQLValue, ...]] = []
        matched_right: set[int] = set()
        pad_left = join.join_type in (JoinType.LEFT, JoinType.FULL)
        right_pad = tuple([None] * len(right.labels))

        key_pairs: list[tuple[int, int]] = []
        residual: Expression | None = None
        if condition is not None:
            key_pairs, residual = self._cached_plan(
                condition,
                "join",
                tuple(combined.labels),
                lambda: self._hash_join_plan(condition, left, combined),
            )

        if key_pairs:
            residual_fn = (
                self._row_evaluator(residual, combined, outer) if residual is not None else None
            )
            left_indices = [pair[0] for pair in key_pairs]
            right_indices = [pair[1] for pair in key_pairs]
            buckets: dict[object, list[int]] = {}
            if len(key_pairs) == 1:
                left_index = left_indices[0]
                right_index = right_indices[0]
                for position, right_row in enumerate(right.rows):
                    key = _hashable(right_row[right_index])
                    if key is None:
                        continue
                    buckets.setdefault(key, []).append(position)
                empty: list[int] = []
                for left_row in left.rows:
                    key = _hashable(left_row[left_index])
                    positions = buckets.get(key, empty) if key is not None else empty
                    matched = False
                    for position in positions:
                        combined_row = left_row + right.rows[position]
                        if residual_fn is not None and not _is_true(residual_fn(combined_row)):
                            continue
                        rows.append(combined_row)
                        matched = True
                        matched_right.add(position)
                    if not matched and pad_left:
                        rows.append(left_row + right_pad)
            else:
                for position, right_row in enumerate(right.rows):
                    key_values = tuple(_hashable(right_row[index]) for index in right_indices)
                    if any(value is None for value in key_values):
                        continue
                    buckets.setdefault(key_values, []).append(position)
                empty = []
                for left_row in left.rows:
                    key_values = tuple(_hashable(left_row[index]) for index in left_indices)
                    if any(value is None for value in key_values):
                        positions = empty
                    else:
                        positions = buckets.get(key_values, empty)
                    matched = False
                    for position in positions:
                        combined_row = left_row + right.rows[position]
                        if residual_fn is not None and not _is_true(residual_fn(combined_row)):
                            continue
                        rows.append(combined_row)
                        matched = True
                        matched_right.add(position)
                    if not matched and pad_left:
                        rows.append(left_row + right_pad)
            return rows, matched_right

        # No usable equality keys: nested loop with a compiled condition.
        if condition is None:
            for left_row in left.rows:
                for right_position, right_row in enumerate(right.rows):
                    rows.append(left_row + right_row)
                    matched_right.add(right_position)
                if not right.rows and pad_left:
                    rows.append(left_row + right_pad)
            return rows, matched_right

        condition_fn = self._row_evaluator(condition, combined, outer)
        for left_row in left.rows:
            matched = False
            for right_position, right_row in enumerate(right.rows):
                combined_row = left_row + right_row
                if _is_true(condition_fn(combined_row)):
                    rows.append(combined_row)
                    matched = True
                    matched_right.add(right_position)
            if not matched and pad_left:
                rows.append(left_row + right_pad)
        return rows, matched_right

    def _hash_join_plan(
        self, condition: Expression, left: Relation, combined: Relation
    ) -> tuple[list[tuple[int, int]], Expression | None]:
        """Split an AND-tree join condition into hash keys plus a residual.

        Each conjunct that is a plain column equality spanning the two join
        inputs becomes a (left index, right index) hash-key pair; columns are
        resolved against the *combined* relation — exactly as the nested-loop
        evaluator would resolve them — so the hash join is equivalent to the
        nested loop by construction.  Conjuncts that do not qualify are folded
        back into a residual expression evaluated on each key-matched row.

        Join-key equality is *bucket* equality everywhere: values are
        normalised through :func:`repro.engine.runtime.hashable_key` and then
        compared with Python ``==`` (``1`` joins ``1.0`` but not ``'1'``;
        NULL never joins).  Both executor modes and both join strategies
        share this one definition, so multi-key hash joins never need to fall
        back to a compare_values nested loop.
        """
        conjuncts = _split_conjuncts(condition)
        left_width = len(left.labels)
        if len(conjuncts) == 1:
            # A single plain equality is what the interpreter's hash path
            # handles; reuse its left/right-preferring resolution so an
            # ambiguous unqualified column (present on both sides) binds the
            # same way in both modes.
            right = Relation(labels=combined.labels[left_width:])
            single = self._equi_join_columns(condition, left, right)
            if single is not None:
                return [single], None
            return [], condition
        pairs: list[tuple[int, int]] = []
        residual: list[Expression] = []
        for conjunct in conjuncts:
            if (
                isinstance(conjunct, BinaryOp)
                and conjunct.op is BinaryOperator.EQ
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
            ):
                try:
                    first = combined.column_index(conjunct.left.name, conjunct.left.table)
                    second = combined.column_index(conjunct.right.name, conjunct.right.table)
                except ExecutionError:
                    residual.append(conjunct)
                    continue
                if first < left_width <= second:
                    pairs.append((first, second - left_width))
                    continue
                if second < left_width <= first:
                    pairs.append((second, first - left_width))
                    continue
            residual.append(conjunct)
        return pairs, _conjoin(residual)

    # -- interpreted join path (the original engine, kept verbatim) ----

    def _join_rows_interpreted(
        self,
        join: Join,
        left: Relation,
        right: Relation,
        combined: Relation,
        condition: Expression | None,
        outer: RowContext | None,
    ) -> tuple[list[tuple[SQLValue, ...]], set[int]]:
        rows: list[tuple[SQLValue, ...]] = []
        matched_right: set[int] = set()

        equi_columns = self._equi_join_columns(condition, left, right)
        multi_key: tuple[list[tuple[int, int]], Expression | None] | None = None
        if equi_columns is None and condition is not None:
            # Multi-key equality conditions share the hash plan's key
            # extraction (and its bucket-equality semantics) but stay on a
            # nested loop: the interpreter is the slow semantic reference.
            pairs, residual = self._hash_join_plan(condition, left, combined)
            if pairs:
                multi_key = (pairs, residual)
        if equi_columns is not None:
            left_index, right_index_position = equi_columns
            buckets: dict[object, list[int]] = {}
            for position, right_row in enumerate(right.rows):
                key = _hashable(right_row[right_index_position])
                if key is None:
                    continue
                buckets.setdefault(key, []).append(position)
            for left_row in left.rows:
                key = _hashable(left_row[left_index])
                positions = buckets.get(key, []) if key is not None else []
                if positions:
                    for position in positions:
                        rows.append(left_row + right.rows[position])
                        matched_right.add(position)
                elif join.join_type in (JoinType.LEFT, JoinType.FULL):
                    rows.append(left_row + tuple([None] * len(right.labels)))
        elif multi_key is not None:
            pairs, residual = multi_key
            left_indices = [pair[0] for pair in pairs]
            right_indices = [pair[1] for pair in pairs]
            right_pad = tuple([None] * len(right.labels))
            for left_row in left.rows:
                left_key = tuple(_hashable(left_row[index]) for index in left_indices)
                matched = False
                if not any(value is None for value in left_key):
                    for right_position, right_row in enumerate(right.rows):
                        right_key = tuple(
                            _hashable(right_row[index]) for index in right_indices
                        )
                        if right_key != left_key:
                            continue
                        if residual is not None:
                            context = RowContext(
                                relation=combined, row=left_row + right_row, parent=outer
                            )
                            if not _is_true(self._evaluate(residual, context)):
                                continue
                        rows.append(left_row + right_row)
                        matched = True
                        matched_right.add(right_position)
                if not matched and join.join_type in (JoinType.LEFT, JoinType.FULL):
                    rows.append(left_row + right_pad)
        else:
            def matches(left_row: tuple, right_row: tuple) -> bool:
                if condition is None:
                    return True
                context = RowContext(relation=combined, row=left_row + right_row, parent=outer)
                return _is_true(self._evaluate(condition, context))

            for left_row in left.rows:
                matched = False
                for right_position, right_row in enumerate(right.rows):
                    if matches(left_row, right_row):
                        rows.append(left_row + right_row)
                        matched = True
                        matched_right.add(right_position)
                if not matched and join.join_type in (JoinType.LEFT, JoinType.FULL):
                    rows.append(left_row + tuple([None] * len(right.labels)))
        return rows, matched_right

    def _equi_join_columns(
        self, condition: Expression | None, left: Relation, right: Relation
    ) -> tuple[int, int] | None:
        """Resolve a simple equality join condition to (left index, right index).

        Returns None when the condition is not a plain column equality spanning
        the two inputs, in which case the executor falls back to a nested loop.
        """
        if not isinstance(condition, BinaryOp) or condition.op is not BinaryOperator.EQ:
            return None
        if not isinstance(condition.left, ColumnRef) or not isinstance(condition.right, ColumnRef):
            return None
        for first, second in ((condition.left, condition.right), (condition.right, condition.left)):
            try:
                left_position = left.column_index(first.name, first.table)
                right_position = right.column_index(second.name, second.table)
                return left_position, right_position
            except ExecutionError:
                continue
        return None

    @staticmethod
    def _build_using_condition(columns: list[str], left: Relation, right: Relation) -> Expression:
        condition: Expression | None = None
        for name in columns:
            left_label = next((label for label in left.labels if label.matches(name)), None)
            right_label = next((label for label in right.labels if label.matches(name)), None)
            if left_label is None or right_label is None:
                side = "left" if left_label is None else "right"
                raise ExecutionError(
                    f"USING column {name!r} is missing from the {side} side of the join"
                )
            comparison = BinaryOp(
                op=BinaryOperator.EQ,
                left=ColumnRef(name=left_label.name, table=left_label.relation or None),
                right=ColumnRef(name=right_label.name, table=right_label.relation or None),
            )
            condition = comparison if condition is None else BinaryOp(
                op=BinaryOperator.AND, left=condition, right=comparison
            )
        assert condition is not None
        return condition

    # ------------------------------------------------------------------
    # projection / aggregation
    # ------------------------------------------------------------------

    def _expand_select_items(self, select: Select, source: Relation) -> list[SelectItem]:
        expanded: list[SelectItem] = []
        for item in select.select_items:
            if isinstance(item.expression, Star):
                table_filter = item.expression.table
                for label in source.labels:
                    if table_filter and label.relation.lower() != table_filter.lower():
                        continue
                    expanded.append(
                        SelectItem(
                            expression=ColumnRef(name=label.name, table=label.relation or None),
                            alias=label.name,
                        )
                    )
            else:
                expanded.append(item)
        return expanded

    def _execute_projection(
        self,
        select: Select,
        source: Relation,
        rows: list[tuple[SQLValue, ...]],
        outer: RowContext | None,
    ) -> QueryResult:
        items = self._expand_select_items(select, source)
        columns = [_output_name(item, index) for index, item in enumerate(items)]
        if self.mode != "interpreted":
            evaluators = [self._row_evaluator(item.expression, source, outer) for item in items]
            output_rows = [tuple(evaluator(row) for evaluator in evaluators) for row in rows]
            return QueryResult(columns=columns, rows=output_rows)
        output_rows = []
        for row in rows:
            context = RowContext(relation=source, row=row, parent=outer)
            output_rows.append(tuple(self._evaluate(item.expression, context) for item in items))
        return QueryResult(columns=columns, rows=output_rows)

    def _group_by_expressions(self, select: Select, source: Relation) -> list[Expression]:
        """GROUP BY keys with SELECT-item aliases resolved.

        A bare GROUP BY name that does not resolve in the source relation but
        matches a select-item alias groups by that item's expression — source
        columns win over aliases, and aggregate-valued aliases are never
        substituted (grouping by an aggregate is malformed and must keep
        raising).  Identical in every executor mode.
        """
        resolved: list[Expression] = []
        for expression in select.group_by:
            substitute: Expression | None = None
            if isinstance(expression, ColumnRef) and expression.table is None:
                try:
                    source.column_index(expression.name, None)
                except ExecutionError:
                    name = expression.name.lower()
                    for item in select.select_items:
                        if (
                            item.alias
                            and item.alias.lower() == name
                            and not _contains_aggregate(item.expression)
                        ):
                            substitute = item.expression
                            break
            resolved.append(substitute if substitute is not None else expression)
        return resolved

    def _has_aggregate_items(self, select: Select) -> bool:
        expressions: list[Expression | None] = [item.expression for item in select.select_items]
        expressions.append(select.having)
        for expression in expressions:
            if expression is not None and _contains_aggregate(expression):
                return True
        return False

    def _execute_aggregation(
        self,
        select: Select,
        source: Relation,
        rows: list[tuple[SQLValue, ...]],
        outer: RowContext | None,
    ) -> QueryResult:
        items = self._expand_select_items(select, source)
        columns = [_output_name(item, index) for index, item in enumerate(items)]

        groups: dict[tuple, list[tuple[SQLValue, ...]]] = {}
        if select.group_by:
            group_expressions = self._group_by_expressions(select, source)
            if self.mode != "interpreted":
                key_evaluators = [
                    self._row_evaluator(expression, source, outer)
                    for expression in group_expressions
                ]
                for row in rows:
                    key = tuple(_hashable(evaluator(row)) for evaluator in key_evaluators)
                    groups.setdefault(key, []).append(row)
            else:
                for row in rows:
                    context = RowContext(relation=source, row=row, parent=outer)
                    key = tuple(
                        _hashable(self._evaluate(expression, context))
                        for expression in group_expressions
                    )
                    groups.setdefault(key, []).append(row)
        else:
            groups[()] = rows

        output_rows: list[tuple[SQLValue, ...]] = []
        if self.mode != "interpreted":
            having_evaluator = (
                self._group_evaluator(select.having, source, outer)
                if select.having is not None
                else None
            )
            item_evaluators = [
                self._group_evaluator(item.expression, source, outer) for item in items
            ]
            for _, group_rows in groups.items():
                representative = (
                    group_rows[0] if group_rows else tuple([None] * len(source.labels))
                )
                if having_evaluator is not None:
                    if not _is_true(having_evaluator(group_rows, representative)):
                        continue
                output_rows.append(
                    tuple(evaluator(group_rows, representative) for evaluator in item_evaluators)
                )
            return QueryResult(columns=columns, rows=output_rows)

        for _, group_rows in groups.items():
            representative = group_rows[0] if group_rows else tuple([None] * len(source.labels))
            context = RowContext(
                relation=source, row=representative, parent=outer, group_rows=group_rows
            )
            if select.having is not None:
                if not _is_true(self._evaluate_aggregate_aware(select.having, context, source, outer)):
                    continue
            output_rows.append(
                tuple(
                    self._evaluate_aggregate_aware(item.expression, context, source, outer)
                    for item in items
                )
            )
        return QueryResult(columns=columns, rows=output_rows)

    # ------------------------------------------------------------------
    # ORDER BY
    # ------------------------------------------------------------------

    def _apply_order_by(
        self,
        select: Select,
        source: Relation,
        source_rows: list[tuple[SQLValue, ...]],
        result: QueryResult,
        outer: RowContext | None,
        aggregated: bool,
    ) -> QueryResult:
        output_relation = result.as_relation()
        expression_positions = self._projected_expression_positions(select, source)

        if not aggregated and not select.distinct and len(source_rows) == len(result.rows):
            # Sort keys may reference columns that were not projected; evaluate
            # them against the source rows, which stay aligned with the output.
            return QueryResult(
                columns=result.columns,
                rows=self._sort_with_source(
                    select.order_by, output_relation, result.rows, source, source_rows,
                    outer, expression_positions,
                ),
            )
        return QueryResult(
            columns=result.columns,
            rows=self._sort_output_rows(
                select.order_by, output_relation, result.rows, outer, expression_positions
            ),
        )

    def _projected_expression_positions(
        self, select: Select, source: Relation
    ) -> dict[str, int]:
        """Map printed select-item expressions to their output positions."""
        from repro.sql.printer import print_expression

        positions: dict[str, int] = {}
        items = self._expand_select_items(select, source)
        for index, item in enumerate(items):
            try:
                positions.setdefault(print_expression(item.expression), index)
            except Exception:
                continue
        return positions

    def _order_key_plan(
        self,
        item: OrderItem,
        output_relation: Relation,
        expression_positions: dict[str, int],
    ) -> int | None:
        """Resolve an ORDER BY key to an output-column index when possible.

        Mirrors the first three resolution steps of ``_order_key``; returns
        ``None`` when the key needs expression evaluation instead.
        """
        expression = item.expression
        if isinstance(expression, Literal) and isinstance(expression.value, int):
            index = expression.value - 1
            if 0 <= index < len(output_relation.labels):
                return index
            raise ExecutionError(f"ORDER BY position {expression.value} is out of range")
        if isinstance(expression, ColumnRef):
            try:
                return output_relation.column_index(expression.name, expression.table)
            except ExecutionError:
                pass
        if expression_positions:
            from repro.sql.printer import print_expression

            try:
                printed = print_expression(expression)
            except Exception:
                printed = None
            if printed is not None and printed in expression_positions:
                return expression_positions[printed]
        return None

    def _sorted_positions(
        self, order_by: list[OrderItem], key_columns: list[list[SQLValue]], count: int
    ) -> list[int]:
        """Stable-sort row positions over precomputed per-item key columns."""

        def compare(position_a: int, position_b: int) -> int:
            for item, column in zip(order_by, key_columns):
                comparison = _null_aware_compare(column[position_a], column[position_b], item)
                if comparison != 0:
                    return comparison if item.ascending else -comparison
            return 0

        return sorted(range(count), key=functools.cmp_to_key(compare))

    def _compiled_sort(
        self,
        order_by: list[OrderItem],
        output_relation: Relation,
        expression_positions: dict[str, int],
        rows: list[tuple[SQLValue, ...]],
        eval_relation: Relation,
        eval_rows: list[tuple[SQLValue, ...]],
        outer: RowContext | None,
    ) -> list[tuple[SQLValue, ...]]:
        """Compiled ORDER BY: precompute one key column per item, then sort.

        Keys resolving to an output column read it directly; every other key
        is evaluated once per row against ``(eval_relation, eval_rows)`` —
        the source rows when they stay aligned with the output, the output
        rows otherwise — with the interpreter's ExecutionError->NULL fallback.
        """
        if len(rows) < 2:
            return list(rows)
        key_columns: list[list[SQLValue]] = []
        for item in order_by:
            output_index = self._order_key_plan(item, output_relation, expression_positions)
            if output_index is not None:
                key_columns.append([row[output_index] for row in rows])
                continue
            evaluator = self._row_evaluator(item.expression, eval_relation, outer)
            values: list[SQLValue] = []
            for eval_row in eval_rows:
                try:
                    values.append(evaluator(eval_row))
                except ExecutionError:
                    values.append(None)
            key_columns.append(values)
        order = self._sorted_positions(order_by, key_columns, len(rows))
        return [rows[position] for position in order]

    def _sort_with_source(
        self,
        order_by: list[OrderItem],
        output_relation: Relation,
        rows: list[tuple[SQLValue, ...]],
        source: Relation,
        source_rows: list[tuple[SQLValue, ...]],
        outer: RowContext | None,
        expression_positions: dict[str, int],
    ) -> list[tuple[SQLValue, ...]]:
        if self.mode != "interpreted":
            return self._compiled_sort(
                order_by, output_relation, expression_positions, rows, source, source_rows, outer
            )

        paired = list(zip(rows, source_rows))

        def key_for(item: OrderItem, output_row: tuple, source_row: tuple) -> SQLValue:
            value = self._order_key(
                item, output_relation, output_row, outer, expression_positions, strict=False
            )
            if value is not _ORDER_KEY_MISS:
                return value
            context = RowContext(relation=source, row=source_row, parent=outer)
            try:
                return self._evaluate(item.expression, context)
            except ExecutionError:
                return None

        def compare(left: tuple, right: tuple) -> int:
            for item in order_by:
                value_a = key_for(item, left[0], left[1])
                value_b = key_for(item, right[0], right[1])
                comparison = _null_aware_compare(value_a, value_b, item)
                if comparison != 0:
                    return comparison if item.ascending else -comparison
            return 0

        return [pair[0] for pair in sorted(paired, key=functools.cmp_to_key(compare))]

    def _sort_output_rows(
        self,
        order_by: list[OrderItem],
        output_relation: Relation,
        rows: list[tuple[SQLValue, ...]],
        outer: RowContext | None,
        expression_positions: dict[str, int] | None = None,
    ) -> list[tuple[SQLValue, ...]]:
        positions = expression_positions or {}

        if self.mode != "interpreted":
            return self._compiled_sort(
                order_by, output_relation, positions, rows, output_relation, rows, outer
            )

        def compare(row_a: tuple, row_b: tuple) -> int:
            for item in order_by:
                value_a = self._order_key(item, output_relation, row_a, outer, positions)
                value_b = self._order_key(item, output_relation, row_b, outer, positions)
                comparison = _null_aware_compare(value_a, value_b, item)
                if comparison != 0:
                    return comparison if item.ascending else -comparison
            return 0

        return sorted(rows, key=functools.cmp_to_key(compare))

    def _order_key(
        self,
        item: OrderItem,
        output_relation: Relation,
        row: tuple[SQLValue, ...],
        outer: RowContext | None,
        expression_positions: dict[str, int] | None = None,
        strict: bool = True,
    ) -> SQLValue:
        expression = item.expression
        # ORDER BY <position>
        if isinstance(expression, Literal) and isinstance(expression.value, int):
            index = expression.value - 1
            if 0 <= index < len(row):
                return row[index]
            raise ExecutionError(f"ORDER BY position {expression.value} is out of range")
        # ORDER BY <output column or alias>
        if isinstance(expression, ColumnRef):
            try:
                index = output_relation.column_index(expression.name, expression.table)
                return row[index]
            except ExecutionError:
                pass
        # ORDER BY <expression identical to a projected expression> (e.g. COUNT(*)).
        if expression_positions:
            from repro.sql.printer import print_expression

            try:
                printed = print_expression(expression)
            except Exception:
                printed = None
            if printed is not None and printed in expression_positions:
                return row[expression_positions[printed]]
        if not strict:
            return _ORDER_KEY_MISS
        context = RowContext(relation=output_relation, row=row, parent=outer)
        try:
            return self._evaluate(expression, context)
        except ExecutionError:
            return None

    # ------------------------------------------------------------------
    # expression evaluation (the interpreter)
    # ------------------------------------------------------------------

    def _evaluate_aggregate_aware(
        self,
        expression: Expression,
        context: RowContext,
        source: Relation,
        outer: RowContext | None,
    ) -> SQLValue:
        """Evaluate an expression in grouped mode (aggregates over the group)."""
        if isinstance(expression, FunctionCall) and expression.upper_name in _AGGREGATE_NAMES:
            group_rows = context.group_rows or []
            count_star = bool(expression.args) and isinstance(expression.args[0], Star)
            if count_star or not expression.args:
                values: list[SQLValue] = [1] * len(group_rows)
            else:
                values = []
                for row in group_rows:
                    row_context = RowContext(relation=source, row=row, parent=outer)
                    values.append(self._evaluate(expression.args[0], row_context))
            return call_aggregate(expression.upper_name, values, expression.distinct, count_star)
        if isinstance(expression, BinaryOp):
            left = self._evaluate_aggregate_aware(expression.left, context, source, outer)
            right = self._evaluate_aggregate_aware(expression.right, context, source, outer)
            return _apply_binary(expression.op, left, right)
        if isinstance(expression, UnaryOp):
            operand = self._evaluate_aggregate_aware(expression.operand, context, source, outer)
            return _apply_unary(expression.op, operand)
        if isinstance(expression, FunctionCall) and is_scalar_function(expression.name):
            args = [
                self._evaluate_aggregate_aware(arg, context, source, outer)
                for arg in expression.args
            ]
            return call_scalar(expression.name, args)
        if isinstance(expression, CaseWhen):
            for condition, result in expression.conditions:
                if _is_true(self._evaluate_aggregate_aware(condition, context, source, outer)):
                    return self._evaluate_aggregate_aware(result, context, source, outer)
            if expression.else_result is not None:
                return self._evaluate_aggregate_aware(expression.else_result, context, source, outer)
            return None
        if isinstance(expression, Cast):
            operand = self._evaluate_aggregate_aware(expression.operand, context, source, outer)
            return _apply_cast(operand, expression.target_type)
        return self._evaluate(expression, context)

    def _evaluate(self, expression: Expression, context: RowContext) -> SQLValue:
        if isinstance(expression, Literal):
            return expression.value
        if isinstance(expression, ColumnRef):
            return context.lookup(expression.name, expression.table)
        if isinstance(expression, Star):
            raise ExecutionError("'*' is only valid inside COUNT(*) or the select list")
        if isinstance(expression, Parameter):
            raise ExecutionError("bind parameters are not supported during direct execution")
        if isinstance(expression, BinaryOp):
            if expression.op is BinaryOperator.AND:
                left = self._evaluate(expression.left, context)
                if left is False:
                    return False
                right = self._evaluate(expression.right, context)
                if right is False:
                    return False
                if left is None or right is None:
                    return None
                return _is_true(left) and _is_true(right)
            if expression.op is BinaryOperator.OR:
                left = self._evaluate(expression.left, context)
                if _is_true(left):
                    return True
                right = self._evaluate(expression.right, context)
                if _is_true(right):
                    return True
                if left is None or right is None:
                    return None
                return False
            left = self._evaluate(expression.left, context)
            right = self._evaluate(expression.right, context)
            return _apply_binary(expression.op, left, right)
        if isinstance(expression, UnaryOp):
            operand = self._evaluate(expression.operand, context)
            return _apply_unary(expression.op, operand)
        if isinstance(expression, FunctionCall):
            if expression.upper_name in _AGGREGATE_NAMES:
                # Aggregate outside grouped evaluation: aggregate over the group
                # rows when available, otherwise this is a malformed query.
                if context.group_rows is not None and context.relation is not None:
                    values = []
                    count_star = bool(expression.args) and isinstance(expression.args[0], Star)
                    for row in context.group_rows:
                        if count_star or not expression.args:
                            values.append(1)
                        else:
                            row_context = RowContext(
                                relation=context.relation, row=row, parent=context.parent
                            )
                            values.append(self._evaluate(expression.args[0], row_context))
                    return call_aggregate(
                        expression.upper_name, values, expression.distinct, count_star
                    )
                raise ExecutionError(
                    f"aggregate {expression.upper_name} used outside aggregation context"
                )
            args = [self._evaluate(arg, context) for arg in expression.args]
            return call_scalar(expression.name, args)
        if isinstance(expression, Cast):
            return _apply_cast(self._evaluate(expression.operand, context), expression.target_type)
        if isinstance(expression, CaseWhen):
            for condition, result in expression.conditions:
                if _is_true(self._evaluate(condition, context)):
                    return self._evaluate(result, context)
            if expression.else_result is not None:
                return self._evaluate(expression.else_result, context)
            return None
        if isinstance(expression, IsNull):
            value = self._evaluate(expression.operand, context)
            result = value is None
            return not result if expression.negated else result
        if isinstance(expression, InList):
            value = self._evaluate(expression.operand, context)
            if value is None:
                return None
            members = [self._evaluate(item, context) for item in expression.values]
            contained = any(
                member is not None and compare_values(value, member) == 0 for member in members
            )
            return not contained if expression.negated else contained
        if isinstance(expression, InSubquery):
            value = self._evaluate(expression.operand, context)
            if value is None:
                return None
            result = self._execute_subquery_cached(expression.subquery, context)
            members = [row[0] for row in result.rows if row]
            contained = any(
                member is not None and compare_values(value, member) == 0 for member in members
            )
            return not contained if expression.negated else contained
        if isinstance(expression, Exists):
            result = self._execute_subquery_cached(expression.subquery, context)
            exists = len(result.rows) > 0
            return not exists if expression.negated else exists
        if isinstance(expression, Between):
            value = self._evaluate(expression.operand, context)
            low = self._evaluate(expression.low, context)
            high = self._evaluate(expression.high, context)
            if value is None or low is None or high is None:
                return None
            in_range = compare_values(value, low) >= 0 and compare_values(value, high) <= 0
            return not in_range if expression.negated else in_range
        if isinstance(expression, Like):
            value = self._evaluate(expression.operand, context)
            pattern = self._evaluate(expression.pattern, context)
            if value is None or pattern is None:
                return None
            matched = _like_match(str(value), str(pattern))
            return not matched if expression.negated else matched
        if isinstance(expression, ScalarSubquery):
            result = self._execute_subquery_cached(expression.query, context)
            if not result.rows:
                return None
            if len(result.rows[0]) != 1:
                raise ExecutionError("scalar subquery must return exactly one column")
            return result.rows[0][0]
        raise ExecutionError(f"unsupported expression node {type(expression).__name__}")


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _output_name(item: SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    expression = item.expression
    if isinstance(expression, ColumnRef):
        return expression.name
    if isinstance(expression, FunctionCall):
        return expression.upper_name.lower()
    return f"col_{index}"


def _split_conjuncts(expression: Expression) -> list[Expression]:
    """Flatten an AND tree into its conjuncts (left-to-right order)."""
    if isinstance(expression, BinaryOp) and expression.op is BinaryOperator.AND:
        return _split_conjuncts(expression.left) + _split_conjuncts(expression.right)
    return [expression]


def _conjoin(conjuncts: list[Expression]) -> Expression | None:
    """Left-fold conjuncts back into an AND tree (None for an empty list)."""
    condition: Expression | None = None
    for conjunct in conjuncts:
        condition = conjunct if condition is None else BinaryOp(
            op=BinaryOperator.AND, left=condition, right=conjunct
        )
    return condition
