"""In-memory relational execution engine."""

from repro.engine.compiler import compile_group_expression, compile_row_expression
from repro.engine.database import Database
from repro.engine.executor import EXECUTOR_MODES, Executor, QueryResult, RowContext
from repro.engine.functions import call_aggregate, call_scalar, is_scalar_function
from repro.engine.planner import DEFAULT_PLAN_STALENESS, QueryPlanner, SourcePlan
from repro.engine.stats import ColumnStats, StatsCatalog, TableStats, profile_table
from repro.engine.storage import ColumnLabel, Relation, StoredColumn, StoredTable
from repro.engine.types import (
    DataType,
    SQLValue,
    coerce_value,
    compare_values,
    is_numeric,
    values_equal,
)

__all__ = [
    "ColumnStats",
    "DEFAULT_PLAN_STALENESS",
    "Database",
    "DataType",
    "EXECUTOR_MODES",
    "Executor",
    "QueryPlanner",
    "QueryResult",
    "Relation",
    "RowContext",
    "SQLValue",
    "SourcePlan",
    "StatsCatalog",
    "StoredColumn",
    "StoredTable",
    "TableStats",
    "ColumnLabel",
    "call_aggregate",
    "call_scalar",
    "coerce_value",
    "compare_values",
    "compile_group_expression",
    "compile_row_expression",
    "is_numeric",
    "is_scalar_function",
    "profile_table",
    "values_equal",
]
