"""In-memory relational execution engine."""

from repro.engine.compiler import compile_group_expression, compile_row_expression
from repro.engine.database import Database
from repro.engine.executor import EXECUTOR_MODES, Executor, QueryResult, RowContext
from repro.engine.functions import call_aggregate, call_scalar, is_scalar_function
from repro.engine.storage import ColumnLabel, Relation, StoredColumn, StoredTable
from repro.engine.types import (
    DataType,
    SQLValue,
    coerce_value,
    compare_values,
    is_numeric,
    values_equal,
)

__all__ = [
    "Database",
    "DataType",
    "EXECUTOR_MODES",
    "Executor",
    "QueryResult",
    "Relation",
    "RowContext",
    "SQLValue",
    "StoredColumn",
    "StoredTable",
    "ColumnLabel",
    "call_aggregate",
    "call_scalar",
    "coerce_value",
    "compare_values",
    "compile_group_expression",
    "compile_row_expression",
    "is_numeric",
    "is_scalar_function",
    "values_equal",
]
