"""Queue-style annotation service over the batched pipeline.

The :class:`AnnotationService` is the throughput-oriented facade of the
reproduction: callers *submit* SQL statements (for one or several projects)
and later *drain* the queue, which schedules everything through each
project's :class:`~repro.core.pipeline.AnnotationPipeline` wave scheduler —
vectorized retrieval, one batched LLM call per wave, and per-query commits so
the growing-archive effect is preserved.  It models the server side of
BenchPress under heavy multi-user load, where annotation requests arrive
faster than they are processed.

Durability.  The service can run on top of an append-only
:class:`~repro.core.journal.EventJournal`: every state change (project
registered, job submitted, annotation committed, job failed) is journaled at
its commit point, and :meth:`AnnotationService.recover` rebuilds the exact
in-memory state by replaying the journal — optionally warm-starting from the
newest :class:`~repro.core.snapshot.SnapshotManager` checkpoint and replaying
only the journal suffix.  Jobs follow at-least-once semantics: a job stays
pending until its ``annotation_committed`` (or ``job_failed``) event is on
disk, so a crash mid-drain re-queues exactly the jobs whose commits were
lost.

Fault isolation.  One failing job does not poison a drain: when a batched
wave raises, the already-committed prefix is kept, the remaining jobs are
retried individually (the sequential path is bit-identical to the wave path),
and a job that still fails is quarantined as a failed
:class:`CompletedJob` with its error message — counted in
:attr:`ServiceStats.failed`, never silently dropped.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable

from repro.core.config import TaskConfig
from repro.core.journal import (
    ANNOTATION_COMMITTED,
    DRAIN_STATS,
    FEEDBACK_APPLIED,
    JOB_FAILED,
    JOB_SUBMITTED,
    PROJECT_REGISTERED,
    EventJournal,
    JournalEvent,
)
from repro.core.pipeline import AnnotationPipeline, AnnotationRecord
from repro.core.snapshot import (
    SnapshotManager,
    capture_pipeline_state,
    restore_pipeline_state,
    schema_from_state,
    schema_to_state,
)
from repro.core.feedback import Feedback
from repro.errors import JournalError, PipelineError
from repro.llm.base import LLMClient, UsageStats
from repro.schema.model import DatabaseSchema

#: Optional factory recreating custom LLM clients during recovery, keyed by
#: project name; return ``None`` to use the default simulated client.
LLMFactory = Callable[[str], "LLMClient | None"]


@dataclass
class AnnotationJob:
    """One queued annotation request."""

    job_id: int
    project: str
    sql: str
    query_id: str | None = None


@dataclass
class CompletedJob:
    """A drained job together with the record it produced.

    ``record`` is ``None`` — and ``error`` holds the reason — when the job
    failed and was quarantined instead of annotated.
    """

    job: AnnotationJob
    record: AnnotationRecord | None
    error: str = ""

    @property
    def failed(self) -> bool:
        """Whether this job ended in quarantine rather than an annotation."""
        return self.record is None


@dataclass
class ServiceStats:
    """Aggregate accounting across every drain."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    waves: int = 0
    batched_queries: int = 0
    regenerated_queries: int = 0
    usage_by_model: dict[str, UsageStats] = field(default_factory=dict)

    @property
    def pending(self) -> int:
        """Jobs submitted but not yet drained (or quarantined)."""
        return self.submitted - self.completed - self.failed


class AnnotationService:
    """Multi-project submit/drain facade over batched annotation pipelines."""

    def __init__(self, default_project: str = "default") -> None:
        self._default_project = default_project
        self._pipelines: dict[str, AnnotationPipeline] = {}
        self._queue: list[AnnotationJob] = []
        self._next_job_id = 1
        self.stats = ServiceStats()
        #: Jobs that failed annotation and were isolated from the queue.
        self.quarantine: list[CompletedJob] = []
        self._journal: EventJournal | None = None
        self._snapshots: SnapshotManager | None = None
        self._snapshot_every = 0
        self._last_snapshot_offset = 0

    # ------------------------------------------------------------------
    # project management
    # ------------------------------------------------------------------

    def register_project(
        self,
        name: str,
        schema: DatabaseSchema,
        config: TaskConfig | None = None,
        llm: LLMClient | None = None,
    ) -> AnnotationPipeline:
        """Create (and return) the annotation pipeline for one project."""
        if not name.strip():
            raise PipelineError("project name must be non-empty")
        if name in self._pipelines:
            raise PipelineError(f"project {name!r} is already registered")
        pipeline = AnnotationPipeline(
            schema=schema, config=config, llm=llm, dataset_name=name
        )
        self._pipelines[name] = pipeline
        if self._journal is not None:
            self._journal.append(
                PROJECT_REGISTERED,
                {
                    "project": name,
                    "schema": schema_to_state(schema),
                    "config": pipeline.config.to_dict(),
                },
            )
            pipeline.attach_journal(self._journal, project=name)
        return pipeline

    def pipeline(self, project: str | None = None) -> AnnotationPipeline:
        """The pipeline backing a project."""
        name = project or self._default_project
        if name not in self._pipelines:
            raise PipelineError(f"project {name!r} is not registered")
        return self._pipelines[name]

    @property
    def project_names(self) -> list[str]:
        """All registered projects, in registration order."""
        return list(self._pipelines.keys())

    # ------------------------------------------------------------------
    # queue
    # ------------------------------------------------------------------

    def submit(
        self, sql: str, project: str | None = None, query_id: str | None = None
    ) -> int:
        """Enqueue one statement; returns its job id."""
        name = project or self._default_project
        if name not in self._pipelines:
            raise PipelineError(f"project {name!r} is not registered")
        if not sql.strip().rstrip(";"):
            raise PipelineError("cannot enqueue an empty SQL string")
        job = AnnotationJob(
            job_id=self._next_job_id, project=name, sql=sql, query_id=query_id
        )
        self._next_job_id += 1
        self._queue.append(job)
        self.stats.submitted += 1
        if self._journal is not None:
            self._journal.append(
                JOB_SUBMITTED,
                {
                    "job_id": job.job_id,
                    "project": job.project,
                    "sql": job.sql,
                    "query_id": job.query_id,
                },
            )
        return job.job_id

    def submit_many(
        self, statements: list[str], project: str | None = None
    ) -> list[int]:
        """Enqueue several statements; returns their job ids."""
        return [self.submit(sql, project=project) for sql in statements]

    @property
    def pending_count(self) -> int:
        """Jobs waiting in the queue."""
        return len(self._queue)

    def pending_jobs(self, project: str | None = None) -> list[AnnotationJob]:
        """Queued jobs, optionally restricted to one project."""
        if project is None:
            return list(self._queue)
        return [job for job in self._queue if job.project == project]

    # ------------------------------------------------------------------
    # drain
    # ------------------------------------------------------------------

    def drain(self, max_jobs: int | None = None) -> list[CompletedJob]:
        """Process queued jobs through the batched wave scheduler.

        Jobs are grouped per project (preserving submission order within a
        project) and each group runs through that project's
        :meth:`AnnotationPipeline.annotate_many`.  Returns the completed jobs
        in the order they were processed — including failed ones, whose
        ``record`` is ``None`` (see :attr:`CompletedJob.failed`).

        Failure isolation: when a batched group raises, the jobs already
        committed keep their records, and the remainder re-runs one job at a
        time (bit-identical to the wave path) so a single poisoned statement
        is quarantined instead of sinking its whole wave.  Journal errors are
        never swallowed — losing durability is fatal, not isolable.
        """
        if max_jobs is not None and max_jobs < 0:
            raise PipelineError("max_jobs cannot be negative")
        taken = self._queue if max_jobs is None else self._queue[:max_jobs]
        self._queue = [] if max_jobs is None else self._queue[len(taken):]
        if not taken:
            return []

        by_project: dict[str, list[AnnotationJob]] = {}
        for job in taken:
            by_project.setdefault(job.project, []).append(job)

        drain_waves = 0
        drain_batched = 0
        drain_regenerated = 0
        completed: list[CompletedJob] = []
        for project, jobs in by_project.items():
            pipeline = self._pipelines[project]
            records_before = len(pipeline.annotations)
            try:
                records = pipeline.annotate_many(
                    [job.sql for job in jobs],
                    query_ids=[job.query_id for job in jobs],
                    commit_tags=[job.job_id for job in jobs],
                )
                run = pipeline.last_run_stats
                drain_waves += run.waves
                drain_batched += run.batched_queries
                drain_regenerated += run.regenerated_queries
                completed.extend(
                    CompletedJob(job=job, record=record)
                    for job, record in zip(jobs, records)
                )
            except JournalError:
                raise
            except Exception:
                # The already-committed prefix (journaled, archived) is kept;
                # everything after it — including the job that raised — is
                # retried individually so one bad statement cannot sink its
                # wave-mates.
                done = len(pipeline.annotations) - records_before
                committed_records = pipeline.annotations[records_before:]
                completed.extend(
                    CompletedJob(job=job, record=record)
                    for job, record in zip(jobs[:done], committed_records)
                )
                completed.extend(
                    self._drain_sequentially(pipeline, jobs[done:])
                )
        succeeded = sum(1 for item in completed if not item.failed)
        self.stats.completed += succeeded
        self.stats.waves += drain_waves
        self.stats.batched_queries += drain_batched
        self.stats.regenerated_queries += drain_regenerated
        self._refresh_usage()
        if self._journal is not None:
            self._journal.append(
                DRAIN_STATS,
                {
                    "waves": drain_waves,
                    "batched_queries": drain_batched,
                    "regenerated_queries": drain_regenerated,
                },
            )
            self._journal.commit()  # group-commit point for "batch" fsync
            self.maybe_snapshot()
        return completed

    def _drain_sequentially(
        self, pipeline: AnnotationPipeline, jobs: list[AnnotationJob]
    ) -> list[CompletedJob]:
        """Per-job fallback path with quarantine for jobs that still fail."""
        results: list[CompletedJob] = []
        for job in jobs:
            try:
                record = pipeline.annotate(
                    job.sql, query_id=job.query_id, commit_tag=job.job_id
                )
                results.append(CompletedJob(job=job, record=record))
            except JournalError:
                raise
            except Exception as exc:
                results.append(self._fail_job(job, exc))
        return results

    def _fail_job(self, job: AnnotationJob, exc: Exception) -> CompletedJob:
        """Quarantine one failing job (journaled, counted, returned)."""
        error = f"{type(exc).__name__}: {exc}"
        failed = CompletedJob(job=job, record=None, error=error)
        self.quarantine.append(failed)
        self.stats.failed += 1
        if self._journal is not None:
            self._journal.append(
                JOB_FAILED,
                {
                    "job_id": job.job_id,
                    "project": job.project,
                    "sql": job.sql,
                    "query_id": job.query_id,
                    "error": error,
                },
            )
        return failed

    def _refresh_usage(self) -> None:
        """Rebuild the per-model usage view from every pipeline's accounting.

        Pipelines with the same model name (e.g. two projects both on
        ``gpt-4o``) aggregate into one row; per-LLM usage is cumulative, so
        rebuilding from scratch keeps the totals exact.
        """
        totals: dict[str, UsageStats] = {}
        seen: set[int] = set()
        for pipeline in self._pipelines.values():
            usage = pipeline.llm.usage
            if id(usage) in seen:  # one LLM client shared across projects
                continue
            seen.add(id(usage))
            model = usage.model_name or pipeline.llm.name
            aggregate = totals.setdefault(model, UsageStats(model_name=model))
            aggregate.merge(usage)
        self.stats.usage_by_model = totals

    # ------------------------------------------------------------------
    # durability: journaling, snapshots, recovery
    # ------------------------------------------------------------------

    @property
    def journal(self) -> EventJournal | None:
        """The attached event journal, if the service is running durably."""
        return self._journal

    def attach_journal(
        self,
        journal: EventJournal,
        snapshots: SnapshotManager | None = None,
        snapshot_every: int = 0,
    ) -> None:
        """Start journaling every commit of this service (and its pipelines).

        ``snapshot_every`` > 0 additionally writes a snapshot once that many
        new journal records have accumulated since the last one (checked at
        drain boundaries).  Attach only to a service whose current state is
        already represented by the journal (fresh, or just recovered from
        it) — otherwise replay would diverge.
        """
        self._journal = journal
        self._snapshots = snapshots
        self._snapshot_every = snapshot_every
        if snapshots is not None:
            covered = [
                offset for offset in snapshots.offsets()
                if offset <= journal.record_count
            ]
            self._last_snapshot_offset = max(covered, default=0)
        else:
            self._last_snapshot_offset = 0
        for name, pipeline in self._pipelines.items():
            pipeline.attach_journal(journal, project=name)

    def snapshot(self) -> Path | None:
        """Write a snapshot now (journal + snapshot store required)."""
        return self.maybe_snapshot(force=True)

    def maybe_snapshot(self, force: bool = False) -> Path | None:
        """Write a snapshot when the cadence (or ``force``) says so."""
        if self._journal is None or self._snapshots is None:
            return None
        offset = self._journal.record_count
        due = (
            self._snapshot_every > 0
            and offset - self._last_snapshot_offset >= self._snapshot_every
        )
        if not (force or due):
            return None
        self._journal.commit()  # the snapshot must not lead the journal
        path = self._snapshots.save(offset, self.capture_state())
        self._last_snapshot_offset = offset
        return path

    def close(self) -> None:
        """Flush and release the journal (idempotent; service stays usable
        in-memory, but stops journaling)."""
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        for pipeline in self._pipelines.values():
            pipeline.attach_journal(None)

    def capture_state(self, include_accounting: bool = True) -> dict:
        """JSON-safe semantic state of the whole service.

        With ``include_accounting=False`` the process-local counters (wave
        stats, per-model usage) are excluded — that is the state that must be
        bit-identical across crash/recover cycles, since a crashed process
        cannot reproduce accounting for work whose drain never completed.
        """
        state = {
            "default_project": self._default_project,
            "next_job_id": self._next_job_id,
            "queue": [asdict(job) for job in self._queue],
            "quarantine": [
                {"job": asdict(item.job), "error": item.error}
                for item in self.quarantine
            ],
            "projects": {
                name: capture_pipeline_state(pipeline)
                for name, pipeline in self._pipelines.items()
            },
        }
        if include_accounting:
            state["stats"] = {
                "submitted": self.stats.submitted,
                "completed": self.stats.completed,
                "failed": self.stats.failed,
                "waves": self.stats.waves,
                "batched_queries": self.stats.batched_queries,
                "regenerated_queries": self.stats.regenerated_queries,
            }
        return state

    def restore_state(self, state: dict, llm_factory: LLMFactory | None = None) -> None:
        """Replace this service's state with a snapshot's (warm start)."""
        self._default_project = state["default_project"]
        self._next_job_id = int(state["next_job_id"])
        self._queue = [AnnotationJob(**job) for job in state["queue"]]
        self.quarantine = [
            CompletedJob(
                job=AnnotationJob(**item["job"]), record=None, error=item["error"]
            )
            for item in state["quarantine"]
        ]
        self._pipelines = {}
        for name, pipeline_state in state["projects"].items():
            llm = llm_factory(name) if llm_factory is not None else None
            self._pipelines[name] = restore_pipeline_state(name, pipeline_state, llm=llm)
        self.stats = ServiceStats()
        stats = state.get("stats")
        if stats:
            self.stats.submitted = int(stats["submitted"])
            self.stats.completed = int(stats["completed"])
            self.stats.failed = int(stats["failed"])
            self.stats.waves = int(stats["waves"])
            self.stats.batched_queries = int(stats["batched_queries"])
            self.stats.regenerated_queries = int(stats["regenerated_queries"])

    @classmethod
    def recover(
        cls,
        journal_path: str | Path,
        snapshots: SnapshotManager | None = None,
        default_project: str = "default",
        fsync: str = "batch",
        snapshot_every: int = 0,
        llm_factory: LLMFactory | None = None,
    ) -> "AnnotationService":
        """Rebuild a service from its journal (and snapshots) and go live.

        Opening the journal heals any torn tail first; when a snapshot store
        is supplied, the newest intact snapshot at or below the journal's
        valid prefix warm-starts the state and only the journal *suffix* is
        replayed.  The returned service has the journal attached and is ready
        for new submits/drains.  Works on a fresh (empty or absent) journal
        too, so it doubles as the "open durable service" entry point.
        """
        journal = EventJournal(journal_path, fsync=fsync)
        service = cls(default_project=default_project)
        start = 0
        if snapshots is not None:
            loaded = snapshots.latest(max_offset=journal.record_count)
            if loaded is not None:
                start, snapshot_state = loaded
                service.restore_state(snapshot_state, llm_factory=llm_factory)
        for event in journal.events(start):
            service._replay_event(event, llm_factory=llm_factory)
        service.attach_journal(journal, snapshots=snapshots, snapshot_every=snapshot_every)
        return service

    @classmethod
    def open_durable(
        cls,
        directory: str | Path,
        default_project: str = "default",
        fsync: str = "batch",
        snapshot_every: int = 0,
        keep_snapshots: int = 3,
        llm_factory: LLMFactory | None = None,
    ) -> "AnnotationService":
        """Open (creating or recovering) a durable service rooted at a directory.

        Layout: ``<directory>/journal.bin`` plus ``<directory>/snapshots/``.
        """
        directory = Path(directory)
        snapshots = SnapshotManager(directory / "snapshots", keep=keep_snapshots)
        return cls.recover(
            directory / "journal.bin",
            snapshots=snapshots,
            default_project=default_project,
            fsync=fsync,
            snapshot_every=snapshot_every,
            llm_factory=llm_factory,
        )

    def _replay_event(
        self, event: JournalEvent, llm_factory: LLMFactory | None = None
    ) -> None:
        """Re-apply one journaled event to the in-memory state.

        Replay never calls the LLM: committed annotations carry their record,
        feedback and archived example verbatim, and re-applying them in
        journal order reproduces the live state bit-for-bit (same example
        ids, same embedding statistics, same feedback history/revision).
        """
        payload = event.payload
        if event.type == PROJECT_REGISTERED:
            name = payload["project"]
            if name in self._pipelines:  # covered by the snapshot already
                return
            llm = llm_factory(name) if llm_factory is not None else None
            self._pipelines[name] = AnnotationPipeline(
                schema=schema_from_state(payload["schema"]),
                config=TaskConfig.from_dict(payload["config"]),
                llm=llm,
                dataset_name=name,
            )
        elif event.type == JOB_SUBMITTED:
            job = AnnotationJob(
                job_id=payload["job_id"],
                project=payload["project"],
                sql=payload["sql"],
                query_id=payload["query_id"],
            )
            self._queue.append(job)
            self._next_job_id = max(self._next_job_id, job.job_id + 1)
            self.stats.submitted += 1
        elif event.type == ANNOTATION_COMMITTED:
            pipeline = self._require_pipeline(payload["project"], event)
            record_state = payload["record"]
            # Reproduce the session-state mutation exactly as the live
            # commit did: history, knowledge, priorities, revision.
            pipeline.feedback_loop.apply(
                list(record_state["candidates"]), Feedback.from_state(payload["feedback"])
            )
            pipeline._counter += 1
            pipeline.annotations.append(AnnotationRecord(**record_state))
            example = payload["example"]
            if example is not None:
                pipeline.retriever.example_store.add(
                    example["sql"],
                    example["nl"],
                    dataset=example["dataset"],
                    tables=list(example["tables"]),
                    quality=example["quality"],
                )
            if payload["job_id"] is not None:
                self._settle_job(payload["job_id"])
                self.stats.completed += 1
        elif event.type == FEEDBACK_APPLIED:
            pipeline = self._require_pipeline(payload["project"], event)
            pipeline.feedback_loop.apply(
                list(payload["candidates"]), Feedback.from_state(payload["feedback"])
            )
        elif event.type == JOB_FAILED:
            self._settle_job(payload["job_id"])
            job = AnnotationJob(
                job_id=payload["job_id"],
                project=payload["project"],
                sql=payload["sql"],
                query_id=payload["query_id"],
            )
            self.quarantine.append(
                CompletedJob(job=job, record=None, error=payload["error"])
            )
            self.stats.failed += 1
        elif event.type == DRAIN_STATS:
            self.stats.waves += payload["waves"]
            self.stats.batched_queries += payload["batched_queries"]
            self.stats.regenerated_queries += payload["regenerated_queries"]
        else:
            raise JournalError(
                f"cannot replay unknown event type {event.type!r} "
                f"at journal offset {event.offset}"
            )

    def _require_pipeline(self, name: str, event: JournalEvent) -> AnnotationPipeline:
        if name not in self._pipelines:
            raise JournalError(
                f"journal offset {event.offset} references unregistered "
                f"project {name!r}; the journal prefix is incomplete"
            )
        return self._pipelines[name]

    def _settle_job(self, job_id: int) -> None:
        """Drop a journal-settled job from the pending queue (idempotent)."""
        self._queue = [job for job in self._queue if job.job_id != job_id]
