"""Queue-style annotation service over the batched pipeline.

The :class:`AnnotationService` is the throughput-oriented facade of the
reproduction: callers *submit* SQL statements (for one or several projects)
and later *drain* the queue, which schedules everything through each
project's :class:`~repro.core.pipeline.AnnotationPipeline` wave scheduler —
vectorized retrieval, one batched LLM call per wave, and per-query commits so
the growing-archive effect is preserved.  It models the server side of
BenchPress under heavy multi-user load, where annotation requests arrive
faster than they are processed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import TaskConfig
from repro.core.pipeline import AnnotationPipeline, AnnotationRecord
from repro.errors import PipelineError
from repro.llm.base import LLMClient, UsageStats
from repro.schema.model import DatabaseSchema


@dataclass
class AnnotationJob:
    """One queued annotation request."""

    job_id: int
    project: str
    sql: str
    query_id: str | None = None


@dataclass
class CompletedJob:
    """A drained job together with the record it produced."""

    job: AnnotationJob
    record: AnnotationRecord


@dataclass
class ServiceStats:
    """Aggregate accounting across every drain."""

    submitted: int = 0
    completed: int = 0
    waves: int = 0
    batched_queries: int = 0
    regenerated_queries: int = 0
    usage_by_model: dict[str, UsageStats] = field(default_factory=dict)

    @property
    def pending(self) -> int:
        """Jobs submitted but not yet drained."""
        return self.submitted - self.completed


class AnnotationService:
    """Multi-project submit/drain facade over batched annotation pipelines."""

    def __init__(self, default_project: str = "default") -> None:
        self._default_project = default_project
        self._pipelines: dict[str, AnnotationPipeline] = {}
        self._queue: list[AnnotationJob] = []
        self._next_job_id = 1
        self.stats = ServiceStats()

    # ------------------------------------------------------------------
    # project management
    # ------------------------------------------------------------------

    def register_project(
        self,
        name: str,
        schema: DatabaseSchema,
        config: TaskConfig | None = None,
        llm: LLMClient | None = None,
    ) -> AnnotationPipeline:
        """Create (and return) the annotation pipeline for one project."""
        if not name.strip():
            raise PipelineError("project name must be non-empty")
        if name in self._pipelines:
            raise PipelineError(f"project {name!r} is already registered")
        pipeline = AnnotationPipeline(
            schema=schema, config=config, llm=llm, dataset_name=name
        )
        self._pipelines[name] = pipeline
        return pipeline

    def pipeline(self, project: str | None = None) -> AnnotationPipeline:
        """The pipeline backing a project."""
        name = project or self._default_project
        if name not in self._pipelines:
            raise PipelineError(f"project {name!r} is not registered")
        return self._pipelines[name]

    @property
    def project_names(self) -> list[str]:
        """All registered projects, in registration order."""
        return list(self._pipelines.keys())

    # ------------------------------------------------------------------
    # queue
    # ------------------------------------------------------------------

    def submit(
        self, sql: str, project: str | None = None, query_id: str | None = None
    ) -> int:
        """Enqueue one statement; returns its job id."""
        name = project or self._default_project
        if name not in self._pipelines:
            raise PipelineError(f"project {name!r} is not registered")
        if not sql.strip().rstrip(";"):
            raise PipelineError("cannot enqueue an empty SQL string")
        job = AnnotationJob(
            job_id=self._next_job_id, project=name, sql=sql, query_id=query_id
        )
        self._next_job_id += 1
        self._queue.append(job)
        self.stats.submitted += 1
        return job.job_id

    def submit_many(
        self, statements: list[str], project: str | None = None
    ) -> list[int]:
        """Enqueue several statements; returns their job ids."""
        return [self.submit(sql, project=project) for sql in statements]

    @property
    def pending_count(self) -> int:
        """Jobs waiting in the queue."""
        return len(self._queue)

    def pending_jobs(self, project: str | None = None) -> list[AnnotationJob]:
        """Queued jobs, optionally restricted to one project."""
        if project is None:
            return list(self._queue)
        return [job for job in self._queue if job.project == project]

    # ------------------------------------------------------------------
    # drain
    # ------------------------------------------------------------------

    def drain(self, max_jobs: int | None = None) -> list[CompletedJob]:
        """Process queued jobs through the batched wave scheduler.

        Jobs are grouped per project (preserving submission order within a
        project) and each group runs through that project's
        :meth:`AnnotationPipeline.annotate_many`.  Returns the completed jobs
        in the order they were processed.
        """
        if max_jobs is not None and max_jobs < 0:
            raise PipelineError("max_jobs cannot be negative")
        taken = self._queue if max_jobs is None else self._queue[:max_jobs]
        self._queue = [] if max_jobs is None else self._queue[len(taken):]
        if not taken:
            return []

        by_project: dict[str, list[AnnotationJob]] = {}
        for job in taken:
            by_project.setdefault(job.project, []).append(job)

        completed: list[CompletedJob] = []
        for project, jobs in by_project.items():
            pipeline = self._pipelines[project]
            records = pipeline.annotate_many(
                [job.sql for job in jobs],
                query_ids=[job.query_id for job in jobs],
            )
            run = pipeline.last_run_stats
            self.stats.waves += run.waves
            self.stats.batched_queries += run.batched_queries
            self.stats.regenerated_queries += run.regenerated_queries
            completed.extend(
                CompletedJob(job=job, record=record)
                for job, record in zip(jobs, records)
            )
        self.stats.completed += len(completed)
        self._refresh_usage()
        return completed

    def _refresh_usage(self) -> None:
        """Rebuild the per-model usage view from every pipeline's accounting.

        Pipelines with the same model name (e.g. two projects both on
        ``gpt-4o``) aggregate into one row; per-LLM usage is cumulative, so
        rebuilding from scratch keeps the totals exact.
        """
        totals: dict[str, UsageStats] = {}
        seen: set[int] = set()
        for pipeline in self._pipelines.values():
            usage = pipeline.llm.usage
            if id(usage) in seen:  # one LLM client shared across projects
                continue
            seen.add(id(usage))
            model = usage.model_name or pipeline.llm.name
            aggregate = totals.setdefault(model, UsageStats(model_name=model))
            aggregate.merge(usage)
        self.stats.usage_by_model = totals
