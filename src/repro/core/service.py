"""Queue-style annotation service over the batched pipeline.

The :class:`AnnotationService` is the throughput-oriented facade of the
reproduction: callers *submit* SQL statements (for one or several projects)
and later *drain* the queue, which schedules everything through each
project's :class:`~repro.core.pipeline.AnnotationPipeline` wave scheduler —
vectorized retrieval, one batched LLM call per wave, and per-query commits so
the growing-archive effect is preserved.  It models the server side of
BenchPress under heavy multi-user load, where annotation requests arrive
faster than they are processed.

Concurrency.  With ``max_concurrency > 1`` (or ``drain(concurrency=...)``),
independent projects' waves run through a bounded worker pool
(:class:`~repro.core.scheduler.WaveScheduler`) so their batched LLM calls
overlap instead of queueing behind each other; per-project results are
bit-identical to the sequential drain.  Per-tenant admission control
(``TaskConfig.max_pending_per_project``) rejects submits with
:class:`~repro.errors.BackpressureError` once a tenant's queue is full, and
:class:`ServiceStats` keeps a lock-guarded per-tenant breakdown.

Durability.  The service can run on top of an append-only
:class:`~repro.core.journal.EventJournal`: every state change (project
registered, job submitted, annotation committed, job failed) is journaled at
its commit point, and :meth:`AnnotationService.recover` rebuilds the exact
in-memory state by replaying the journal — optionally warm-starting from the
newest :class:`~repro.core.snapshot.SnapshotManager` checkpoint and replaying
only the journal suffix.  Jobs follow at-least-once semantics: a job stays
pending until its ``annotation_committed`` (or ``job_failed``) event is on
disk, so a crash mid-drain re-queues exactly the jobs whose commits were
lost.

Fault isolation.  One failing job does not poison a drain: when a batched
wave raises, the already-committed prefix is kept, the remaining jobs are
retried individually (the sequential path is bit-identical to the wave path),
and a job that still fails is quarantined as a failed
:class:`CompletedJob` with its error message — counted in
:attr:`ServiceStats.failed`, never silently dropped.
"""

from __future__ import annotations

import threading
import time
import traceback as traceback_module
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable

from repro.core.config import TaskConfig
from repro.core.journal import (
    ANNOTATION_COMMITTED,
    DRAIN_STATS,
    FEEDBACK_APPLIED,
    JOB_FAILED,
    JOB_SUBMITTED,
    PROJECT_REGISTERED,
    EventJournal,
    JournalEvent,
)
from repro.core.pipeline import (
    AnnotationPipeline,
    AnnotationRecord,
    WaveRun,
    WaveStats,
)
from repro.core.snapshot import (
    SnapshotManager,
    capture_pipeline_state,
    restore_pipeline_state,
    schema_from_state,
    schema_to_state,
)
from repro.core.feedback import Feedback
from repro.core.scheduler import WaveScheduler
from repro.errors import (
    BackpressureError,
    CircuitOpenError,
    DeadlineExceededError,
    DegradedModeError,
    DiskFaultError,
    JournalError,
    PipelineError,
    SnapshotError,
)
from repro.llm.base import LLMClient, UsageStats
from repro.llm.resilience import Deadline
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.schema.model import DatabaseSchema

#: Optional factory recreating custom LLM clients during recovery, keyed by
#: project name; return ``None`` to use the default simulated client.
LLMFactory = Callable[[str], "LLMClient | None"]

#: Quarantined tracebacks are truncated to this many characters (keeping the
#: tail, where the raise site is) before being stored and journaled.
MAX_TRACEBACK_CHARS = 2000


def format_quarantine_traceback(exc: BaseException) -> str:
    """Render ``exc``'s traceback, truncated to :data:`MAX_TRACEBACK_CHARS`."""
    rendered = "".join(
        traceback_module.format_exception(type(exc), exc, exc.__traceback__)
    )
    if len(rendered) > MAX_TRACEBACK_CHARS:
        rendered = "... (truncated)\n" + rendered[-MAX_TRACEBACK_CHARS:]
    return rendered


@dataclass
class AnnotationJob:
    """One queued annotation request.

    ``priority`` feeds load-shedding admission: when the service's global
    pending queue enters its soft-shed band, only submits with a positive
    priority are still admitted.  It does not reorder the queue — drains
    stay strictly submission-ordered.
    """

    job_id: int
    project: str
    sql: str
    query_id: str | None = None
    priority: int = 0


@dataclass
class CompletedJob:
    """A drained job together with the record it produced.

    ``record`` is ``None`` — and ``error`` holds the reason — when the job
    failed and was quarantined instead of annotated.
    """

    job: AnnotationJob
    record: AnnotationRecord | None
    error: str = ""
    #: Exception class name for failed jobs (``""`` on success) — lets the
    #: quarantine counters break failures down by cause.
    error_type: str = ""
    #: Truncated traceback of the failure (``""`` on success).
    traceback: str = ""

    @property
    def failed(self) -> bool:
        """Whether this job ended in quarantine rather than an annotation."""
        return self.record is None


@dataclass
class ProjectStats:
    """Per-tenant slice of the service accounting.

    ``deferred`` counts deferral *events* (a job deferred twice counts
    twice); deferred jobs stay pending, so it does not enter the
    :attr:`pending` arithmetic.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    deferred: int = 0

    @property
    def pending(self) -> int:
        """This tenant's jobs submitted but not yet drained (or quarantined)."""
        return self.submitted - self.completed - self.failed


@dataclass
class DrainReport:
    """Degradation-aware summary of one :meth:`AnnotationService.drain` call.

    Stored as :attr:`AnnotationService.last_drain_report` after every drain.
    ``deferred`` jobs were re-queued (breaker open, deadline expired, or a
    disk fault mid-drain) — not failed; a later drain will pick them up.
    """

    completed: int = 0
    failed: int = 0
    deferred: int = 0
    deadline_expired: bool = False
    degraded: bool = False
    duration_seconds: float = 0.0


@dataclass
class _DrainOutcome:
    """Internal per-drain accumulator (completed + deferred + wave counters)."""

    completed: list[CompletedJob] = field(default_factory=list)
    deferred: list[AnnotationJob] = field(default_factory=list)
    waves: int = 0
    batched: int = 0
    regenerated: int = 0
    llm_requests: int = 0

    def absorb(self, other: "_DrainOutcome") -> None:
        self.completed.extend(other.completed)
        self.deferred.extend(other.deferred)
        self.waves += other.waves
        self.batched += other.batched
        self.regenerated += other.regenerated
        self.llm_requests += other.llm_requests


@dataclass
class ServiceStats:
    """Aggregate accounting across every drain.

    Counter mutations go through the ``note_*`` methods, which serialize
    updates under an internal lock and keep the per-tenant breakdown in
    :attr:`per_project` consistent with the global totals — safe to read
    from monitoring threads while a concurrent drain is in flight.
    """

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    #: Deferral events across drains (breaker-open / deadline / disk-fault
    #: re-queues).  An operational counter: snapshots carry it, but journal
    #: replay does not reconstruct it (deferred jobs are simply still queued).
    deferred: int = 0
    waves: int = 0
    batched_queries: int = 0
    regenerated_queries: int = 0
    #: LLM round trips observed across drains (journaled per drain, so the
    #: counter survives crash/recover like the other drain accounting).
    llm_requests: int = 0
    usage_by_model: dict[str, UsageStats] = field(default_factory=dict)
    per_project: dict[str, ProjectStats] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Not a dataclass field so serialisation helpers never see it.
        self._lock = threading.Lock()

    @property
    def pending(self) -> int:
        """Jobs submitted but not yet drained (or quarantined)."""
        return self.submitted - self.completed - self.failed

    def project(self, name: str) -> ProjectStats:
        """The (created-on-demand) per-tenant counters for one project."""
        with self._lock:
            return self.per_project.setdefault(name, ProjectStats())

    def note_submitted(self, project: str, count: int = 1) -> None:
        """Count newly enqueued jobs for one tenant."""
        with self._lock:
            self.submitted += count
            self.per_project.setdefault(project, ProjectStats()).submitted += count

    def note_completed(self, project: str, count: int = 1) -> None:
        """Count successfully annotated jobs for one tenant."""
        with self._lock:
            self.completed += count
            self.per_project.setdefault(project, ProjectStats()).completed += count

    def note_failed(self, project: str, count: int = 1) -> None:
        """Count quarantined jobs for one tenant."""
        with self._lock:
            self.failed += count
            self.per_project.setdefault(project, ProjectStats()).failed += count

    def note_deferred(self, project: str, count: int = 1) -> None:
        """Count re-queued (deferred, not failed) jobs for one tenant."""
        with self._lock:
            self.deferred += count
            self.per_project.setdefault(project, ProjectStats()).deferred += count

    def note_drain(
        self, waves: int, batched: int, regenerated: int, llm_requests: int = 0
    ) -> None:
        """Fold one drain's wave accounting into the totals."""
        with self._lock:
            self.waves += waves
            self.batched_queries += batched
            self.regenerated_queries += regenerated
            self.llm_requests += llm_requests


class AnnotationService:
    """Multi-project submit/drain facade over batched annotation pipelines.

    ``max_concurrency`` sets the default worker-pool width used by
    :meth:`drain` when several projects have pending jobs: 1 (the default)
    keeps the classic fully sequential drain, larger values overlap
    independent projects' waves on the LLM boundary via
    :class:`~repro.core.scheduler.WaveScheduler`.  Per-project results are
    bit-identical either way.
    """

    def __init__(
        self,
        default_project: str = "default",
        max_concurrency: int = 1,
        telemetry: Telemetry | None = None,
        global_pending_limit: int = 0,
        shed_threshold: float = 0.8,
    ) -> None:
        if max_concurrency < 1:
            raise PipelineError("max_concurrency must be at least 1")
        if global_pending_limit < 0:
            raise PipelineError("global_pending_limit cannot be negative")
        if not 0.0 < shed_threshold <= 1.0:
            raise PipelineError("shed_threshold must be within (0, 1]")
        self._default_project = default_project
        self.max_concurrency = max_concurrency
        #: Load-shedding admission: with a positive ``global_pending_limit``,
        #: submits are rejected outright at the limit, and zero/negative
        #: priority submits are shed once the total pending queue passes
        #: ``shed_threshold * global_pending_limit`` (highest-priority work
        #: keeps flowing the longest).  0 disables global shedding.
        self.global_pending_limit = global_pending_limit
        self.shed_threshold = shed_threshold
        #: Injected observability sink; the no-op default keeps every
        #: instrumented path bit-identical and effectively free.
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._pipelines: dict[str, AnnotationPipeline] = {}
        self._queue: list[AnnotationJob] = []
        self._pending_by_project: dict[str, int] = {}
        self._next_job_id = 1
        self.stats = ServiceStats()
        #: Jobs that failed annotation and were isolated from the queue.
        self.quarantine: list[CompletedJob] = []
        self._journal: EventJournal | None = None
        self._snapshots: SnapshotManager | None = None
        self._snapshot_every = 0
        self._last_snapshot_offset = 0
        self._degraded = False
        #: Degradation-aware summary of the most recent :meth:`drain`.
        self.last_drain_report: DrainReport | None = None

    def __enter__(self) -> "AnnotationService":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    @property
    def degraded(self) -> bool:
        """Whether the service is in journaled-read-only degraded mode.

        Entered when the journal hits a disk fault (ENOSPC, EIO, failed
        fsync): reads — annotations, exports, stats — keep working, but
        :meth:`submit` and :meth:`drain` raise :class:`DegradedModeError`
        until an operator recovers a fresh service from the journal.
        """
        return self._degraded

    # ------------------------------------------------------------------
    # project management
    # ------------------------------------------------------------------

    def register_project(
        self,
        name: str,
        schema: DatabaseSchema,
        config: TaskConfig | None = None,
        llm: LLMClient | None = None,
    ) -> AnnotationPipeline:
        """Create (and return) the annotation pipeline for one project."""
        if not name.strip():
            raise PipelineError("project name must be non-empty")
        if name in self._pipelines:
            raise PipelineError(f"project {name!r} is already registered")
        pipeline = AnnotationPipeline(
            schema=schema, config=config, llm=llm, dataset_name=name
        )
        pipeline.attach_telemetry(self.telemetry)
        self._pipelines[name] = pipeline
        if self._journal is not None:
            self._journal.append(
                PROJECT_REGISTERED,
                {
                    "project": name,
                    "schema": schema_to_state(schema),
                    "config": pipeline.config.to_dict(),
                },
            )
            pipeline.attach_journal(self._journal, project=name)
        return pipeline

    def pipeline(self, project: str | None = None) -> AnnotationPipeline:
        """The pipeline backing a project."""
        name = project or self._default_project
        if name not in self._pipelines:
            raise PipelineError(f"project {name!r} is not registered")
        return self._pipelines[name]

    @property
    def project_names(self) -> list[str]:
        """All registered projects, in registration order."""
        return list(self._pipelines.keys())

    # ------------------------------------------------------------------
    # queue
    # ------------------------------------------------------------------

    def submit(
        self,
        sql: str,
        project: str | None = None,
        query_id: str | None = None,
        priority: int = 0,
    ) -> int:
        """Enqueue one statement; returns its job id.

        Admission control rejects a submit with :class:`BackpressureError`
        *before* anything is enqueued or journaled — the caller should drain
        and resubmit:

        * per-tenant, when the project already has
          :attr:`~repro.core.config.TaskConfig.max_pending_per_project`
          queued jobs;
        * globally (load shedding), when :attr:`global_pending_limit` is set
          and the whole queue is at the limit — or past
          ``shed_threshold * limit`` and this submit's ``priority`` is not
          positive, so the lowest-priority traffic is shed first.

        In degraded mode every submit raises :class:`DegradedModeError`.
        """
        if self._degraded:
            raise DegradedModeError(
                "service is in journaled-read-only degraded mode after a disk "
                "fault; recover it from its journal before submitting"
            )
        name = project or self._default_project
        if name not in self._pipelines:
            raise PipelineError(f"project {name!r} is not registered")
        if not sql.strip().rstrip(";"):
            raise PipelineError("cannot enqueue an empty SQL string")
        limit = self._pipelines[name].config.max_pending_per_project
        queued = self._pending_by_project.get(name, 0)
        if limit > 0 and queued >= limit:
            tel = self.telemetry
            if tel.enabled:
                tel.count("service_backpressure_total", project=name)
                tel.event(
                    "submit_rejected", project=name, pending=queued, limit=limit
                )
            raise BackpressureError(
                f"project {name!r} already has {queued} pending jobs "
                f"(max_pending_per_project={limit}); drain before resubmitting"
            )
        if self.global_pending_limit > 0:
            total = len(self._queue)
            shed_floor = self.shed_threshold * self.global_pending_limit
            if total >= self.global_pending_limit or (
                total >= shed_floor and priority <= 0
            ):
                tel = self.telemetry
                if tel.enabled:
                    tel.count("service_load_shed_total", project=name)
                    tel.event(
                        "submit_shed",
                        project=name,
                        pending=total,
                        limit=self.global_pending_limit,
                        priority=priority,
                    )
                raise BackpressureError(
                    f"global pending queue holds {total} jobs "
                    f"(limit={self.global_pending_limit}, shed band starts at "
                    f"{shed_floor:.0f}); submit with priority={priority} shed"
                )
        job = AnnotationJob(
            job_id=self._next_job_id,
            project=name,
            sql=sql,
            query_id=query_id,
            priority=priority,
        )
        if self._journal is not None:
            try:
                self._journal.append(
                    JOB_SUBMITTED,
                    {
                        "job_id": job.job_id,
                        "project": job.project,
                        "sql": job.sql,
                        "query_id": job.query_id,
                        "priority": job.priority,
                    },
                )
            except DiskFaultError as exc:
                # Nothing was enqueued; flip read-only instead of crashing.
                self._enter_degraded_mode(exc)
                raise DegradedModeError(
                    f"submit rejected: journal hit a disk fault ({exc}); "
                    "service is now in degraded mode"
                ) from exc
        self._next_job_id += 1
        self._queue.append(job)
        self._pending_by_project[name] = queued + 1
        self.stats.note_submitted(name)
        tel = self.telemetry
        if tel.enabled:
            tel.count("service_jobs_submitted_total", project=name)
            tel.gauge("service_pending_jobs", len(self._queue))
        return job.job_id

    def submit_many(
        self, statements: list[str], project: str | None = None
    ) -> list[int]:
        """Enqueue several statements; returns their job ids."""
        return [self.submit(sql, project=project) for sql in statements]

    @property
    def pending_count(self) -> int:
        """Jobs waiting in the queue."""
        return len(self._queue)

    def pending_jobs(self, project: str | None = None) -> list[AnnotationJob]:
        """Queued jobs, optionally restricted to one project."""
        if project is None:
            return list(self._queue)
        return [job for job in self._queue if job.project == project]

    def pending_count_for(self, project: str) -> int:
        """Queued jobs for one project (the admission-control counter)."""
        return self._pending_by_project.get(project, 0)

    # ------------------------------------------------------------------
    # drain
    # ------------------------------------------------------------------

    def drain(
        self,
        max_jobs: int | None = None,
        concurrency: int | None = None,
        deadline: "Deadline | float | None" = None,
    ) -> list[CompletedJob]:
        """Process queued jobs through the batched wave scheduler.

        Jobs are grouped per project (preserving submission order within a
        project) and each group runs through that project's wave scheduler.
        Returns the completed jobs ordered by project (projects in
        first-submission order, jobs in submission order within each) —
        including failed ones, whose ``record`` is ``None`` (see
        :attr:`CompletedJob.failed`).

        ``concurrency`` (defaulting to the service's :attr:`max_concurrency`)
        sets how many projects' waves may be in flight at once.  Above 1,
        independent projects advance round-by-round through a bounded worker
        pool (:class:`WaveScheduler`) so their batched LLM calls overlap;
        each project still runs its own waves strictly in order, so its
        records are bit-identical to a sequential drain, and the returned
        list is identical too.

        ``deadline`` (seconds or a :class:`Deadline`) bounds the drain's wall
        clock: it is carried through scheduler rounds into every LLM call
        (shrinking per-call timeouts), and jobs that don't fit the budget are
        *deferred* — re-queued at the front, counted in
        :attr:`ServiceStats.deferred` and :attr:`last_drain_report`, never
        quarantined.  Projects whose circuit breaker is open are deferred the
        same way.

        Failure isolation: when a batched group raises, the jobs already
        committed keep their records, and the remainder re-runs one job at a
        time (bit-identical to the wave path) so a single poisoned statement
        is quarantined instead of sinking its whole wave.  Journal errors are
        never swallowed — losing durability is fatal, not isolable — with one
        exception: an OS-level disk fault (:class:`DiskFaultError`) flips the
        service into journaled-read-only degraded mode, salvages the
        committed prefix and returns it instead of crashing mid-drain.
        """
        if self._degraded:
            raise DegradedModeError(
                "service is in journaled-read-only degraded mode after a disk "
                "fault; recover it from its journal before draining"
            )
        if max_jobs is not None and max_jobs < 0:
            raise PipelineError("max_jobs cannot be negative")
        workers = self.max_concurrency if concurrency is None else concurrency
        if workers < 1:
            raise PipelineError("drain concurrency must be at least 1")
        deadline = Deadline.coerce(deadline)
        drain_started = time.perf_counter()
        taken = self._queue if max_jobs is None else self._queue[:max_jobs]
        self._queue = [] if max_jobs is None else self._queue[len(taken):]
        if not taken:
            self.last_drain_report = DrainReport(
                deadline_expired=deadline is not None and deadline.expired,
                duration_seconds=time.perf_counter() - drain_started,
            )
            return []
        for job in taken:
            remaining = self._pending_by_project.get(job.project, 0) - 1
            self._pending_by_project[job.project] = max(0, remaining)

        by_project: dict[str, list[AnnotationJob]] = {}
        for job in taken:
            by_project.setdefault(job.project, []).append(job)
        records_before = {
            project: len(self._pipelines[project].annotations)
            for project in by_project
        }

        tel = self.telemetry
        try:
            with tel.span(
                "service.drain",
                jobs=len(taken),
                projects=len(by_project),
                concurrency=workers,
            ):
                if workers > 1 and len(by_project) > 1:
                    outcome = self._drain_concurrent(
                        by_project, workers, records_before, deadline
                    )
                else:
                    outcome = _DrainOutcome()
                    for project, jobs in by_project.items():
                        outcome.absorb(
                            self._drain_project(project, jobs, deadline)
                        )
                for item in outcome.completed:
                    if not item.failed:
                        self.stats.note_completed(item.job.project)
                self._requeue_deferred(outcome.deferred)
                self.stats.note_drain(
                    outcome.waves,
                    outcome.batched,
                    outcome.regenerated,
                    outcome.llm_requests,
                )
                self._refresh_usage()
                if self._journal is not None:
                    self._journal.append(
                        DRAIN_STATS,
                        {
                            "waves": outcome.waves,
                            "batched_queries": outcome.batched,
                            "regenerated_queries": outcome.regenerated,
                            "llm_requests": outcome.llm_requests,
                        },
                    )
                    self._journal.commit()  # group-commit point for "batch" fsync
                    self.maybe_snapshot()
        except DiskFaultError as exc:
            return self._salvage_disk_fault(
                by_project, records_before, exc, drain_started
            )
        completed = outcome.completed
        self.last_drain_report = DrainReport(
            completed=sum(1 for item in completed if not item.failed),
            failed=sum(1 for item in completed if item.failed),
            deferred=len(outcome.deferred),
            deadline_expired=deadline is not None and deadline.expired,
            duration_seconds=time.perf_counter() - drain_started,
        )
        if tel.enabled:
            tel.observe(
                "service_drain_seconds", time.perf_counter() - drain_started
            )
            for item in completed:
                if not item.failed:
                    tel.count(
                        "service_jobs_completed_total", project=item.job.project
                    )
            tel.gauge("service_pending_jobs", len(self._queue))
        return completed

    def _requeue_deferred(self, jobs: list[AnnotationJob]) -> None:
        """Push deferred jobs back to the *front* of the queue, in order.

        Deferred jobs keep their ids and relative order, so the next drain
        picks them up first and per-project commit order is preserved —
        deferral never reorders a project's record stream.
        """
        if not jobs:
            return
        self._queue[:0] = jobs
        tel = self.telemetry
        counts: dict[str, int] = {}
        for job in jobs:
            self._pending_by_project[job.project] = (
                self._pending_by_project.get(job.project, 0) + 1
            )
            counts[job.project] = counts.get(job.project, 0) + 1
        for project, count in counts.items():
            self.stats.note_deferred(project, count)
            if tel.enabled:
                tel.count("service_jobs_deferred_total", count, project=project)
                tel.event("jobs_deferred", project=project, count=count)

    def _drain_project(
        self,
        project: str,
        jobs: list[AnnotationJob],
        deadline: Deadline | None = None,
    ) -> _DrainOutcome:
        """Run one project's jobs on the calling thread, wave by wave.

        Stops early — deferring the uncommitted remainder — when the drain
        deadline expires or the project's circuit breaker refuses calls; any
        other failure falls back to the committed-prefix + per-job quarantine
        salvage path (whose wave counters stay zero, matching the historical
        accounting).
        """
        pipeline = self._pipelines[project]
        breaker = pipeline.breaker
        if (breaker is not None and not breaker.would_allow()) or (
            deadline is not None and deadline.expired
        ):
            return _DrainOutcome(deferred=list(jobs))
        records_before = len(pipeline.annotations)
        run = pipeline.wave_run(
            [job.sql for job in jobs],
            query_ids=[job.query_id for job in jobs],
            commit_tags=[job.job_id for job in jobs],
            deadline=deadline,
        )
        try:
            while not run.done:
                if deadline is not None and deadline.expired:
                    break
                if breaker is not None and not breaker.would_allow():
                    break
                run.run_next_wave()
        except JournalError:
            raise
        except (CircuitOpenError, DeadlineExceededError):
            pass  # defer the uncommitted remainder below
        except Exception:
            # The already-committed prefix (journaled, archived) is kept;
            # everything after it — including the job that raised — is
            # retried individually so one bad statement cannot sink its
            # wave-mates.
            return self._recover_project_drain(project, jobs, records_before)
        run.finish()
        return self._settle_partial_run(
            pipeline, jobs, records_before, run_stats=run.stats
        )

    def _settle_partial_run(
        self,
        pipeline: AnnotationPipeline,
        jobs: list[AnnotationJob],
        records_before: int,
        run_stats: "WaveStats | None" = None,
    ) -> _DrainOutcome:
        """Split a (possibly unfinished) run into completed + deferred jobs.

        The committed prefix is read off the pipeline's annotation list, not
        the run's record buffer, so commits that landed mid-wave before a
        deferral signal are never re-run.
        """
        committed = pipeline.annotations[records_before:]
        done = min(len(committed), len(jobs))
        outcome = _DrainOutcome(
            completed=[
                CompletedJob(job=job, record=record)
                for job, record in zip(jobs[:done], committed)
            ],
            deferred=list(jobs[done:]),
        )
        if run_stats is not None:
            outcome.waves = run_stats.waves
            outcome.batched = run_stats.batched_queries
            outcome.regenerated = run_stats.regenerated_queries
            outcome.llm_requests = run_stats.llm_requests
        return outcome

    def _recover_project_drain(
        self, project: str, jobs: list[AnnotationJob], records_before: int
    ) -> _DrainOutcome:
        """Salvage a project group whose batched run raised mid-drain."""
        pipeline = self._pipelines[project]
        done = len(pipeline.annotations) - records_before
        committed_records = pipeline.annotations[records_before:]
        outcome = _DrainOutcome(
            completed=[
                CompletedJob(job=job, record=record)
                for job, record in zip(jobs[:done], committed_records)
            ]
        )
        sequential, deferred = self._drain_sequentially(pipeline, jobs[done:])
        outcome.completed.extend(sequential)
        outcome.deferred.extend(deferred)
        return outcome

    def _drain_concurrent(
        self,
        by_project: dict[str, list[AnnotationJob]],
        workers: int,
        records_before: dict[str, int],
        deadline: Deadline | None = None,
    ) -> _DrainOutcome:
        """Advance every project's waves round-by-round through a worker pool.

        Results are assembled in ``by_project`` order after the scheduler
        finishes, so the returned list is identical to the sequential drain's
        regardless of how waves interleaved in time.  Projects whose breaker
        is open are deferred before scheduling; runs the deadline cut short
        (and runs stopped by a deferral signal mid-wave) keep their committed
        prefix and defer the rest; other failures fall back to the same
        committed-prefix + per-job salvage path as sequential drain.
        """
        runs: dict[str, WaveRun] = {}
        for project, jobs in by_project.items():
            pipeline = self._pipelines[project]
            breaker = pipeline.breaker
            if breaker is not None and not breaker.would_allow():
                continue  # deferred wholesale during assembly below
            runs[project] = pipeline.wave_run(
                [job.sql for job in jobs],
                query_ids=[job.query_id for job in jobs],
                commit_tags=[job.job_id for job in jobs],
                deadline=deadline,
            )
        scheduler = WaveScheduler(max_workers=workers, telemetry=self.telemetry)
        errors = scheduler.run_all(runs, deadline=deadline)
        outcome = _DrainOutcome()
        for project, jobs in by_project.items():
            pipeline = self._pipelines[project]
            run = runs.get(project)
            if run is None:
                outcome.deferred.extend(jobs)
                continue
            error = errors.get(project)
            if error is not None and not isinstance(
                error, (CircuitOpenError, DeadlineExceededError)
            ):
                outcome.absorb(
                    self._recover_project_drain(
                        project, jobs, records_before[project]
                    )
                )
                continue
            run.finish()
            outcome.absorb(
                self._settle_partial_run(
                    pipeline,
                    jobs,
                    records_before[project],
                    run_stats=run.stats if error is None else None,
                )
            )
        return outcome

    def _drain_sequentially(
        self, pipeline: AnnotationPipeline, jobs: list[AnnotationJob]
    ) -> tuple[list[CompletedJob], list[AnnotationJob]]:
        """Per-job fallback path with quarantine for jobs that still fail.

        Deferral signals (breaker open, deadline exhausted) stop the loop and
        hand the remaining jobs back for re-queueing — they are scheduling
        outcomes, not job failures, so they never reach the quarantine.
        """
        results: list[CompletedJob] = []
        for index, job in enumerate(jobs):
            try:
                record = pipeline.annotate(
                    job.sql, query_id=job.query_id, commit_tag=job.job_id
                )
                results.append(CompletedJob(job=job, record=record))
            except JournalError:
                raise
            except (CircuitOpenError, DeadlineExceededError):
                return results, list(jobs[index:])
            except Exception as exc:
                results.append(self._fail_job(job, exc))
        return results, []

    def _salvage_disk_fault(
        self,
        by_project: dict[str, list[AnnotationJob]],
        records_before: dict[str, int],
        exc: DiskFaultError,
        drain_started: float,
    ) -> list[CompletedJob]:
        """Settle a drain interrupted by a disk fault and go degraded.

        Every annotation whose journal append succeeded before the fault is
        returned as completed; everything else is re-queued (deferred).  The
        service then flips to journaled-read-only degraded mode — the right
        trade for a full disk: existing work stays readable, new mutations
        are refused until an operator recovers from the (intact) journal
        prefix.  Note the in-memory view may lead the journal by the one
        record whose append failed; recovery replays journal truth.
        """
        completed: list[CompletedJob] = []
        deferred: list[AnnotationJob] = []
        for project, jobs in by_project.items():
            pipeline = self._pipelines[project]
            committed = pipeline.annotations[records_before[project]:]
            done = min(len(committed), len(jobs))
            completed.extend(
                CompletedJob(job=job, record=record)
                for job, record in zip(jobs[:done], committed)
            )
            deferred.extend(jobs[done:])
        for item in completed:
            self.stats.note_completed(item.job.project)
        self._requeue_deferred(deferred)
        self._refresh_usage()
        self._enter_degraded_mode(exc)
        self.last_drain_report = DrainReport(
            completed=len(completed),
            deferred=len(deferred),
            degraded=True,
            duration_seconds=time.perf_counter() - drain_started,
        )
        return completed

    def _enter_degraded_mode(self, exc: DiskFaultError) -> None:
        """Flip to journaled-read-only mode after an OS-level disk fault.

        Journaling stops (the handle is released best-effort), pipelines are
        detached so no further appends are attempted, and subsequent
        :meth:`submit`/:meth:`drain` calls raise :class:`DegradedModeError`.
        In-memory reads keep working.
        """
        self._degraded = True
        tel = self.telemetry
        if tel.enabled:
            tel.count("service_degraded_transitions_total")
            tel.event(
                "service_degraded",
                error=str(exc),
                errno=exc.errno if exc.errno is not None else "",
            )
        journal = self._journal
        self._journal = None
        self._snapshots = None
        for pipeline in self._pipelines.values():
            pipeline.attach_journal(None)
        if journal is not None:
            try:
                journal.close()
            except JournalError:
                pass  # the disk is already known-bad; nothing left to save

    def _fail_job(self, job: AnnotationJob, exc: Exception) -> CompletedJob:
        """Quarantine one failing job (journaled, counted, returned).

        The full failure detail — exception class and a truncated traceback,
        not just the message — is kept on the :class:`CompletedJob` and in the
        journaled ``job_failed`` record, so quarantine counters broken down by
        ``error_type`` point at an actionable cause.
        """
        error = f"{type(exc).__name__}: {exc}"
        error_type = type(exc).__name__
        trace = format_quarantine_traceback(exc)
        failed = CompletedJob(
            job=job, record=None, error=error, error_type=error_type, traceback=trace
        )
        self.quarantine.append(failed)
        self.stats.note_failed(job.project)
        tel = self.telemetry
        if tel.enabled:
            tel.count(
                "service_jobs_quarantined_total",
                project=job.project,
                error_type=error_type,
            )
            tel.event(
                "job_quarantined",
                project=job.project,
                job_id=job.job_id,
                error_type=error_type,
            )
        if self._journal is not None:
            self._journal.append(
                JOB_FAILED,
                {
                    "job_id": job.job_id,
                    "project": job.project,
                    "sql": job.sql,
                    "query_id": job.query_id,
                    "error": error,
                    "error_type": error_type,
                    "traceback": trace,
                },
            )
        return failed

    def _refresh_usage(self) -> None:
        """Rebuild the per-model usage view from every pipeline's accounting.

        Pipelines with the same model name (e.g. two projects both on
        ``gpt-4o``) aggregate into one row; per-LLM usage is cumulative, so
        rebuilding from scratch keeps the totals exact.
        """
        totals: dict[str, UsageStats] = {}
        seen: set[int] = set()
        for pipeline in self._pipelines.values():
            usage = pipeline.llm.usage
            if id(usage) in seen:  # one LLM client shared across projects
                continue
            seen.add(id(usage))
            model = usage.model_name or pipeline.llm.name
            aggregate = totals.setdefault(model, UsageStats(model_name=model))
            aggregate.merge(usage)
        self.stats.usage_by_model = totals

    # ------------------------------------------------------------------
    # durability: journaling, snapshots, recovery
    # ------------------------------------------------------------------

    @property
    def journal(self) -> EventJournal | None:
        """The attached event journal, if the service is running durably."""
        return self._journal

    def attach_journal(
        self,
        journal: EventJournal,
        snapshots: SnapshotManager | None = None,
        snapshot_every: int = 0,
    ) -> None:
        """Start journaling every commit of this service (and its pipelines).

        ``snapshot_every`` > 0 additionally writes a snapshot once that many
        new journal records have accumulated since the last one (checked at
        drain boundaries).  Attach only to a service whose current state is
        already represented by the journal (fresh, or just recovered from
        it) — otherwise replay would diverge.
        """
        self._journal = journal
        self._snapshots = snapshots
        self._snapshot_every = snapshot_every
        journal.telemetry = self.telemetry
        if journal.recovery.torn and self.telemetry.enabled:
            salvage = journal.recovery.salvage
            kind = salvage.kind if salvage is not None else "torn_tail"
            self.telemetry.count("journal_salvage_total", kind=kind)
            self.telemetry.event(
                "journal_salvaged",
                kind=kind,
                reason=salvage.reason if salvage is not None else "unknown",
                valid_records=journal.recovery.record_count,
                dropped_bytes=journal.recovery.dropped_bytes,
                resynced_records=(
                    salvage.resynced_records if salvage is not None else 0
                ),
            )
        if snapshots is not None:
            snapshots.telemetry = self.telemetry
            covered = [
                offset for offset in snapshots.offsets()
                if offset <= journal.record_count
            ]
            self._last_snapshot_offset = max(covered, default=0)
        else:
            self._last_snapshot_offset = 0
        for name, pipeline in self._pipelines.items():
            pipeline.attach_journal(journal, project=name)

    def snapshot(self) -> Path | None:
        """Write a snapshot now (journal + snapshot store required)."""
        return self.maybe_snapshot(force=True)

    def maybe_snapshot(self, force: bool = False) -> Path | None:
        """Write a snapshot when the cadence (or ``force``) says so.

        Snapshots are an optimisation (warm start), not the source of truth —
        a snapshot that cannot be written is logged and skipped rather than
        failing the drain, since the journal already holds everything.
        """
        if self._journal is None or self._snapshots is None:
            return None
        offset = self._journal.record_count
        due = (
            self._snapshot_every > 0
            and offset - self._last_snapshot_offset >= self._snapshot_every
        )
        if not (force or due):
            return None
        self._journal.commit()  # the snapshot must not lead the journal
        try:
            path = self._snapshots.save(offset, self.capture_state())
        except SnapshotError as exc:
            tel = self.telemetry
            if tel.enabled:
                tel.count("snapshot_write_failures_total")
                tel.event("snapshot_write_failed", error=str(exc), offset=offset)
            return None
        self._last_snapshot_offset = offset
        return path

    def close(self) -> None:
        """Flush and release the journal (idempotent; service stays usable
        in-memory, but stops journaling)."""
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        for pipeline in self._pipelines.values():
            pipeline.attach_journal(None)

    def capture_state(self, include_accounting: bool = True) -> dict:
        """JSON-safe semantic state of the whole service.

        With ``include_accounting=False`` the process-local counters (wave
        stats, per-model usage) are excluded — that is the state that must be
        bit-identical across crash/recover cycles, since a crashed process
        cannot reproduce accounting for work whose drain never completed.
        """
        state = {
            "default_project": self._default_project,
            "next_job_id": self._next_job_id,
            "queue": [asdict(job) for job in self._queue],
            "quarantine": [
                {
                    "job": asdict(item.job),
                    "error": item.error,
                    "error_type": item.error_type,
                    "traceback": item.traceback,
                }
                for item in self.quarantine
            ],
            "projects": {
                name: capture_pipeline_state(pipeline)
                for name, pipeline in self._pipelines.items()
            },
        }
        if include_accounting:
            state["stats"] = {
                "submitted": self.stats.submitted,
                "completed": self.stats.completed,
                "failed": self.stats.failed,
                "deferred": self.stats.deferred,
                "waves": self.stats.waves,
                "batched_queries": self.stats.batched_queries,
                "regenerated_queries": self.stats.regenerated_queries,
                "llm_requests": self.stats.llm_requests,
                "per_project": {
                    name: asdict(project_stats)
                    for name, project_stats in self.stats.per_project.items()
                },
            }
        return state

    def restore_state(self, state: dict, llm_factory: LLMFactory | None = None) -> None:
        """Replace this service's state with a snapshot's (warm start)."""
        self._default_project = state["default_project"]
        self._next_job_id = int(state["next_job_id"])
        self._queue = [AnnotationJob(**job) for job in state["queue"]]
        self.quarantine = [
            CompletedJob(
                job=AnnotationJob(**item["job"]),
                record=None,
                error=item["error"],
                error_type=item.get("error_type", ""),
                traceback=item.get("traceback", ""),
            )
            for item in state["quarantine"]
        ]
        self._pending_by_project = {}
        for job in self._queue:
            self._pending_by_project[job.project] = (
                self._pending_by_project.get(job.project, 0) + 1
            )
        self._pipelines = {}
        for name, pipeline_state in state["projects"].items():
            llm = llm_factory(name) if llm_factory is not None else None
            pipeline = restore_pipeline_state(name, pipeline_state, llm=llm)
            pipeline.attach_telemetry(self.telemetry)
            self._pipelines[name] = pipeline
        self.stats = ServiceStats()
        stats = state.get("stats")
        if stats:
            self.stats.submitted = int(stats["submitted"])
            self.stats.completed = int(stats["completed"])
            self.stats.failed = int(stats["failed"])
            self.stats.deferred = int(stats.get("deferred", 0))
            self.stats.waves = int(stats["waves"])
            self.stats.batched_queries = int(stats["batched_queries"])
            self.stats.regenerated_queries = int(stats["regenerated_queries"])
            self.stats.llm_requests = int(stats.get("llm_requests", 0))
            for name, entry in stats.get("per_project", {}).items():
                self.stats.per_project[name] = ProjectStats(
                    submitted=int(entry["submitted"]),
                    completed=int(entry["completed"]),
                    failed=int(entry["failed"]),
                    deferred=int(entry.get("deferred", 0)),
                )

    @classmethod
    def recover(
        cls,
        journal_path: str | Path,
        snapshots: SnapshotManager | None = None,
        default_project: str = "default",
        fsync: str = "batch",
        snapshot_every: int = 0,
        llm_factory: LLMFactory | None = None,
        max_concurrency: int = 1,
        telemetry: Telemetry | None = None,
    ) -> "AnnotationService":
        """Rebuild a service from its journal (and snapshots) and go live.

        Opening the journal heals any torn tail first; when a snapshot store
        is supplied, the newest intact snapshot at or below the journal's
        valid prefix warm-starts the state and only the journal *suffix* is
        replayed.  The returned service has the journal attached and is ready
        for new submits/drains.  Works on a fresh (empty or absent) journal
        too, so it doubles as the "open durable service" entry point.
        """
        journal = EventJournal(journal_path, fsync=fsync)
        service = cls(
            default_project=default_project,
            max_concurrency=max_concurrency,
            telemetry=telemetry,
        )
        start = 0
        if snapshots is not None:
            loaded = snapshots.latest(max_offset=journal.record_count)
            if loaded is not None:
                start, snapshot_state = loaded
                service.restore_state(snapshot_state, llm_factory=llm_factory)
        for event in journal.events(start):
            service._replay_event(event, llm_factory=llm_factory)
        service.attach_journal(journal, snapshots=snapshots, snapshot_every=snapshot_every)
        return service

    @classmethod
    def open_durable(
        cls,
        directory: str | Path,
        default_project: str = "default",
        fsync: str = "batch",
        snapshot_every: int = 0,
        keep_snapshots: int = 3,
        llm_factory: LLMFactory | None = None,
        max_concurrency: int = 1,
        telemetry: Telemetry | None = None,
    ) -> "AnnotationService":
        """Open (creating or recovering) a durable service rooted at a directory.

        Layout: ``<directory>/journal.bin`` plus ``<directory>/snapshots/``.
        """
        directory = Path(directory)
        snapshots = SnapshotManager(directory / "snapshots", keep=keep_snapshots)
        return cls.recover(
            directory / "journal.bin",
            snapshots=snapshots,
            default_project=default_project,
            fsync=fsync,
            snapshot_every=snapshot_every,
            llm_factory=llm_factory,
            max_concurrency=max_concurrency,
            telemetry=telemetry,
        )

    def _replay_event(
        self, event: JournalEvent, llm_factory: LLMFactory | None = None
    ) -> None:
        """Re-apply one journaled event to the in-memory state.

        Replay never calls the LLM: committed annotations carry their record,
        feedback and archived example verbatim, and re-applying them in
        journal order reproduces the live state bit-for-bit (same example
        ids, same embedding statistics, same feedback history/revision).
        """
        payload = event.payload
        if event.type == PROJECT_REGISTERED:
            name = payload["project"]
            if name in self._pipelines:  # covered by the snapshot already
                return
            llm = llm_factory(name) if llm_factory is not None else None
            pipeline = AnnotationPipeline(
                schema=schema_from_state(payload["schema"]),
                config=TaskConfig.from_dict(payload["config"]),
                llm=llm,
                dataset_name=name,
            )
            pipeline.attach_telemetry(self.telemetry)
            self._pipelines[name] = pipeline
        elif event.type == JOB_SUBMITTED:
            job = AnnotationJob(
                job_id=payload["job_id"],
                project=payload["project"],
                sql=payload["sql"],
                query_id=payload["query_id"],
                priority=payload.get("priority", 0),
            )
            self._queue.append(job)
            self._pending_by_project[job.project] = (
                self._pending_by_project.get(job.project, 0) + 1
            )
            self._next_job_id = max(self._next_job_id, job.job_id + 1)
            self.stats.note_submitted(job.project)
        elif event.type == ANNOTATION_COMMITTED:
            pipeline = self._require_pipeline(payload["project"], event)
            record_state = payload["record"]
            # Reproduce the session-state mutation exactly as the live
            # commit did: history, knowledge, priorities, revision.
            pipeline.feedback_loop.apply(
                list(record_state["candidates"]), Feedback.from_state(payload["feedback"])
            )
            pipeline._counter += 1
            pipeline.annotations.append(AnnotationRecord(**record_state))
            example = payload["example"]
            if example is not None:
                pipeline.retriever.example_store.add(
                    example["sql"],
                    example["nl"],
                    dataset=example["dataset"],
                    tables=list(example["tables"]),
                    quality=example["quality"],
                )
            if payload["job_id"] is not None:
                self._settle_job(payload["job_id"])
                self.stats.note_completed(payload["project"])
        elif event.type == FEEDBACK_APPLIED:
            pipeline = self._require_pipeline(payload["project"], event)
            pipeline.feedback_loop.apply(
                list(payload["candidates"]), Feedback.from_state(payload["feedback"])
            )
        elif event.type == JOB_FAILED:
            self._settle_job(payload["job_id"])
            job = AnnotationJob(
                job_id=payload["job_id"],
                project=payload["project"],
                sql=payload["sql"],
                query_id=payload["query_id"],
            )
            self.quarantine.append(
                CompletedJob(
                    job=job,
                    record=None,
                    error=payload["error"],
                    # Old journals predate the detail fields; tolerate both.
                    error_type=payload.get("error_type", ""),
                    traceback=payload.get("traceback", ""),
                )
            )
            self.stats.note_failed(payload["project"])
        elif event.type == DRAIN_STATS:
            self.stats.note_drain(
                payload["waves"],
                payload["batched_queries"],
                payload["regenerated_queries"],
                payload.get("llm_requests", 0),
            )
        else:
            raise JournalError(
                f"cannot replay unknown event type {event.type!r} "
                f"at journal offset {event.offset}"
            )

    def _require_pipeline(self, name: str, event: JournalEvent) -> AnnotationPipeline:
        if name not in self._pipelines:
            raise JournalError(
                f"journal offset {event.offset} references unregistered "
                f"project {name!r}; the journal prefix is incomplete"
            )
        return self._pipelines[name]

    def _settle_job(self, job_id: int) -> None:
        """Drop a journal-settled job from the pending queue (idempotent)."""
        for index, job in enumerate(self._queue):
            if job.job_id == job_id:
                del self._queue[index]
                remaining = self._pending_by_project.get(job.project, 0) - 1
                self._pending_by_project[job.project] = max(0, remaining)
                break
