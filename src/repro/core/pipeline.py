"""The BenchPress annotation loop (paper §4.1, steps 3.5–7).

For each SQL query the pipeline:

1. optionally *decomposes* nested queries into CTE-style logical units,
2. *retrieves* context — similar prior annotations and the relevant schema
   tables,
3. *generates* candidate NL descriptions with the configured (simulated) LLM,
4. optionally *recomposes* per-unit descriptions into one explanation,
5. applies *human feedback* (accept/edit/rewrite/discard, priorities,
   domain knowledge),
6. records accepted annotations — both into the export set and into the
   example store so later queries retrieve them (the growing-archive effect
   the paper describes).

Bulk annotation (:meth:`AnnotationPipeline.annotate_many`) runs as a *wave
scheduler*: queries are parsed and decomposed up front, retrieval for a wave
is one vectorized pass, generation for the wave is one batched LLM call, and
feedback/commit then runs per query in order.  Because committing an accepted
annotation can change what the *next* query in the same wave would have
retrieved, each query's prompts are re-validated against the live store at
commit time and regenerated individually when stale — so the batched path
produces bit-identical annotations to a sequential loop while spending far
fewer LLM round trips, and the paper's growing-archive effect is preserved
exactly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.config import TaskConfig
from repro.core.feedback import Feedback, FeedbackAction, FeedbackLoop
from repro.core.journal import ANNOTATION_COMMITTED, FEEDBACK_APPLIED, EventJournal
from repro.errors import PipelineError
from repro.llm.base import LLMClient
from repro.llm.prompts import Prompt, PromptBuilder
from repro.llm.resilience import Deadline
from repro.llm.simulated import SimulatedLLM
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.retrieval.retriever import ContextRetriever, RetrievedContext
from repro.schema.model import DatabaseSchema
from repro.sql.analyzer import is_nested
from repro.sql.decompose import DecompositionResult, decompose
from repro.sql.parser import parse_select
from repro.sql.recompose import recompose


@dataclass
class CandidateSet:
    """Candidates generated for one query, plus the context that produced them."""

    sql: str
    candidates: list[str]
    dataset: str = ""
    prompt: Prompt | None = None
    context: RetrievedContext | None = None
    decomposition: DecompositionResult | None = None
    unit_candidates: dict[str, list[str]] = field(default_factory=dict)
    model_name: str = ""

    @property
    def was_decomposed(self) -> bool:
        """Whether the nested-query decomposition path was taken."""
        return self.decomposition is not None and self.decomposition.was_nested


@dataclass
class WaveStats:
    """Accounting for one :meth:`AnnotationPipeline.annotate_many` run."""

    queries: int = 0
    waves: int = 0
    batched_queries: int = 0
    regenerated_queries: int = 0
    llm_requests: int = 0

    @property
    def fixup_rate(self) -> float:
        """Fraction of queries whose batched prompts went stale mid-wave."""
        return self.regenerated_queries / self.queries if self.queries else 0.0


@dataclass
class _WaveItem:
    """One query's in-flight state inside a wave."""

    sql: str
    query_id: str | None
    decomposition: DecompositionResult | None
    unit_names: list[str | None]  # None = whole-query (flat) unit
    unit_sqls: list[str]
    commit_tag: object = None  # opaque caller tag journaled with the commit
    unit_asts: list[object | None] = field(default_factory=list)
    contexts: list[RetrievedContext | None] = field(default_factory=list)
    prompts: list[Prompt] = field(default_factory=list)
    candidate_lists: list[list[str]] = field(default_factory=list)


@dataclass
class AnnotationRecord:
    """One accepted (or discarded) annotation."""

    query_id: str
    sql: str
    nl: str
    dataset: str = ""
    accepted: bool = True
    action: str = FeedbackAction.ACCEPT.value
    candidates: list[str] = field(default_factory=list)
    was_decomposed: bool = False
    model_name: str = ""


class AnnotationPipeline:
    """Drives the annotation loop for one project/dataset."""

    def __init__(
        self,
        schema: DatabaseSchema,
        config: TaskConfig | None = None,
        llm: LLMClient | None = None,
        retriever: ContextRetriever | None = None,
        feedback_loop: FeedbackLoop | None = None,
        dataset_name: str = "",
    ) -> None:
        self.config = config or TaskConfig()
        self.config.validate()
        self.schema = schema
        self.dataset_name = dataset_name
        self.feedback_loop = feedback_loop or FeedbackLoop()
        self.retriever = retriever or ContextRetriever(
            schema, top_k_examples=self.config.top_k_examples
        )
        self.llm = llm or SimulatedLLM(
            self.config.model_name, schema=schema, knowledge=self.feedback_loop.knowledge
        )
        self._prompt_builder = PromptBuilder(
            num_candidates=self.config.num_candidates,
            max_examples=self.config.top_k_examples,
        )
        self.annotations: list[AnnotationRecord] = []
        self.last_run_stats = WaveStats()
        self._counter = 0
        self._retry_policy = self.config.retry_policy()
        # Jitter salt for LLM retry backoff: keyed by project so concurrent
        # tenants hitting the same transient error don't retry in lockstep.
        self._retry_salt = dataset_name
        #: Per-pipeline circuit breaker guarding this project's LLM calls
        #: (``None`` unless ``TaskConfig.breaker_enabled``).  Breaker state is
        #: process-local: a recovered service starts with a closed breaker.
        self.breaker = self.config.circuit_breaker(
            on_transition=self._note_breaker_transition
        )
        self._hedge = self.config.hedge_policy()
        self._journal: EventJournal | None = None
        self._journal_project = dataset_name
        #: Observability sink; no-op unless a service injects a live one.
        self.telemetry: Telemetry = NULL_TELEMETRY

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------

    def attach_journal(self, journal: EventJournal | None, project: str | None = None) -> None:
        """Start (or stop, with ``None``) journaling this pipeline's commits.

        Every record produced by :meth:`submit_feedback` — and the example it
        commits to the archive, and the feedback that produced it — is
        appended to the journal as one atomic ``annotation_committed`` event;
        feedback that produces no record (regeneration requests) is journaled
        as ``feedback_applied``.  Must not be attached while a replay is
        rebuilding this pipeline, or events would be journaled twice.
        """
        self._journal = journal
        if project is not None:
            self._journal_project = project

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def attach_telemetry(self, telemetry: Telemetry) -> None:
        """Propagate one telemetry sink through this pipeline's components.

        Covers the LLM client (call/retry/backoff accounting) and the example
        archive's vector store (search accounting) in addition to the
        pipeline itself; passing :data:`~repro.obs.NULL_TELEMETRY` detaches.
        """
        self.telemetry = telemetry
        self.llm.telemetry = telemetry
        self.retriever.example_store.attach_telemetry(telemetry)

    def _note_breaker_transition(self, old_state: str, new_state: str) -> None:
        """Telemetry callback for circuit-breaker state changes."""
        tel = self.telemetry
        if tel.enabled:
            tel.count(
                "llm_breaker_transitions_total",
                model=self.llm.name,
                project=self.dataset_name,
                **{"from": old_state, "to": new_state},
            )
            tel.event(
                "breaker_transition",
                project=self.dataset_name,
                model=self.llm.name,
                **{"from": old_state, "to": new_state},
            )

    # ------------------------------------------------------------------
    # candidate generation (steps 3.5 - 5.5)
    # ------------------------------------------------------------------

    def generate_candidates(self, sql: str, query_id: str | None = None) -> CandidateSet:
        """Run decomposition, retrieval and LLM generation for one query."""
        sql = sql.strip().rstrip(";")
        if not sql:
            raise PipelineError("cannot annotate an empty SQL string")
        select = parse_select(sql)

        use_decomposition = self.config.decomposition_enabled and is_nested(select)
        decomposition = decompose(select) if use_decomposition else None

        if decomposition is not None and decomposition.was_nested:
            candidates, unit_candidates = self._generate_decomposed(decomposition)
        else:
            candidates = self._generate_flat(sql)
            unit_candidates = {}

        context = self._retrieve(sql)
        prompt = self._build_prompt(sql, context)
        return CandidateSet(
            sql=sql,
            candidates=candidates,
            dataset=self.dataset_name,
            prompt=prompt,
            context=context,
            decomposition=decomposition,
            unit_candidates=unit_candidates,
            model_name=self.llm.name,
        )

    def _retrieve(self, sql: str) -> RetrievedContext | None:
        if not self.config.rag_enabled:
            return None
        return self.retriever.retrieve(sql, dataset=self.dataset_name or None)

    def _build_prompt(
        self, sql: str, context: RetrievedContext | None, ast: object | None = None
    ) -> Prompt:
        knowledge = (
            self.feedback_loop.knowledge if self.config.knowledge_feedback_enabled else None
        )
        return self._prompt_builder.build(
            sql,
            context=context,
            knowledge=knowledge,
            priorities=self.feedback_loop.priorities,
            ast=ast,
        )

    def _generate_flat(self, sql: str, deadline: Deadline | None = None) -> list[str]:
        context = self._retrieve(sql)
        prompt = self._build_prompt(sql, context)
        return self.llm.generate_with_retry(
            prompt,
            self._retry_policy,
            salt=self._retry_salt,
            deadline=deadline,
            breaker=self.breaker,
            hedge=self._hedge,
        ).candidates

    def _generate_decomposed(
        self, decomposition: DecompositionResult, deadline: Deadline | None = None
    ) -> tuple[list[str], dict[str, list[str]]]:
        unit_candidates: dict[str, list[str]] = {}
        for unit in decomposition.units:
            context = self._retrieve(unit.sql)
            prompt = self._build_prompt(unit.sql, context)
            unit_candidates[unit.name] = self.llm.generate_with_retry(
                prompt,
                self._retry_policy,
                salt=self._retry_salt,
                deadline=deadline,
                breaker=self.breaker,
                hedge=self._hedge,
            ).candidates
        return self._merge_unit_candidates(decomposition, unit_candidates), unit_candidates

    def _merge_unit_candidates(
        self, decomposition: DecompositionResult, unit_candidates: dict[str, list[str]]
    ) -> list[str]:
        """Recompose per-unit candidate descriptions into whole-query ones."""
        merged: list[str] = []
        for candidate_index in range(self.config.num_candidates):
            descriptions = {
                name: candidates[min(candidate_index, len(candidates) - 1)]
                for name, candidates in unit_candidates.items()
                if candidates
            }
            merged_text = recompose(decomposition, descriptions).text
            if merged_text not in merged:
                merged.append(merged_text)
        return merged

    # ------------------------------------------------------------------
    # feedback + acceptance (steps 6 - 7)
    # ------------------------------------------------------------------

    def submit_feedback(
        self,
        candidate_set: CandidateSet,
        feedback: Feedback,
        query_id: str | None = None,
        commit_tag: object = None,
    ) -> AnnotationRecord | None:
        """Apply annotator feedback; returns the record when one is produced.

        ``None`` is returned when the feedback asks for regeneration (call
        :meth:`generate_candidates` again — the new priorities and knowledge
        are already folded into the session).

        This is the pipeline's durability commit point: with a journal
        attached, the produced record, the example it adds to the archive and
        the feedback that shaped it are appended as *one* atomic event, so a
        crash either persists the whole commit or none of it.  ``commit_tag``
        is an opaque caller token (the service passes job ids) embedded in the
        event so replay can settle queue bookkeeping.
        """
        outcome = self.feedback_loop.apply(candidate_set.candidates, feedback)
        if outcome.needs_regeneration:
            if self._journal is not None:
                self._journal.append(
                    FEEDBACK_APPLIED,
                    {
                        "project": self._journal_project,
                        "feedback": feedback.to_state(),
                        "candidates": list(candidate_set.candidates),
                    },
                )
            return None

        self._counter += 1
        record = AnnotationRecord(
            query_id=query_id or f"{(self.dataset_name or 'query').lower()}-{self._counter:05d}",
            sql=candidate_set.sql,
            nl=outcome.final_text or "",
            dataset=self.dataset_name,
            accepted=outcome.accepted,
            action=outcome.action.value,
            candidates=list(candidate_set.candidates),
            was_decomposed=candidate_set.was_decomposed,
            model_name=candidate_set.model_name,
        )
        self.annotations.append(record)

        example = None
        if outcome.accepted and self.config.auto_accept_into_examples and record.nl:
            example = self.retriever.record_annotation(
                record.sql, record.nl, dataset=self.dataset_name
            )
        if self._journal is not None:
            # Shallow dicts, not dataclasses.asdict: the payload is consumed
            # by json.dumps before anything can mutate it, and asdict's
            # recursive deep copy is measurable on this per-commit path.
            self._journal.append(
                ANNOTATION_COMMITTED,
                {
                    "project": self._journal_project,
                    "job_id": commit_tag,
                    "record": vars(record),
                    "feedback": feedback.to_state(),
                    "example": vars(example) if example is not None else None,
                },
            )
        return record

    def annotate(
        self,
        sql: str,
        feedback: Feedback | None = None,
        query_id: str | None = None,
        commit_tag: object = None,
    ) -> AnnotationRecord:
        """Convenience: generate candidates and apply feedback in one call.

        Without explicit feedback the top-ranked candidate is accepted, which
        is the "annotator agrees with the first suggestion" fast path.
        """
        candidate_set = self.generate_candidates(sql, query_id=query_id)
        feedback = feedback or Feedback(action=FeedbackAction.ACCEPT, selected_index=0)
        record = self.submit_feedback(
            candidate_set, feedback, query_id=query_id, commit_tag=commit_tag
        )
        if record is None:
            # A regeneration request with no follow-up: accept the refreshed top candidate.
            candidate_set = self.generate_candidates(sql, query_id=query_id)
            record = self.submit_feedback(
                candidate_set, Feedback(action=FeedbackAction.ACCEPT, selected_index=0),
                query_id=query_id, commit_tag=commit_tag,
            )
        assert record is not None
        return record

    def annotate_many(
        self,
        statements: list[str],
        query_ids: list[str | None] | None = None,
        batch_size: int | None = None,
        commit_tags: list | None = None,
    ) -> list[AnnotationRecord]:
        """Annotate SQL statements in batched waves with accept-top feedback.

        The statements are processed in waves of up to ``batch_size``
        (defaulting to :attr:`TaskConfig.batch_size`): each wave is parsed
        and decomposed up front, retrieval runs as one vectorized pass,
        generation is one batched LLM call, then feedback and example-store
        commits run per query in submission order.  Prompts invalidated by an
        intra-wave commit are regenerated individually, so the records are
        identical to a sequential loop of :meth:`annotate` calls.

        While the example archive is cold, nearly every commit changes what
        the next query retrieves, so large speculative waves would be wasted:
        wave sizes ramp geometrically from 1 until the archive holds at least
        a full retrieval window, after which waves start at full size (so
        repeated incremental drains on a warm pipeline stay fully batched).
        """
        run = self.wave_run(
            statements, query_ids=query_ids, batch_size=batch_size, commit_tags=commit_tags
        )
        while not run.done:
            run.run_next_wave()
        run.finish()
        return run.records

    def wave_run(
        self,
        statements: list[str],
        query_ids: list[str | None] | None = None,
        batch_size: int | None = None,
        commit_tags: list | None = None,
        deadline: Deadline | None = None,
    ) -> "WaveRun":
        """An incremental :class:`WaveRun` over these statements.

        :meth:`annotate_many` is exactly ``wave_run(...)`` driven to
        completion in a loop; the concurrent multi-project scheduler instead
        interleaves ``run_next_wave`` calls from several projects' runs, one
        wave per project per round, which is what makes drains fair *and*
        bit-identical per project.  A ``deadline`` is carried into every
        wave's LLM calls, shrinking their timeouts as the budget runs down.
        """
        return WaveRun(
            self,
            statements,
            query_ids=query_ids,
            batch_size=batch_size,
            commit_tags=commit_tags,
            deadline=deadline,
        )

    def _run_wave(
        self,
        statements: list[str],
        query_ids: list[str | None],
        stats: WaveStats,
        commit_tags: list | None = None,
        deadline: Deadline | None = None,
    ) -> list[AnnotationRecord]:
        if commit_tags is None:
            commit_tags = [None] * len(statements)
        tel = self.telemetry
        with tel.span(
            "pipeline.wave", project=self.dataset_name, size=len(statements)
        ):
            return self._run_wave_body(
                statements, query_ids, stats, commit_tags, tel, deadline
            )

    def _run_wave_body(
        self,
        statements: list[str],
        query_ids: list[str | None],
        stats: WaveStats,
        commit_tags: list,
        tel: Telemetry,
        deadline: Deadline | None = None,
    ) -> list[AnnotationRecord]:
        # Phase 1 — parse and decompose every statement in the wave.
        items: list[_WaveItem] = []
        for sql, query_id, commit_tag in zip(statements, query_ids, commit_tags):
            sql = sql.strip().rstrip(";")
            if not sql:
                raise PipelineError("cannot annotate an empty SQL string")
            select = parse_select(sql)
            decomposition = (
                decompose(select)
                if self.config.decomposition_enabled and is_nested(select)
                else None
            )
            if decomposition is not None and decomposition.was_nested:
                unit_names: list[str | None] = [unit.name for unit in decomposition.units]
                unit_sqls = [unit.sql for unit in decomposition.units]
                unit_asts: list[object | None] = [None] * len(unit_sqls)
            else:
                decomposition = None
                unit_names = [None]
                unit_sqls = [sql]
                unit_asts = [select]  # phase-1 parse reused downstream
            items.append(
                _WaveItem(
                    sql=sql,
                    query_id=query_id,
                    decomposition=decomposition,
                    unit_names=unit_names,
                    unit_sqls=unit_sqls,
                    commit_tag=commit_tag,
                    unit_asts=unit_asts,
                )
            )

        # Phase 2 — one vectorized retrieval pass over every generation unit.
        all_unit_sqls = [unit_sql for item in items for unit_sql in item.unit_sqls]
        all_unit_asts = [unit_ast for item in items for unit_ast in item.unit_asts]
        store_version = self.retriever.example_store.version
        if self.config.rag_enabled:
            contexts = self.retriever.retrieve_batch(
                all_unit_sqls, dataset=self.dataset_name or None, asts=all_unit_asts
            )
        else:
            contexts = [None] * len(all_unit_sqls)
        prompts = [
            self._build_prompt(unit_sql, context, ast=unit_ast)
            for unit_sql, context, unit_ast in zip(all_unit_sqls, contexts, all_unit_asts)
        ]

        # Phase 3 — one batched generation call for the whole wave.
        llm_started = time.perf_counter() if tel.enabled else 0.0
        results = self.llm.generate_batch_with_retry(
            prompts,
            self._retry_policy,
            salt=self._retry_salt,
            deadline=deadline,
            breaker=self.breaker,
            hedge=self._hedge,
        )
        if tel.enabled:
            tel.observe(
                "pipeline_wave_llm_seconds",
                time.perf_counter() - llm_started,
                project=self.dataset_name,
                model=self.llm.name,
            )
        cursor = 0
        for item in items:
            item.contexts = contexts[cursor : cursor + len(item.unit_sqls)]
            item.prompts = prompts[cursor : cursor + len(item.unit_sqls)]
            item.candidate_lists = [
                result.candidates for result in results[cursor : cursor + len(item.unit_sqls)]
            ]
            cursor += len(item.unit_sqls)

        # Phase 4 — feedback and commit, per query in submission order.  The
        # example store grows as annotations are accepted, so each query's
        # prompts are validated against the live store first.
        feedback_revision = self.feedback_loop.revision
        records: list[AnnotationRecord] = []
        for item in items:
            candidate_set = self._commit_candidate_set(
                item, stats, feedback_revision, store_version, deadline
            )
            record = self.submit_feedback(
                candidate_set,
                Feedback(action=FeedbackAction.ACCEPT, selected_index=0),
                query_id=item.query_id,
                commit_tag=item.commit_tag,
            )
            assert record is not None  # ACCEPT feedback never asks to regenerate
            records.append(record)
        return records

    def _commit_candidate_set(
        self,
        item: _WaveItem,
        stats: WaveStats,
        feedback_revision: int,
        store_version: int,
        deadline: Deadline | None = None,
    ) -> CandidateSet:
        """Reuse the wave's batched candidates when still valid, else redo.

        A batched prompt is stale when an annotation committed earlier in the
        wave changed what retrieval (or session guidance) now produces for
        it.  Validation is tiered:

        * a feedback-revision bump (new knowledge/priorities) always
          invalidates,
        * with RAG disabled, or an example store untouched since the wave's
          retrieval pass, nothing can have drifted, so the wave result
          stands,
        * an LLM that reads example *content*
          (:attr:`~repro.llm.base.LLMClient.example_content_sensitive`)
          requires the freshly-rebuilt prompts to match the batched ones
          exactly,
        * the simulated models only consume the example *count*, so a cheap
          ranked-count probe suffices.

        Stale queries regenerate against fresh retrieval, reproducing the
        sequential path bit-for-bit.
        """
        stale = self.feedback_loop.revision != feedback_revision
        fresh_contexts: list[RetrievedContext | None] | None = None
        fresh_prompts: list[Prompt] | None = None
        if (
            not stale
            and self.config.rag_enabled
            and self.retriever.example_store.version != store_version
        ):
            if getattr(self.llm, "example_content_sensitive", True):
                fresh_contexts = [self._retrieve(unit_sql) for unit_sql in item.unit_sqls]
                fresh_prompts = [
                    self._build_prompt(unit_sql, context)
                    for unit_sql, context in zip(item.unit_sqls, fresh_contexts)
                ]
                stale = fresh_prompts != item.prompts
            else:
                dataset = self.dataset_name or None
                stale = any(
                    self.retriever.example_count(unit_sql, dataset=dataset)
                    != len(prompt.examples)
                    for unit_sql, prompt in zip(item.unit_sqls, item.prompts)
                )

        if stale:
            stats.regenerated_queries += 1
            return self._regenerate(item, fresh_contexts, fresh_prompts, deadline)

        stats.batched_queries += 1
        if item.decomposition is not None:
            unit_candidates = {
                name: candidates
                for name, candidates in zip(item.unit_names, item.candidate_lists)
            }
            candidates = self._merge_unit_candidates(item.decomposition, unit_candidates)
        else:
            unit_candidates = {}
            candidates = item.candidate_lists[0]
        return CandidateSet(
            sql=item.sql,
            candidates=candidates,
            dataset=self.dataset_name,
            prompt=item.prompts[0] if item.decomposition is None else None,
            context=item.contexts[0] if item.decomposition is None else None,
            decomposition=item.decomposition,
            unit_candidates=unit_candidates,
            model_name=self.llm.name,
        )

    def _regenerate(
        self,
        item: _WaveItem,
        fresh_contexts: list[RetrievedContext | None] | None,
        fresh_prompts: list[Prompt] | None,
        deadline: Deadline | None = None,
    ) -> CandidateSet:
        """Sequential-equivalent regeneration of one stale wave item.

        Uses the fresh contexts/prompts computed during validation when
        available so retrieval is not repeated.
        """
        if fresh_contexts is None or fresh_prompts is None:
            fresh_contexts = [self._retrieve(unit_sql) for unit_sql in item.unit_sqls]
            fresh_prompts = [
                self._build_prompt(unit_sql, context)
                for unit_sql, context in zip(item.unit_sqls, fresh_contexts)
            ]
        if item.decomposition is not None:
            unit_candidates = {
                name: self.llm.generate_with_retry(
                    prompt,
                    self._retry_policy,
                    salt=self._retry_salt,
                    deadline=deadline,
                    breaker=self.breaker,
                    hedge=self._hedge,
                ).candidates
                for name, prompt in zip(item.unit_names, fresh_prompts)
            }
            candidates = self._merge_unit_candidates(item.decomposition, unit_candidates)
            context = self._retrieve(item.sql)
            prompt = self._build_prompt(item.sql, context)
        else:
            unit_candidates = {}
            candidates = self.llm.generate_with_retry(
                fresh_prompts[0],
                self._retry_policy,
                salt=self._retry_salt,
                deadline=deadline,
                breaker=self.breaker,
                hedge=self._hedge,
            ).candidates
            context = fresh_contexts[0]
            prompt = fresh_prompts[0]
        return CandidateSet(
            sql=item.sql,
            candidates=candidates,
            dataset=self.dataset_name,
            prompt=prompt,
            context=context,
            decomposition=item.decomposition,
            unit_candidates=unit_candidates,
            model_name=self.llm.name,
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def accepted_annotations(self) -> list[AnnotationRecord]:
        """Annotations that were accepted (not discarded)."""
        return [record for record in self.annotations if record.accepted]

    @property
    def example_count(self) -> int:
        """Number of examples currently available for retrieval."""
        return len(self.retriever.example_store)


class WaveRun:
    """Resumable wave-at-a-time driver for one pipeline's batched annotation.

    Holds the cursor, the geometric wave-size ramp and the accumulated
    records/stats of an :meth:`AnnotationPipeline.annotate_many` run, but
    advances only when :meth:`run_next_wave` is called.  Driving a run to
    completion in a tight loop reproduces ``annotate_many`` exactly; the
    multi-project scheduler instead calls ``run_next_wave`` once per round on
    every tenant's run, so independent projects' waves overlap on the LLM
    boundary while each project still sees its own waves strictly in order —
    the per-project record stream is bit-identical either way.

    A ``WaveRun`` must only ever be advanced by one thread at a time (the
    scheduler guarantees this by never submitting a project's next wave until
    its previous one returned).
    """

    def __init__(
        self,
        pipeline: AnnotationPipeline,
        statements: list[str],
        query_ids: list[str | None] | None = None,
        batch_size: int | None = None,
        commit_tags: list | None = None,
        deadline: Deadline | None = None,
    ) -> None:
        if query_ids is not None and len(query_ids) != len(statements):
            raise PipelineError("query_ids must align with statements")
        if commit_tags is not None and len(commit_tags) != len(statements):
            raise PipelineError("commit_tags must align with statements")
        wave_size = batch_size if batch_size is not None else pipeline.config.batch_size
        if wave_size < 1:
            raise PipelineError("batch_size must be at least 1")
        self.pipeline = pipeline
        #: Drain budget carried into every wave's LLM calls (``None`` = none).
        self.deadline = deadline
        self._statements = list(statements)
        self._query_ids = list(query_ids) if query_ids is not None else None
        self._commit_tags = list(commit_tags) if commit_tags is not None else None
        self._wave_size = wave_size
        self.stats = WaveStats(queries=len(self._statements))
        self.records: list[AnnotationRecord] = []
        self._start = 0
        self._requests_before = pipeline.llm.usage.requests
        archive_warm = (
            len(pipeline.retriever.example_store) >= pipeline.config.top_k_examples + 5
        )
        self._size = wave_size if archive_warm else 1
        self._finished = False
        # Monotonic end time of the previous wave; the gap to the next
        # wave's start is the run's scheduler queue wait.
        self._last_advance: float | None = None

    @property
    def done(self) -> bool:
        """Whether every statement has been committed."""
        return self._start >= len(self._statements)

    @property
    def pending(self) -> int:
        """Statements not yet committed."""
        return len(self._statements) - self._start

    def run_next_wave(self) -> list[AnnotationRecord]:
        """Advance one wave (parse → retrieve → generate → commit).

        Returns the records the wave committed (empty when already done).
        Finishing the last wave finalises the run's stats automatically.
        """
        if self.done:
            self.finish()
            return []
        start, size = self._start, self._size
        wave_statements = self._statements[start : start + size]
        wave_ids = (
            self._query_ids[start : start + size]
            if self._query_ids is not None
            else [None] * len(wave_statements)
        )
        wave_tags = (
            self._commit_tags[start : start + size]
            if self._commit_tags is not None
            else [None] * len(wave_statements)
        )
        tel = self.pipeline.telemetry
        if tel.enabled:
            now = time.perf_counter()
            if self._last_advance is not None:
                tel.observe(
                    "pipeline_wave_queue_wait_seconds",
                    now - self._last_advance,
                    project=self.pipeline.dataset_name,
                )
            tel.observe_size(
                "pipeline_wave_size",
                len(wave_statements),
                project=self.pipeline.dataset_name,
            )
        wave_records = self.pipeline._run_wave(
            wave_statements, wave_ids, self.stats, wave_tags, deadline=self.deadline
        )
        if tel.enabled:
            self._last_advance = time.perf_counter()
        self.stats.waves += 1
        self._start += len(wave_statements)
        self._size = min(self._wave_size, size * 2)
        self.records.extend(wave_records)
        if self.done:
            self.finish()
        return wave_records

    def finish(self) -> None:
        """Finalise run accounting and publish it as the pipeline's last run.

        Idempotent.  ``llm_requests`` is the request-counter delta over this
        run; with a dedicated client per project (the default) it is exact,
        while a client *shared* across concurrently-drained projects reports
        the requests observed in this run's window.
        """
        if self._finished:
            return
        self._finished = True
        self.stats.llm_requests = self.pipeline.llm.usage.requests - self._requests_before
        self.pipeline.last_run_stats = self.stats
