"""The BenchPress annotation loop (paper §4.1, steps 3.5–7).

For each SQL query the pipeline:

1. optionally *decomposes* nested queries into CTE-style logical units,
2. *retrieves* context — similar prior annotations and the relevant schema
   tables,
3. *generates* candidate NL descriptions with the configured (simulated) LLM,
4. optionally *recomposes* per-unit descriptions into one explanation,
5. applies *human feedback* (accept/edit/rewrite/discard, priorities,
   domain knowledge),
6. records accepted annotations — both into the export set and into the
   example store so later queries retrieve them (the growing-archive effect
   the paper describes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import TaskConfig
from repro.core.feedback import Feedback, FeedbackAction, FeedbackLoop
from repro.errors import PipelineError
from repro.llm.base import LLMClient
from repro.llm.prompts import Prompt, PromptBuilder
from repro.llm.simulated import SimulatedLLM
from repro.retrieval.retriever import ContextRetriever, RetrievedContext
from repro.schema.model import DatabaseSchema
from repro.sql.analyzer import is_nested
from repro.sql.decompose import DecompositionResult, decompose
from repro.sql.parser import parse_select
from repro.sql.recompose import recompose


@dataclass
class CandidateSet:
    """Candidates generated for one query, plus the context that produced them."""

    sql: str
    candidates: list[str]
    dataset: str = ""
    prompt: Prompt | None = None
    context: RetrievedContext | None = None
    decomposition: DecompositionResult | None = None
    unit_candidates: dict[str, list[str]] = field(default_factory=dict)
    model_name: str = ""

    @property
    def was_decomposed(self) -> bool:
        """Whether the nested-query decomposition path was taken."""
        return self.decomposition is not None and self.decomposition.was_nested


@dataclass
class AnnotationRecord:
    """One accepted (or discarded) annotation."""

    query_id: str
    sql: str
    nl: str
    dataset: str = ""
    accepted: bool = True
    action: str = FeedbackAction.ACCEPT.value
    candidates: list[str] = field(default_factory=list)
    was_decomposed: bool = False
    model_name: str = ""


class AnnotationPipeline:
    """Drives the annotation loop for one project/dataset."""

    def __init__(
        self,
        schema: DatabaseSchema,
        config: TaskConfig | None = None,
        llm: LLMClient | None = None,
        retriever: ContextRetriever | None = None,
        feedback_loop: FeedbackLoop | None = None,
        dataset_name: str = "",
    ) -> None:
        self.config = config or TaskConfig()
        self.config.validate()
        self.schema = schema
        self.dataset_name = dataset_name
        self.feedback_loop = feedback_loop or FeedbackLoop()
        self.retriever = retriever or ContextRetriever(
            schema, top_k_examples=self.config.top_k_examples
        )
        self.llm = llm or SimulatedLLM(
            self.config.model_name, schema=schema, knowledge=self.feedback_loop.knowledge
        )
        self._prompt_builder = PromptBuilder(
            num_candidates=self.config.num_candidates,
            max_examples=self.config.top_k_examples,
        )
        self.annotations: list[AnnotationRecord] = []
        self._counter = 0

    # ------------------------------------------------------------------
    # candidate generation (steps 3.5 - 5.5)
    # ------------------------------------------------------------------

    def generate_candidates(self, sql: str, query_id: str | None = None) -> CandidateSet:
        """Run decomposition, retrieval and LLM generation for one query."""
        sql = sql.strip().rstrip(";")
        if not sql:
            raise PipelineError("cannot annotate an empty SQL string")
        select = parse_select(sql)

        use_decomposition = self.config.decomposition_enabled and is_nested(select)
        decomposition = decompose(select) if use_decomposition else None

        if decomposition is not None and decomposition.was_nested:
            candidates, unit_candidates = self._generate_decomposed(decomposition)
        else:
            candidates = self._generate_flat(sql)
            unit_candidates = {}

        context = self._retrieve(sql)
        prompt = self._build_prompt(sql, context)
        return CandidateSet(
            sql=sql,
            candidates=candidates,
            dataset=self.dataset_name,
            prompt=prompt,
            context=context,
            decomposition=decomposition,
            unit_candidates=unit_candidates,
            model_name=self.llm.name,
        )

    def _retrieve(self, sql: str) -> RetrievedContext | None:
        if not self.config.rag_enabled:
            return None
        return self.retriever.retrieve(sql, dataset=self.dataset_name or None)

    def _build_prompt(self, sql: str, context: RetrievedContext | None) -> Prompt:
        knowledge = (
            self.feedback_loop.knowledge if self.config.knowledge_feedback_enabled else None
        )
        return self._prompt_builder.build(
            sql,
            context=context,
            knowledge=knowledge,
            priorities=self.feedback_loop.priorities,
        )

    def _generate_flat(self, sql: str) -> list[str]:
        context = self._retrieve(sql)
        prompt = self._build_prompt(sql, context)
        return self.llm.generate(prompt).candidates

    def _generate_decomposed(
        self, decomposition: DecompositionResult
    ) -> tuple[list[str], dict[str, list[str]]]:
        unit_candidates: dict[str, list[str]] = {}
        for unit in decomposition.units:
            context = self._retrieve(unit.sql)
            prompt = self._build_prompt(unit.sql, context)
            unit_candidates[unit.name] = self.llm.generate(prompt).candidates

        merged: list[str] = []
        for candidate_index in range(self.config.num_candidates):
            descriptions = {
                name: candidates[min(candidate_index, len(candidates) - 1)]
                for name, candidates in unit_candidates.items()
                if candidates
            }
            merged_text = recompose(decomposition, descriptions).text
            if merged_text not in merged:
                merged.append(merged_text)
        return merged, unit_candidates

    # ------------------------------------------------------------------
    # feedback + acceptance (steps 6 - 7)
    # ------------------------------------------------------------------

    def submit_feedback(
        self, candidate_set: CandidateSet, feedback: Feedback, query_id: str | None = None
    ) -> AnnotationRecord | None:
        """Apply annotator feedback; returns the record when one is produced.

        ``None`` is returned when the feedback asks for regeneration (call
        :meth:`generate_candidates` again — the new priorities and knowledge
        are already folded into the session).
        """
        outcome = self.feedback_loop.apply(candidate_set.candidates, feedback)
        if outcome.needs_regeneration:
            return None

        self._counter += 1
        record = AnnotationRecord(
            query_id=query_id or f"{(self.dataset_name or 'query').lower()}-{self._counter:05d}",
            sql=candidate_set.sql,
            nl=outcome.final_text or "",
            dataset=self.dataset_name,
            accepted=outcome.accepted,
            action=outcome.action.value,
            candidates=list(candidate_set.candidates),
            was_decomposed=candidate_set.was_decomposed,
            model_name=candidate_set.model_name,
        )
        self.annotations.append(record)

        if outcome.accepted and self.config.auto_accept_into_examples and record.nl:
            self.retriever.record_annotation(
                record.sql, record.nl, dataset=self.dataset_name
            )
        return record

    def annotate(
        self, sql: str, feedback: Feedback | None = None, query_id: str | None = None
    ) -> AnnotationRecord:
        """Convenience: generate candidates and apply feedback in one call.

        Without explicit feedback the top-ranked candidate is accepted, which
        is the "annotator agrees with the first suggestion" fast path.
        """
        candidate_set = self.generate_candidates(sql, query_id=query_id)
        feedback = feedback or Feedback(action=FeedbackAction.ACCEPT, selected_index=0)
        record = self.submit_feedback(candidate_set, feedback, query_id=query_id)
        if record is None:
            # A regeneration request with no follow-up: accept the refreshed top candidate.
            candidate_set = self.generate_candidates(sql, query_id=query_id)
            record = self.submit_feedback(
                candidate_set, Feedback(action=FeedbackAction.ACCEPT, selected_index=0),
                query_id=query_id,
            )
        assert record is not None
        return record

    def annotate_many(self, statements: list[str]) -> list[AnnotationRecord]:
        """Annotate a list of SQL statements with default (accept-top) feedback."""
        return [self.annotate(sql) for sql in statements]

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def accepted_annotations(self) -> list[AnnotationRecord]:
        """Annotations that were accepted (not discarded)."""
        return [record for record in self.annotations if record.accepted]

    @property
    def example_count(self) -> int:
        """Number of examples currently available for retrieval."""
        return len(self.retriever.example_store)
