"""Dataset ingestion (paper step 2).

Users upload SQL logs and schema files, or select one of the four supported
benchmarks.  Logs and schemas are stored server-side (here: inside the
project) because RAG needs global access to every uploaded document; this
module parses the uploads into the structures the annotation loop consumes.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import IngestionError
from repro.schema.ddl_parser import parse_ddl_script
from repro.schema.model import DatabaseSchema
from repro.sql.parser import parse_select


@dataclass
class LogEntry:
    """One SQL log statement queued for annotation."""

    entry_id: str
    sql: str
    source: str = "upload"
    valid: bool = True
    parse_error: str = ""
    metadata: dict[str, object] = field(default_factory=dict)


@dataclass
class IngestedDataset:
    """The outcome of one ingestion: a schema plus the parsed SQL log."""

    name: str
    schema: DatabaseSchema
    entries: list[LogEntry] = field(default_factory=list)

    @property
    def valid_entries(self) -> list[LogEntry]:
        """Entries whose SQL parsed successfully."""
        return [entry for entry in self.entries if entry.valid]

    @property
    def invalid_entries(self) -> list[LogEntry]:
        """Entries that failed to parse (kept for reporting, not annotated)."""
        return [entry for entry in self.entries if not entry.valid]


def split_sql_log(log_text: str) -> list[str]:
    """Split raw log text into individual SQL statements.

    Supports ``;``-separated scripts and line-oriented logs where each
    non-empty, non-comment line holds one statement.
    """
    text = log_text.strip()
    if not text:
        return []
    if ";" in text:
        statements = [statement.strip() for statement in text.split(";")]
    else:
        statements = [line.strip() for line in text.splitlines()]
    cleaned: list[str] = []
    for statement in statements:
        if not statement or statement.startswith("--"):
            continue
        cleaned.append(re.sub(r"\s+", " ", statement))
    return cleaned


def ingest_sql_log(
    log_text: str, schema: DatabaseSchema, dataset_name: str = "uploaded"
) -> IngestedDataset:
    """Parse an uploaded SQL log against an already-parsed schema."""
    entries: list[LogEntry] = []
    for index, sql in enumerate(split_sql_log(log_text), start=1):
        entry = LogEntry(entry_id=f"{dataset_name.lower()}-{index:05d}", sql=sql)
        try:
            parse_select(sql)
        except Exception as exc:
            entry.valid = False
            entry.parse_error = str(exc)
        entries.append(entry)
    if not entries:
        raise IngestionError("the uploaded SQL log contained no statements")
    return IngestedDataset(name=dataset_name, schema=schema, entries=entries)


def ingest_files(
    schema_path: str | Path, log_path: str | Path, dataset_name: str | None = None
) -> IngestedDataset:
    """Ingest a schema DDL file and a SQL log file from disk."""
    schema_path = Path(schema_path)
    log_path = Path(log_path)
    if not schema_path.exists():
        raise IngestionError(f"schema file not found: {schema_path}")
    if not log_path.exists():
        raise IngestionError(f"log file not found: {log_path}")
    name = dataset_name or schema_path.stem
    schema = parse_ddl_script(schema_path.read_text(encoding="utf-8"), schema_name=name)
    return ingest_sql_log(log_path.read_text(encoding="utf-8"), schema, dataset_name=name)


def ingest_benchmark(name: str, seed: int = 0, query_count: int = 30,
                     row_scale: float = 0.002) -> IngestedDataset:
    """Ingest one of the four built-in benchmarks (Spider/Bird/Fiben/Beaver)."""
    from repro.workloads.benchmarks import build_benchmark

    workload = build_benchmark(name, seed=seed, query_count=query_count, row_scale=row_scale)
    entries = [
        LogEntry(
            entry_id=query.query_id,
            sql=query.sql,
            source=f"benchmark:{workload.name}",
            metadata={"gold_nl": query.gold_nl, "tables": query.tables},
        )
        for query in workload.queries
    ]
    return IngestedDataset(name=workload.name, schema=workload.schema, entries=entries)


def load_benchmark_json(path: str | Path) -> list[dict[str, object]]:
    """Load a previously exported benchmark JSON file."""
    path = Path(path)
    if not path.exists():
        raise IngestionError(f"benchmark file not found: {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise IngestionError(f"invalid benchmark JSON: {exc}") from exc
    if not isinstance(payload, list):
        raise IngestionError("benchmark JSON must be a list of annotation records")
    return payload
