"""The BenchPress system: projects, ingestion, annotation loop, export."""

from repro.core.config import AnnotationTask, TaskConfig
from repro.core.export import (
    ReviewReport,
    annotations_at_offset,
    export_at_offset,
    export_benchmark_json,
    export_jsonl,
    review_against_gold,
    to_benchmark_records,
)
from repro.core.feedback import Feedback, FeedbackAction, FeedbackLoop, FeedbackOutcome
from repro.core.ingestion import (
    IngestedDataset,
    LogEntry,
    ingest_benchmark,
    ingest_files,
    ingest_sql_log,
    load_benchmark_json,
    split_sql_log,
)
from repro.core.journal import (
    EventJournal,
    JournalEvent,
    JournalRecovery,
    JournalSalvageReport,
)
from repro.core.pipeline import (
    AnnotationPipeline,
    AnnotationRecord,
    CandidateSet,
    WaveRun,
    WaveStats,
)
from repro.core.project import Project, Workspace
from repro.core.scheduler import WaveScheduler
from repro.core.service import (
    AnnotationJob,
    AnnotationService,
    CompletedJob,
    DrainReport,
    ProjectStats,
    ServiceStats,
)
from repro.core.snapshot import SnapshotManager

__all__ = [
    "AnnotationJob",
    "AnnotationPipeline",
    "AnnotationRecord",
    "AnnotationService",
    "AnnotationTask",
    "CandidateSet",
    "CompletedJob",
    "DrainReport",
    "EventJournal",
    "Feedback",
    "FeedbackAction",
    "FeedbackLoop",
    "FeedbackOutcome",
    "IngestedDataset",
    "JournalEvent",
    "JournalRecovery",
    "JournalSalvageReport",
    "LogEntry",
    "Project",
    "ProjectStats",
    "ReviewReport",
    "ServiceStats",
    "SnapshotManager",
    "TaskConfig",
    "WaveRun",
    "WaveScheduler",
    "WaveStats",
    "Workspace",
    "annotations_at_offset",
    "export_at_offset",
    "export_benchmark_json",
    "export_jsonl",
    "ingest_benchmark",
    "ingest_files",
    "ingest_sql_log",
    "load_benchmark_json",
    "review_against_gold",
    "split_sql_log",
    "to_benchmark_records",
]
