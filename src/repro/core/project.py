"""Project / workspace management (paper step 1).

A *workspace* is identified by a username and holds multiple *projects*, each
associated with one schema and the SQL logs uploaded for it.  API keys stay on
the client in the real system; here the credential is simply held in memory
and never serialised, preserving the privacy property the paper emphasises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import TaskConfig
from repro.core.feedback import FeedbackLoop
from repro.core.ingestion import IngestedDataset, ingest_benchmark, ingest_sql_log
from repro.core.pipeline import AnnotationPipeline
from repro.errors import ProjectError
from repro.schema.model import DatabaseSchema


@dataclass
class Project:
    """One annotation project: a schema, its SQL log, and a pipeline."""

    name: str
    dataset: IngestedDataset
    config: TaskConfig = field(default_factory=TaskConfig)
    pipeline: AnnotationPipeline | None = None

    def __post_init__(self) -> None:
        if self.pipeline is None:
            self.pipeline = AnnotationPipeline(
                schema=self.dataset.schema,
                config=self.config,
                dataset_name=self.dataset.name,
            )

    @property
    def pending_queries(self) -> list[str]:
        """SQL statements not yet annotated."""
        annotated = {record.sql for record in self.pipeline.annotations}
        return [entry.sql for entry in self.dataset.valid_entries if entry.sql not in annotated]

    @property
    def progress(self) -> float:
        """Fraction of valid log entries that have been annotated."""
        total = len(self.dataset.valid_entries)
        if total == 0:
            return 1.0
        return min(1.0, len(self.pipeline.annotations) / total)


class Workspace:
    """A user's collection of annotation projects."""

    def __init__(self, username: str, api_key: str | None = None) -> None:
        if not username.strip():
            raise ProjectError("username must be non-empty")
        self.username = username.strip()
        self._api_key = api_key  # never serialised; mirrors browser-local storage
        self._projects: dict[str, Project] = {}

    @property
    def has_api_key(self) -> bool:
        """Whether a model API credential is configured (value never exposed)."""
        return bool(self._api_key)

    @property
    def project_names(self) -> list[str]:
        """Names of all projects in creation order."""
        return list(self._projects.keys())

    def project(self, name: str) -> Project:
        """Fetch a project by name."""
        if name not in self._projects:
            raise ProjectError(f"workspace {self.username!r} has no project {name!r}")
        return self._projects[name]

    def create_project_from_log(
        self,
        name: str,
        schema: DatabaseSchema,
        log_text: str,
        config: TaskConfig | None = None,
    ) -> Project:
        """Create a project from an uploaded schema and SQL log."""
        if name in self._projects:
            raise ProjectError(f"project {name!r} already exists")
        dataset = ingest_sql_log(log_text, schema, dataset_name=name)
        project = Project(name=name, dataset=dataset, config=config or TaskConfig())
        self._projects[name] = project
        return project

    def create_project_from_benchmark(
        self,
        name: str,
        benchmark: str,
        config: TaskConfig | None = None,
        seed: int = 0,
        query_count: int = 30,
    ) -> Project:
        """Create a project backed by one of the built-in benchmarks."""
        if name in self._projects:
            raise ProjectError(f"project {name!r} already exists")
        dataset = ingest_benchmark(benchmark, seed=seed, query_count=query_count)
        project = Project(name=name, dataset=dataset, config=config or TaskConfig())
        self._projects[name] = project
        return project

    def delete_project(self, name: str) -> None:
        """Remove a project from the workspace."""
        if name not in self._projects:
            raise ProjectError(f"workspace {self.username!r} has no project {name!r}")
        del self._projects[name]
