"""Round-based concurrent wave scheduler for multi-tenant drains.

Sequential :meth:`~repro.core.service.AnnotationService.drain` runs one
project's waves to completion before touching the next, so N tenants queue
behind each other even though their pipelines share no mutable state.  The
:class:`WaveScheduler` instead advances *every* project with pending work one
wave per round through a bounded thread pool: the slow part of a wave — the
batched LLM call — overlaps across tenants, while each tenant's own waves
still run strictly in order on a single thread at a time.

Correctness argument, in brief:

* Per-project pipeline state (retriever, example store, embedding model,
  default LLM client) is thread-confined — a project's
  :class:`~repro.core.pipeline.WaveRun` is only ever advanced by one worker
  at a time, and never before its previous wave returned.  Each project
  therefore sees exactly the wave sequence of a sequential
  ``annotate_many`` run, which is what makes per-project results
  bit-identical to sequential drain.
* Shared mutable state is limited to the event journal (appends serialized
  by its internal lock, so the CRC-framed record stream interleaves only at
  whole-record boundaries) and :class:`~repro.llm.base.UsageStats` when one
  LLM client backs several projects (its counters are lock-guarded).
* The round barrier gives fairness: no tenant can get more than one wave
  ahead of another, so a hot tenant with a deep queue cannot starve the
  rest of pool slots.

Failure semantics mirror the sequential drain: an ``Exception`` from one
project's wave stops only that project (the error is reported per project so
the service can fall back to its per-job quarantine path), while
:class:`~repro.errors.JournalError` and ``BaseException`` (e.g. injected
crashes) are fatal and re-raised — but only after every wave of the current
round has settled, so no worker thread is left running against a
half-torn-down service.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.core.pipeline import WaveRun
from repro.errors import JournalError, PipelineError
from repro.llm.resilience import Deadline
from repro.obs import NULL_TELEMETRY, Telemetry

__all__ = ["WaveScheduler"]


class WaveScheduler:
    """Drive many projects' :class:`WaveRun` steppers concurrently and fairly.

    ``max_workers`` bounds how many waves are in flight simultaneously; with
    more active projects than workers, the pool queues the excess within the
    round (the barrier still holds).
    """

    def __init__(
        self, max_workers: int = 4, telemetry: Telemetry | None = None
    ) -> None:
        if max_workers < 1:
            raise PipelineError("scheduler max_workers must be at least 1")
        self.max_workers = max_workers
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        #: Rounds executed by the most recent :meth:`run_all` call.
        self.rounds = 0

    def run_all(
        self, runs: dict[str, WaveRun], deadline: Deadline | None = None
    ) -> dict[str, Exception]:
        """Advance every run to completion; returns per-project errors.

        Each round submits one ``run_next_wave`` per still-active project and
        waits for all of them before starting the next round.  A project
        whose wave raises an ``Exception`` is retired with that exception
        recorded under its name (its committed prefix is untouched); fatal
        conditions — :class:`JournalError` or any non-``Exception``
        ``BaseException`` — are re-raised once the round has fully settled.

        With a ``deadline``, no new round starts once the budget has expired:
        the loop stops at the round barrier and the unfinished runs are left
        for the caller to defer (each run's committed prefix is intact).  The
        deadline also rides inside every wave (via
        :attr:`WaveRun.deadline`), shrinking per-call LLM timeouts, so the
        in-flight round itself cannot overshoot by more than the budget's
        remaining slice.
        """
        self.rounds = 0
        errors: dict[str, Exception] = {}
        active = {project: run for project, run in runs.items() if not run.done}
        if not active:
            return errors
        tel = self.telemetry
        with ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="wave"
        ) as pool:
            while active:
                if deadline is not None and deadline.expired:
                    if tel.enabled:
                        tel.count("scheduler_deadline_stops_total")
                        tel.event(
                            "scheduler_deadline_stop",
                            unfinished_projects=len(active),
                        )
                    break
                self.rounds += 1
                if tel.enabled:
                    tel.count("scheduler_rounds_total")
                    tel.observe_size("scheduler_round_active_projects", len(active))
                futures = [
                    (project, pool.submit(active[project].run_next_wave))
                    for project in list(active)
                ]
                fatal: BaseException | None = None
                for project, future in futures:
                    try:
                        future.result()
                    except JournalError as exc:
                        fatal = fatal if fatal is not None else exc
                        del active[project]
                    except Exception as exc:
                        errors[project] = exc
                        del active[project]
                    except BaseException as exc:  # e.g. injected crash faults
                        fatal = fatal if fatal is not None else exc
                        del active[project]
                    else:
                        if active[project].done:
                            del active[project]
                if fatal is not None:
                    raise fatal
        return errors
