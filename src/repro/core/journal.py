"""Append-only event journal — the durability backbone of the service.

Every state-changing commit in the annotation service (project registered,
job submitted, annotation committed, feedback applied, job failed, drain
accounting) is appended here as one self-describing record *before* the
in-memory state is considered durable.  Replaying the journal from the start
reconstructs the full service state bit-for-bit (see
:meth:`repro.core.service.AnnotationService.recover`), and the journal doubles
as the audit trail the paper's non-functional requirements call for: every
annotation decision is an inspectable, ordered, checksummed record.

On-disk format (little-endian, one record after another)::

    +----------------+----------------+------------------------+
    | length: uint32 | crc32:  uint32 | payload: length bytes  |
    +----------------+----------------+------------------------+

where ``payload`` is the UTF-8 JSON encoding of ``{"type": ..., "payload":
...}``.  The length prefix and CRC make torn tail writes (a crash mid-append)
*detectable and recoverable*: :meth:`EventJournal.scan` stops at the first
record whose header is incomplete, whose length is implausible, or whose
checksum fails, and opening the journal truncates that torn tail instead of
failing — losing only the un-synced suffix, never corrupting the prefix.

Fsync discipline is a policy knob:

* ``"always"`` — fsync after every append; survives power loss at a heavy
  per-record cost.
* ``"batch"`` (default) — appends stay in the userspace write buffer and are
  flushed + fsynced at group-commit points (:meth:`EventJournal.commit`,
  called by the service at drain boundaries).  A crash between commits loses
  only un-committed records — exactly the suffix group commit never promised.
* ``"never"`` — buffered writes, flushed at commit points but never fsynced;
  the OS decides when bytes reach the disk.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import DiskFaultError, JournalError
from repro.obs import NULL_TELEMETRY, Telemetry

#: Header layout: payload length then CRC32 of the payload, both uint32 LE.
_HEADER = struct.Struct("<II")
#: Records larger than this are treated as corruption, not data.
_MAX_RECORD_BYTES = 64 * 1024 * 1024
#: How far past a corruption point the salvage scan probes for a plausible
#: next record before giving up (diagnostics only — see scan()).
_RESYNC_WINDOW_BYTES = 16 * 1024 * 1024

FSYNC_POLICIES = ("always", "batch", "never")

# Event types appended by the service/pipeline layers.  Kept in one place so
# replay, export and audit tooling agree on the vocabulary.
PROJECT_REGISTERED = "project_registered"
JOB_SUBMITTED = "job_submitted"
ANNOTATION_COMMITTED = "annotation_committed"
FEEDBACK_APPLIED = "feedback_applied"
JOB_FAILED = "job_failed"
DRAIN_STATS = "drain_stats"


@dataclass
class JournalEvent:
    """One decoded journal record."""

    offset: int  # record index within the journal (0-based)
    type: str
    payload: dict


@dataclass
class JournalSalvageReport:
    """Forensics for a journal whose byte stream broke mid-scan.

    ``reason`` says *why* decoding stopped (``"torn_header"``,
    ``"torn_record"``, ``"implausible_length"``, ``"crc_mismatch"``,
    ``"undecodable_payload"``); ``resync_offset``/``resynced_records``
    report whether a scan-forward probe found plausible records *after* the
    corruption.  Those trailing records are diagnostics, not data: replay
    requires an unbroken prefix (later events reference earlier ones), so
    salvage always keeps the longest valid committed prefix and drops the
    rest — but the report distinguishes a benign torn tail (crash mid-append,
    nothing after the break) from mid-stream bit rot that destroyed records
    an operator may want to investigate.
    """

    reason: str
    corrupt_at_byte: int
    valid_records: int
    valid_bytes: int
    dropped_bytes: int
    resync_offset: int | None = None
    resynced_records: int = 0

    @property
    def kind(self) -> str:
        """``"mid_stream_corruption"`` when intact records exist past the
        break, else ``"torn_tail"``."""
        return "mid_stream_corruption" if self.resynced_records else "torn_tail"


@dataclass
class JournalRecovery:
    """What :meth:`EventJournal.scan` found on disk."""

    record_count: int = 0
    valid_bytes: int = 0
    dropped_bytes: int = 0
    events: list[JournalEvent] = field(default_factory=list)
    #: Populated when the scan stopped before end-of-file (torn tail or
    #: mid-stream corruption); ``None`` for a clean journal.
    salvage: JournalSalvageReport | None = None

    @property
    def torn(self) -> bool:
        """Whether a torn/corrupt tail was detected (and measured)."""
        return self.dropped_bytes > 0


class EventJournal:
    """Append-only, checksummed, crash-recoverable event log.

    Opening a path that already holds a journal scans it, truncates any torn
    tail, and positions the append cursor after the last valid record — so a
    process can crash at any byte of a write and the next open heals the file.

    Appends are serialised through an internal (re-entrant) lock, so waves
    drained concurrently from several projects interleave as *whole records*
    in the CRC-framed stream — never as interleaved bytes.  Group commit and
    close take the same lock, making the journal safe to share across the
    scheduler's worker threads.
    """

    #: Observability sink for append/fsync accounting.  Class-level no-op
    #: default keeps ``__init__`` signatures stable; the service overwrites
    #: it per instance when telemetry is attached.
    telemetry: Telemetry = NULL_TELEMETRY

    def __init__(self, path: str | Path, fsync: str = "batch") -> None:
        if fsync not in FSYNC_POLICIES:
            raise JournalError(
                f"unknown fsync policy {fsync!r}; expected one of {FSYNC_POLICIES}"
            )
        self.path = Path(path)
        self.fsync_policy = fsync
        self.path.parent.mkdir(parents=True, exist_ok=True)
        #: Recovery report from opening (empty for a fresh journal).
        self.recovery = self.scan(self.path, with_events=False)
        if self.recovery.torn:
            self._truncate_to(self.recovery.valid_bytes)
        self._record_count = self.recovery.record_count
        self._handle = open(self.path, "ab")
        self._dirty = False
        # Re-entrant so fault-injection subclasses can hold it around a
        # super().append() call without deadlocking.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # append path
    # ------------------------------------------------------------------

    @property
    def record_count(self) -> int:
        """Number of valid records in the journal (== next append offset)."""
        return self._record_count

    def append(self, event_type: str, payload: dict) -> int:
        """Append one event; returns its record offset.

        Under the ``"always"`` policy the record is durable before this
        returns; otherwise it sits in the write buffer until the next
        :meth:`commit` (group commit) makes it durable.
        """
        try:
            data = json.dumps(
                {"type": event_type, "payload": payload}, separators=(",", ":")
            ).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise JournalError(f"event payload is not JSON-serialisable: {exc}") from exc
        record = _HEADER.pack(len(data), zlib.crc32(data) & 0xFFFFFFFF) + data
        tel = self.telemetry
        with self._lock:
            if self._handle is None:
                raise JournalError(f"journal {self.path} is closed")
            try:
                self._handle.write(record)
                if self.fsync_policy == "always":
                    started = time.perf_counter() if tel.enabled else 0.0
                    self._handle.flush()
                    os.fsync(self._handle.fileno())
                    if tel.enabled:
                        tel.count("journal_fsyncs_total", policy="always")
                        tel.observe(
                            "journal_fsync_seconds",
                            time.perf_counter() - started,
                            policy="always",
                        )
                else:
                    self._dirty = True
            except OSError as exc:
                raise DiskFaultError(
                    f"failed to append to journal {self.path}: {exc}",
                    errno_value=exc.errno,
                ) from exc
            offset = self._record_count
            self._record_count += 1
            if tel.enabled:
                tel.count("journal_appends_total", type=event_type)
                tel.count("journal_bytes_total", len(record))
            return offset

    def commit(self) -> None:
        """Group-commit point: make everything appended so far durable."""
        tel = self.telemetry
        with self._lock:
            if self._handle is None or not self._dirty:
                return
            try:
                started = time.perf_counter() if tel.enabled else 0.0
                self._handle.flush()
                if self.fsync_policy != "never":
                    os.fsync(self._handle.fileno())
                if tel.enabled:
                    tel.count("journal_fsyncs_total", policy=self.fsync_policy)
                    tel.observe(
                        "journal_fsync_seconds",
                        time.perf_counter() - started,
                        policy=self.fsync_policy,
                    )
            except OSError as exc:
                raise DiskFaultError(
                    f"failed to sync journal {self.path}: {exc}",
                    errno_value=exc.errno,
                ) from exc
            self._dirty = False

    def close(self) -> None:
        """Commit and release the file handle (idempotent)."""
        with self._lock:
            if self._handle is None:
                return
            self.commit()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def events(self, start: int = 0) -> list[JournalEvent]:
        """Decode records ``start..`` from disk (flushes pending writes first)."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
        recovery = self.scan(self.path, with_events=True)
        return [event for event in recovery.events if event.offset >= start]

    @staticmethod
    def read_events(path: str | Path, limit: int | None = None) -> list[JournalEvent]:
        """Decode the valid prefix of a journal file.

        ``limit`` keeps only the first ``limit`` records — the hook that makes
        exports reproducible *at any journal offset*.
        """
        recovery = EventJournal.scan(path, with_events=True)
        events = recovery.events
        if limit is not None:
            if limit < 0:
                raise JournalError("journal offset limit cannot be negative")
            events = events[:limit]
        return events

    @staticmethod
    def scan(path: str | Path, with_events: bool = True) -> JournalRecovery:
        """Walk a journal file, stopping at the first torn/corrupt record.

        Never raises on bad data: whatever valid prefix exists is returned,
        and ``dropped_bytes`` measures the tail that must be truncated.
        """
        path = Path(path)
        if not path.exists():
            return JournalRecovery()
        try:
            buffer = path.read_bytes()
        except OSError as exc:
            raise JournalError(f"cannot read journal {path}: {exc}") from exc
        recovery = JournalRecovery()
        position = 0
        total = len(buffer)
        break_reason: str | None = None
        while position + _HEADER.size <= total:
            length, checksum = _HEADER.unpack_from(buffer, position)
            end = position + _HEADER.size + length
            if length > _MAX_RECORD_BYTES:
                break_reason = "implausible_length"
                break  # garbage length: the tail starts here
            if end > total:
                break_reason = "torn_record"
                break  # header fine but the payload never finished writing
            payload = buffer[position + _HEADER.size : end]
            if zlib.crc32(payload) & 0xFFFFFFFF != checksum:
                break_reason = "crc_mismatch"
                break  # bit rot or torn payload
            try:
                decoded = json.loads(payload.decode("utf-8"))
                event_type = decoded["type"]
                event_payload = decoded["payload"]
            except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                break_reason = "undecodable_payload"
                break  # checksum collided with garbage; treat as torn
            if with_events:
                recovery.events.append(
                    JournalEvent(
                        offset=recovery.record_count,
                        type=event_type,
                        payload=event_payload,
                    )
                )
            recovery.record_count += 1
            position = end
        recovery.valid_bytes = position
        recovery.dropped_bytes = total - position
        if recovery.dropped_bytes > 0:
            if break_reason is None:
                break_reason = "torn_header"  # fewer trailing bytes than a header
            resync_offset, resynced = EventJournal._resync_probe(buffer, position)
            recovery.salvage = JournalSalvageReport(
                reason=break_reason,
                corrupt_at_byte=position,
                valid_records=recovery.record_count,
                valid_bytes=recovery.valid_bytes,
                dropped_bytes=recovery.dropped_bytes,
                resync_offset=resync_offset,
                resynced_records=resynced,
            )
        return recovery

    @staticmethod
    def _resync_probe(buffer: bytes, corrupt_at: int) -> tuple[int | None, int]:
        """Look past a corruption point for intact records (diagnostics only).

        Slides byte-by-byte from the break, within ``_RESYNC_WINDOW_BYTES``,
        until an offset parses as a full record — plausible header, CRC match,
        decodable ``{"type", "payload"}`` JSON — then counts how many
        consecutive records follow from there.  Returns ``(resync_offset,
        record_count)``, or ``(None, 0)`` when nothing past the break parses.
        The salvaged records are never replayed (replay needs an unbroken
        prefix); they exist so the recovery report can distinguish a torn
        tail from mid-stream corruption that destroyed committed data.
        """
        total = len(buffer)
        limit = min(total, corrupt_at + _RESYNC_WINDOW_BYTES)
        # Start one byte past the break: the break offset itself already
        # failed to parse.
        for candidate in range(corrupt_at + 1, limit):
            if candidate + _HEADER.size > total:
                break
            position = candidate
            resynced = 0
            while position + _HEADER.size <= total:
                length, checksum = _HEADER.unpack_from(buffer, position)
                end = position + _HEADER.size + length
                if length > _MAX_RECORD_BYTES or end > total:
                    break
                payload = buffer[position + _HEADER.size : end]
                if zlib.crc32(payload) & 0xFFFFFFFF != checksum:
                    break
                try:
                    decoded = json.loads(payload.decode("utf-8"))
                    if not isinstance(decoded, dict):
                        break
                    decoded["type"]
                    decoded["payload"]
                except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                    break
                resynced += 1
                position = end
            if resynced:
                return candidate, resynced
        return None, 0

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _truncate_to(self, valid_bytes: int) -> None:
        """Drop a torn tail, leaving exactly the valid record prefix."""
        try:
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_bytes)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            raise JournalError(
                f"failed to truncate torn tail of journal {self.path}: {exc}"
            ) from exc
