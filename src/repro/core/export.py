"""Review and export (paper step 7).

Accepted annotations are evaluated against ground truth (when available) with
automatic metrics and exported in the typical benchmark-ready JSON format used
by Spider/Bird-style datasets: a list of records with the NL question, the
gold SQL, and the database identifier.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.journal import ANNOTATION_COMMITTED, EventJournal
from repro.core.pipeline import AnnotationRecord
from repro.errors import ExportError
from repro.metrics.textgen import bleu_score, exact_match, rouge_l


@dataclass
class ReviewReport:
    """Automatic-metric summary of a set of annotations against ground truth."""

    count: int
    exact_match_rate: float
    mean_bleu: float
    mean_rouge_l: float
    per_query: list[dict[str, object]] = field(default_factory=list)


def review_against_gold(
    annotations: list[AnnotationRecord], gold: dict[str, str]
) -> ReviewReport:
    """Score annotations against gold NL descriptions keyed by query id.

    Records without a gold entry are skipped (qualitative-review-only in the
    paper's terms); an empty intersection raises :class:`ExportError` because
    that always indicates mismatched ids.
    """
    scored: list[dict[str, object]] = []
    exact = 0
    bleu_total = 0.0
    rouge_total = 0.0
    for record in annotations:
        if record.query_id not in gold:
            continue
        reference = gold[record.query_id]
        is_exact = exact_match(record.nl, reference)
        bleu = bleu_score(record.nl, reference)
        rouge = rouge_l(record.nl, reference).f1
        exact += int(is_exact)
        bleu_total += bleu
        rouge_total += rouge
        scored.append(
            {
                "query_id": record.query_id,
                "exact_match": is_exact,
                "bleu": bleu,
                "rouge_l": rouge,
            }
        )
    if not scored:
        raise ExportError("no annotation matched a gold entry; check query ids")
    count = len(scored)
    return ReviewReport(
        count=count,
        exact_match_rate=exact / count,
        mean_bleu=bleu_total / count,
        mean_rouge_l=rouge_total / count,
        per_query=scored,
    )


def to_benchmark_records(annotations: list[AnnotationRecord]) -> list[dict[str, object]]:
    """Convert accepted annotations to benchmark-ready dictionaries."""
    records = []
    for record in annotations:
        if not record.accepted or not record.nl:
            continue
        records.append(
            {
                "question": record.nl,
                "query": record.sql,
                "db_id": record.dataset or "default",
                "query_id": record.query_id,
                "source": "benchpress",
                "model": record.model_name,
                "decomposed": record.was_decomposed,
            }
        )
    return records


def export_benchmark_json(
    annotations: list[AnnotationRecord], path: str | Path, indent: int = 2
) -> Path:
    """Write accepted annotations to a benchmark JSON file and return its path."""
    records = to_benchmark_records(annotations)
    if not records:
        raise ExportError("there are no accepted annotations to export")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(records, indent=indent), encoding="utf-8")
    return path


def export_jsonl(annotations: list[AnnotationRecord], path: str | Path) -> Path:
    """Write accepted annotations as JSON Lines (one record per line)."""
    records = to_benchmark_records(annotations)
    if not records:
        raise ExportError("there are no accepted annotations to export")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return path


def annotations_at_offset(
    journal_path: str | Path,
    offset: int | None = None,
    project: str | None = None,
) -> list[AnnotationRecord]:
    """Annotations as they stood after the first ``offset`` journal records.

    Reads the service's event journal directly — no live service needed — so
    any historical export can be reproduced exactly from the audit trail.
    ``offset=None`` means the whole valid journal; ``project`` restricts the
    result to one project's records.
    """
    records: list[AnnotationRecord] = []
    for event in EventJournal.read_events(journal_path, limit=offset):
        if event.type != ANNOTATION_COMMITTED:
            continue
        if project is not None and event.payload["project"] != project:
            continue
        records.append(AnnotationRecord(**event.payload["record"]))
    return records


def export_at_offset(
    journal_path: str | Path,
    path: str | Path,
    offset: int | None = None,
    project: str | None = None,
    indent: int = 2,
) -> Path:
    """Export the benchmark JSON exactly as it looked at a journal offset.

    Because the journal is append-only and replay is deterministic, the same
    ``(journal, offset)`` pair always produces byte-identical output — the
    reproducibility hook for auditing and for diffing dataset versions.
    """
    return export_benchmark_json(
        annotations_at_offset(journal_path, offset=offset, project=project),
        path,
        indent=indent,
    )
