"""Service snapshots — warm-start checkpoints over the event journal.

A snapshot is the full semantic state of an :class:`~repro.core.service.
AnnotationService` at a known journal offset: every project pipeline (its
schema, config, annotations, feedback session and example archive — embedding
vectors included, verbatim), the pending queue, quarantined jobs and the
aggregate stats.  Recovery then loads the newest intact snapshot and replays
only the journal *suffix*, instead of re-executing the whole history — the
classic checkpoint + log-suffix scheme, and the reason warm start is a
multiple faster than cold replay (no re-embedding, no re-application of old
feedback).

Snapshot files are JSON, written atomically (tmp file + fsync + rename) and
checksummed, and :meth:`SnapshotManager.latest` skips unreadable or corrupt
files — a damaged snapshot degrades recovery to an older snapshot (or a cold
replay), never to a failure.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.config import TaskConfig
from repro.core.pipeline import AnnotationPipeline, AnnotationRecord
from repro.errors import SnapshotError
from repro.obs import NULL_TELEMETRY, Telemetry
from repro.schema.model import ColumnSchema, DatabaseSchema, ForeignKey, TableSchema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.llm.base import LLMClient

_SNAPSHOT_PREFIX = "snapshot-"
_SNAPSHOT_SUFFIX = ".json"


# ----------------------------------------------------------------------
# schema (de)serialisation
# ----------------------------------------------------------------------

def schema_to_state(schema: DatabaseSchema) -> dict:
    """JSON-safe representation of a database schema."""
    return asdict(schema)


def schema_from_state(state: dict) -> DatabaseSchema:
    """Rebuild a :class:`DatabaseSchema` from :func:`schema_to_state` output."""
    return DatabaseSchema(
        name=state["name"],
        description=state.get("description", ""),
        tables=[
            TableSchema(
                name=table["name"],
                description=table.get("description", ""),
                columns=[ColumnSchema(**column) for column in table.get("columns", [])],
                foreign_keys=[
                    ForeignKey(**foreign_key)
                    for foreign_key in table.get("foreign_keys", [])
                ],
            )
            for table in state.get("tables", [])
        ],
    )


# ----------------------------------------------------------------------
# pipeline (de)serialisation
# ----------------------------------------------------------------------

def capture_pipeline_state(pipeline: AnnotationPipeline) -> dict:
    """Full semantic state of one project pipeline.

    Embedding vectors and IDF statistics are serialised verbatim (they were
    produced under historical document-frequency tables and cannot be
    recomputed from the text alone); restoring them is what makes a warm
    start cheap.  Process-local caches (schema linking, skeletons) are
    rebuilt lazily and deliberately excluded.
    """
    return {
        "schema": schema_to_state(pipeline.schema),
        "config": pipeline.config.to_dict(),
        "counter": pipeline._counter,
        "annotations": [asdict(record) for record in pipeline.annotations],
        "feedback_loop": pipeline.feedback_loop.state_dict(),
        "example_store": pipeline.retriever.example_store.state_dict(),
    }


def restore_pipeline_state(
    name: str, state: dict, llm: "LLMClient | None" = None
) -> AnnotationPipeline:
    """Rebuild a project pipeline from :func:`capture_pipeline_state` output.

    The LLM client is *not* part of the snapshot (it is an external process
    resource); pass ``llm`` to reattach a custom client, otherwise the
    pipeline constructs its default simulated client from the restored
    config.  Either way the client sees the restored knowledge base, because
    :meth:`FeedbackLoop.load_state` mutates the shared instance in place.
    """
    pipeline = AnnotationPipeline(
        schema=schema_from_state(state["schema"]),
        config=TaskConfig.from_dict(state["config"]),
        llm=llm,
        dataset_name=name,
    )
    pipeline.feedback_loop.load_state(state["feedback_loop"])
    pipeline.retriever.example_store.load_state(state["example_store"])
    pipeline.annotations = [
        AnnotationRecord(**record) for record in state["annotations"]
    ]
    pipeline._counter = int(state["counter"])
    return pipeline


# ----------------------------------------------------------------------
# snapshot files
# ----------------------------------------------------------------------

class SnapshotManager:
    """Writes, prunes and loads checksummed snapshot files.

    Files are named ``snapshot-<offset>.json`` where ``<offset>`` is the
    journal record count the snapshot covers; recovery replays the journal
    from that offset.  Only the newest ``keep`` snapshots are retained.
    """

    #: Observability sink for snapshot-write accounting (class-level no-op
    #: default; the service overwrites it per instance).
    telemetry: Telemetry = NULL_TELEMETRY

    def __init__(self, directory: str | Path, keep: int = 3) -> None:
        if keep < 1:
            raise SnapshotError("must keep at least one snapshot")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep

    def path_for(self, offset: int) -> Path:
        """The snapshot file covering journal offset ``offset``."""
        return self.directory / f"{_SNAPSHOT_PREFIX}{offset:010d}{_SNAPSHOT_SUFFIX}"

    def offsets(self) -> list[int]:
        """Journal offsets of every snapshot on disk, ascending."""
        found = []
        for path in self.directory.glob(f"{_SNAPSHOT_PREFIX}*{_SNAPSHOT_SUFFIX}"):
            stem = path.name[len(_SNAPSHOT_PREFIX) : -len(_SNAPSHOT_SUFFIX)]
            if stem.isdigit():
                found.append(int(stem))
        return sorted(found)

    def save(self, offset: int, state: dict) -> Path:
        """Atomically persist ``state`` as the snapshot at journal ``offset``.

        The state JSON is checksummed and written to a temporary file that is
        fsynced before being renamed into place, so a crash mid-save leaves
        either the old snapshot set or the new one — never a half file under
        the final name.
        """
        if offset < 0:
            raise SnapshotError("snapshot offset cannot be negative")
        try:
            state_json = json.dumps(state, separators=(",", ":"))
        except (TypeError, ValueError) as exc:
            raise SnapshotError(f"snapshot state is not JSON-serialisable: {exc}") from exc
        document = json.dumps(
            {
                "offset": offset,
                "crc32": zlib.crc32(state_json.encode("utf-8")) & 0xFFFFFFFF,
                "state_json": state_json,
            }
        )
        path = self.path_for(offset)
        tmp_path = path.with_suffix(".tmp")
        tel = self.telemetry
        started = time.perf_counter() if tel.enabled else 0.0
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                handle.write(document)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except OSError as exc:
            raise SnapshotError(f"failed to write snapshot {path}: {exc}") from exc
        if tel.enabled:
            tel.count("snapshot_writes_total")
            tel.count("snapshot_bytes_total", len(document))
            tel.observe("snapshot_write_seconds", time.perf_counter() - started)
        self._prune()
        return path

    def load(self, offset: int) -> dict:
        """Load and verify the snapshot at ``offset``."""
        state = self._try_load(self.path_for(offset))
        if state is None:
            raise SnapshotError(f"snapshot at offset {offset} is missing or corrupt")
        return state

    def latest(self, max_offset: int | None = None) -> tuple[int, dict] | None:
        """The newest intact snapshot (optionally at/below ``max_offset``).

        Corrupt or unreadable snapshot files are skipped, falling back to the
        next-older one; returns ``None`` when no usable snapshot exists.
        """
        for offset in reversed(self.offsets()):
            if max_offset is not None and offset > max_offset:
                continue
            state = self._try_load(self.path_for(offset))
            if state is not None:
                return offset, state
            if self.telemetry.enabled:
                self.telemetry.count("snapshot_fallbacks_total")
                self.telemetry.event("snapshot_fallback", skipped_offset=offset)
        return None

    def _try_load(self, path: Path) -> dict | None:
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
            state_json = document["state_json"]
            if zlib.crc32(state_json.encode("utf-8")) & 0xFFFFFFFF != document["crc32"]:
                return None
            return json.loads(state_json)
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def _prune(self) -> None:
        for offset in self.offsets()[: -self.keep]:
            try:
                self.path_for(offset).unlink()
            except OSError:  # pragma: no cover - best-effort housekeeping
                pass
