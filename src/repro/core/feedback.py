"""Human feedback handling (paper step 6).

Annotators can rank, refine, discard or add priorities to the LLM's output,
inject external domain knowledge, and highlight failure patterns.  Feedback is
applied to the in-flight annotation *and* folded back into the session state
(priorities + knowledge base) so later queries benefit from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import PipelineError
from repro.llm.knowledge import KnowledgeBase


class FeedbackAction(Enum):
    """What the annotator did with the generated candidates."""

    ACCEPT = "accept"            # accepted a candidate unchanged
    EDIT = "edit"                # accepted a candidate after editing it
    REWRITE = "rewrite"          # discarded all candidates and wrote from scratch
    DISCARD = "discard"          # discarded the query entirely
    REGENERATE = "regenerate"    # asked for regeneration with new priorities


@dataclass
class Feedback:
    """One feedback event for one query."""

    action: FeedbackAction
    selected_index: int | None = None
    edited_text: str = ""
    ranking: list[int] = field(default_factory=list)
    new_priorities: list[str] = field(default_factory=list)
    knowledge: list[tuple[str, str]] = field(default_factory=list)  # (term, explanation)
    failure_patterns: list[tuple[str, str]] = field(default_factory=list)
    comment: str = ""

    def to_state(self) -> dict:
        """JSON-safe representation for the event journal / snapshots."""
        return {
            "action": self.action.value,
            "selected_index": self.selected_index,
            "edited_text": self.edited_text,
            "ranking": list(self.ranking),
            "new_priorities": list(self.new_priorities),
            "knowledge": [list(pair) for pair in self.knowledge],
            "failure_patterns": [list(pair) for pair in self.failure_patterns],
            "comment": self.comment,
        }

    @classmethod
    def from_state(cls, state: dict) -> "Feedback":
        """Rebuild a feedback event from :meth:`to_state` output."""
        return cls(
            action=FeedbackAction(state["action"]),
            selected_index=state.get("selected_index"),
            edited_text=state.get("edited_text", ""),
            ranking=list(state.get("ranking", [])),
            new_priorities=list(state.get("new_priorities", [])),
            knowledge=[tuple(pair) for pair in state.get("knowledge", [])],
            failure_patterns=[tuple(pair) for pair in state.get("failure_patterns", [])],
            comment=state.get("comment", ""),
        )


@dataclass
class FeedbackOutcome:
    """Result of applying feedback to a set of candidates."""

    final_text: str | None
    accepted: bool
    action: FeedbackAction
    needs_regeneration: bool = False


class FeedbackLoop:
    """Applies feedback events and accumulates session-level guidance."""

    def __init__(self, knowledge: KnowledgeBase | None = None) -> None:
        self.knowledge = knowledge or KnowledgeBase()
        self.priorities: list[str] = []
        self.history: list[Feedback] = []
        #: Bumped whenever session-level guidance (knowledge, failure
        #: patterns, priorities) changes; batch schedulers compare revisions
        #: to detect that in-flight prompts have gone stale.
        self.revision = 0

    def apply(self, candidates: list[str], feedback: Feedback) -> FeedbackOutcome:
        """Apply one feedback event to the candidates of the current query."""
        self.history.append(feedback)

        if feedback.knowledge or feedback.failure_patterns:
            self.revision += 1
        for term, explanation in feedback.knowledge:
            self.knowledge.add(term, explanation)
        for description, guidance in feedback.failure_patterns:
            self.knowledge.add_failure_pattern(description, guidance)
        for priority in feedback.new_priorities:
            if priority not in self.priorities:
                self.priorities.append(priority)
                self.revision += 1

        if feedback.action is FeedbackAction.DISCARD:
            return FeedbackOutcome(final_text=None, accepted=False, action=feedback.action)

        if feedback.action is FeedbackAction.REGENERATE:
            return FeedbackOutcome(
                final_text=None,
                accepted=False,
                action=feedback.action,
                needs_regeneration=True,
            )

        if feedback.action is FeedbackAction.REWRITE:
            if not feedback.edited_text.strip():
                raise PipelineError("REWRITE feedback requires edited_text")
            return FeedbackOutcome(
                final_text=feedback.edited_text.strip(), accepted=True, action=feedback.action
            )

        if feedback.action is FeedbackAction.EDIT:
            if not feedback.edited_text.strip():
                raise PipelineError("EDIT feedback requires edited_text")
            return FeedbackOutcome(
                final_text=feedback.edited_text.strip(), accepted=True, action=feedback.action
            )

        # ACCEPT
        if not candidates:
            raise PipelineError("cannot accept a candidate when none were generated")
        index = feedback.selected_index if feedback.selected_index is not None else 0
        if not 0 <= index < len(candidates):
            raise PipelineError(
                f"selected_index {index} out of range for {len(candidates)} candidates"
            )
        return FeedbackOutcome(
            final_text=candidates[index], accepted=True, action=feedback.action
        )

    def rank(self, candidates: list[str], ranking: list[int]) -> list[str]:
        """Reorder candidates according to an annotator-provided ranking."""
        if sorted(ranking) != list(range(len(candidates))):
            raise PipelineError("ranking must be a permutation of the candidate indices")
        return [candidates[index] for index in ranking]

    # ------------------------------------------------------------------
    # durability (snapshot) support
    # ------------------------------------------------------------------

    def state_dict(self) -> dict:
        """JSON-safe session state: guidance, revision counter, full history.

        The shared :class:`~repro.llm.knowledge.KnowledgeBase` is serialised
        alongside so one snapshot captures everything the loop feeds into
        later prompts.
        """
        return {
            "priorities": list(self.priorities),
            "revision": self.revision,
            "history": [feedback.to_state() for feedback in self.history],
            "knowledge": self.knowledge.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshotted session in place (knowledge base included).

        Mutates rather than replaces ``self.knowledge`` so components holding
        a reference to it (e.g. the simulated LLM) keep seeing updates.
        """
        self.priorities = list(state["priorities"])
        self.revision = int(state["revision"])
        self.history = [Feedback.from_state(entry) for entry in state["history"]]
        self.knowledge.load_state(state["knowledge"])
