"""Task configuration (paper step 3).

Users choose the annotation direction (currently SQL-to-NL), the language
model, and the pipeline features to enable.  The configuration object also
carries the ablation switches used by the E7 benchmarks (RAG on/off,
decomposition on/off, knowledge feedback on/off, candidate count).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import PipelineError


class AnnotationTask(Enum):
    """Supported annotation directions."""

    SQL_TO_NL = "sql_to_nl"
    # The paper lists text-to-SQL validation as future work; the enum leaves
    # room for it so the configuration surface matches the system description.
    NL_TO_SQL = "nl_to_sql"


@dataclass
class TaskConfig:
    """Configuration of one annotation project.

    Attributes:
        task: Annotation direction (only SQL_TO_NL is fully supported).
        model_name: Simulated LLM profile to use for candidate generation.
        num_candidates: Candidates generated per query (the paper uses 4).
        top_k_examples: Retrieved prior annotations added to the prompt.
        rag_enabled: Include retrieved examples + relevant schema tables.
        decomposition_enabled: Decompose nested queries into CTE units.
        knowledge_feedback_enabled: Inject accumulated domain knowledge.
        auto_accept_into_examples: Store accepted annotations for future RAG.
        batch_size: Wave size used by the batched annotation scheduler —
            how many queries are retrieved and generated together before
            feedback is applied and accepted annotations are committed.
            1 degenerates to fully sequential annotation.
    """

    task: AnnotationTask = AnnotationTask.SQL_TO_NL
    model_name: str = "gpt-4o"
    num_candidates: int = 4
    top_k_examples: int = 3
    rag_enabled: bool = True
    decomposition_enabled: bool = True
    knowledge_feedback_enabled: bool = True
    auto_accept_into_examples: bool = True
    batch_size: int = 16

    def validate(self) -> None:
        """Raise :class:`PipelineError` on inconsistent settings."""
        if self.num_candidates < 1:
            raise PipelineError("num_candidates must be at least 1")
        if self.top_k_examples < 0:
            raise PipelineError("top_k_examples cannot be negative")
        if self.batch_size < 1:
            raise PipelineError("batch_size must be at least 1")
        if self.task is AnnotationTask.NL_TO_SQL:
            raise PipelineError(
                "NL_TO_SQL annotation is future work in the paper and not supported yet"
            )

    def describe(self) -> str:
        """One-line summary used in logs and exports."""
        features = []
        if self.rag_enabled:
            features.append("rag")
        if self.decomposition_enabled:
            features.append("decomposition")
        if self.knowledge_feedback_enabled:
            features.append("knowledge")
        return (
            f"{self.task.value} with {self.model_name}, {self.num_candidates} candidates"
            f" [{', '.join(features) or 'no assistance'}]"
        )
