"""Task configuration (paper step 3).

Users choose the annotation direction (currently SQL-to-NL), the language
model, and the pipeline features to enable.  The configuration object also
carries the ablation switches used by the E7 benchmarks (RAG on/off,
decomposition on/off, knowledge feedback on/off, candidate count).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from enum import Enum
from typing import TYPE_CHECKING

from repro.errors import PipelineError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (llm.base ← config)
    from typing import Callable

    from repro.llm.base import RetryPolicy
    from repro.llm.resilience import CircuitBreaker, HedgePolicy


class AnnotationTask(Enum):
    """Supported annotation directions."""

    SQL_TO_NL = "sql_to_nl"
    # The paper lists text-to-SQL validation as future work; the enum leaves
    # room for it so the configuration surface matches the system description.
    NL_TO_SQL = "nl_to_sql"


@dataclass
class TaskConfig:
    """Configuration of one annotation project.

    Attributes:
        task: Annotation direction (only SQL_TO_NL is fully supported).
        model_name: Simulated LLM profile to use for candidate generation.
        num_candidates: Candidates generated per query (the paper uses 4).
        top_k_examples: Retrieved prior annotations added to the prompt.
        rag_enabled: Include retrieved examples + relevant schema tables.
        decomposition_enabled: Decompose nested queries into CTE units.
        knowledge_feedback_enabled: Inject accumulated domain knowledge.
        auto_accept_into_examples: Store accepted annotations for future RAG.
        batch_size: Wave size used by the batched annotation scheduler —
            how many queries are retrieved and generated together before
            feedback is applied and accepted annotations are committed.
            1 degenerates to fully sequential annotation.
        max_pending_per_project: Admission-control limit on this project's
            queued (not yet drained) jobs in the annotation service.  A
            submit that would exceed it is rejected with
            :class:`~repro.errors.BackpressureError` instead of letting one
            hot tenant grow the queue without bound.  0 disables the limit.
        llm_max_attempts: Attempts per LLM call before a transient error is
            surfaced (1 disables retries).
        llm_retry_base_delay: Backoff before the first retry, in seconds;
            doubles per attempt up to ``llm_retry_max_delay``.
        llm_retry_max_delay: Ceiling on the exponential backoff delay.
        llm_retry_jitter: Fraction of each backoff delay that is randomised
            (0 = fixed delays, 1 = anywhere between 0 and the full delay).
        llm_call_timeout: Per-call wall-clock budget in seconds; ``None``
            disables timeout enforcement.  A timed-out call counts as a
            transient error and is retried.
        llm_retry_budget_s: Total elapsed-time cap (attempts + backoff
            sleeps) on one logical LLM call; ``None`` disables the cap.
            Bounds the worst-case sleep when ``llm_max_attempts`` is high.
        breaker_enabled: Guard this project's LLM calls with a per-pipeline
            circuit breaker.  While open, the service *defers* the project's
            waves (jobs are re-queued, not quarantined).
        breaker_window: Rolling outcome window the failure rate is computed
            over.
        breaker_failure_rate: Failure fraction within the window that trips
            the breaker open.
        breaker_min_calls: Outcomes required in the window before the rate
            is trusted (prevents one early failure from tripping).
        breaker_recovery_s: Seconds the breaker stays open before admitting
            half-open probe calls.
        breaker_probes: Consecutive probe successes required to close again.
        llm_hedge_enabled: Fire a backup LLM call behind a slow primary and
            take the first answer (tail-latency for duplicate-work trade).
        llm_hedge_delay_s: Fixed hedge delay; ``None`` derives it from the
            client's observed latency distribution.
        llm_hedge_percentile: Latency percentile used for the derived delay.
        llm_hedge_min_samples: Latency samples required before a derived
            delay is trusted (until then calls are not hedged).
    """

    task: AnnotationTask = AnnotationTask.SQL_TO_NL
    model_name: str = "gpt-4o"
    num_candidates: int = 4
    top_k_examples: int = 3
    rag_enabled: bool = True
    decomposition_enabled: bool = True
    knowledge_feedback_enabled: bool = True
    auto_accept_into_examples: bool = True
    batch_size: int = 16
    max_pending_per_project: int = 0
    llm_max_attempts: int = 3
    llm_retry_base_delay: float = 0.05
    llm_retry_max_delay: float = 2.0
    llm_retry_jitter: float = 0.5
    llm_call_timeout: float | None = None
    llm_retry_budget_s: float | None = None
    breaker_enabled: bool = False
    breaker_window: int = 16
    breaker_failure_rate: float = 0.5
    breaker_min_calls: int = 4
    breaker_recovery_s: float = 1.0
    breaker_probes: int = 1
    llm_hedge_enabled: bool = False
    llm_hedge_delay_s: float | None = None
    llm_hedge_percentile: float = 0.95
    llm_hedge_min_samples: int = 8

    def validate(self) -> None:
        """Raise :class:`PipelineError` on inconsistent settings."""
        if self.num_candidates < 1:
            raise PipelineError("num_candidates must be at least 1")
        if self.top_k_examples < 0:
            raise PipelineError("top_k_examples cannot be negative")
        if self.batch_size < 1:
            raise PipelineError("batch_size must be at least 1")
        if self.max_pending_per_project < 0:
            raise PipelineError("max_pending_per_project cannot be negative")
        if self.llm_max_attempts < 1:
            raise PipelineError("llm_max_attempts must be at least 1")
        if self.llm_retry_base_delay < 0 or self.llm_retry_max_delay < 0:
            raise PipelineError("retry delays cannot be negative")
        if not 0.0 <= self.llm_retry_jitter <= 1.0:
            raise PipelineError("llm_retry_jitter must be within [0, 1]")
        if self.llm_call_timeout is not None and self.llm_call_timeout <= 0:
            raise PipelineError("llm_call_timeout must be positive when set")
        if self.llm_retry_budget_s is not None and self.llm_retry_budget_s <= 0:
            raise PipelineError("llm_retry_budget_s must be positive when set")
        if self.breaker_window < 1:
            raise PipelineError("breaker_window must be at least 1")
        if not 0.0 < self.breaker_failure_rate <= 1.0:
            raise PipelineError("breaker_failure_rate must be within (0, 1]")
        if self.breaker_min_calls < 1:
            raise PipelineError("breaker_min_calls must be at least 1")
        if self.breaker_recovery_s < 0:
            raise PipelineError("breaker_recovery_s cannot be negative")
        if self.breaker_probes < 1:
            raise PipelineError("breaker_probes must be at least 1")
        if self.llm_hedge_delay_s is not None and self.llm_hedge_delay_s < 0:
            raise PipelineError("llm_hedge_delay_s cannot be negative")
        if not 0.0 < self.llm_hedge_percentile < 1.0:
            raise PipelineError("llm_hedge_percentile must be within (0, 1)")
        if self.llm_hedge_min_samples < 1:
            raise PipelineError("llm_hedge_min_samples must be at least 1")
        if self.task is AnnotationTask.NL_TO_SQL:
            raise PipelineError(
                "NL_TO_SQL annotation is future work in the paper and not supported yet"
            )

    def retry_policy(self) -> "RetryPolicy":
        """The :class:`~repro.llm.base.RetryPolicy` these knobs describe."""
        from repro.llm.base import RetryPolicy

        return RetryPolicy(
            max_attempts=self.llm_max_attempts,
            base_delay=self.llm_retry_base_delay,
            max_delay=self.llm_retry_max_delay,
            jitter=self.llm_retry_jitter,
            call_timeout=self.llm_call_timeout,
            retry_budget_s=self.llm_retry_budget_s,
        )

    def circuit_breaker(
        self, on_transition: "Callable[[str, str], None] | None" = None
    ) -> "CircuitBreaker | None":
        """A :class:`~repro.llm.resilience.CircuitBreaker` per these knobs,
        or ``None`` when breaking is disabled."""
        if not self.breaker_enabled:
            return None
        from repro.llm.resilience import CircuitBreaker

        return CircuitBreaker(
            window=self.breaker_window,
            failure_rate=self.breaker_failure_rate,
            min_calls=self.breaker_min_calls,
            recovery_timeout=self.breaker_recovery_s,
            probe_budget=self.breaker_probes,
            on_transition=on_transition,
        )

    def hedge_policy(self) -> "HedgePolicy | None":
        """A :class:`~repro.llm.resilience.HedgePolicy` per these knobs, or
        ``None`` when hedging is disabled."""
        if not self.llm_hedge_enabled:
            return None
        from repro.llm.resilience import HedgePolicy

        return HedgePolicy(
            delay_s=self.llm_hedge_delay_s,
            percentile=self.llm_hedge_percentile,
            min_samples=self.llm_hedge_min_samples,
        )

    def to_dict(self) -> dict:
        """JSON-safe representation (journal / snapshot serialisation)."""
        state = asdict(self)
        state["task"] = self.task.value
        return state

    @classmethod
    def from_dict(cls, state: dict) -> "TaskConfig":
        """Rebuild a configuration from :meth:`to_dict` output.

        Unknown keys are ignored so journals written by newer versions stay
        replayable by older code, and vice versa missing keys fall back to
        defaults.
        """
        known = {field.name for field in fields(cls)}
        kwargs = {key: value for key, value in state.items() if key in known}
        if "task" in kwargs:
            kwargs["task"] = AnnotationTask(kwargs["task"])
        return cls(**kwargs)

    def describe(self) -> str:
        """One-line summary used in logs and exports."""
        features = []
        if self.rag_enabled:
            features.append("rag")
        if self.decomposition_enabled:
            features.append("decomposition")
        if self.knowledge_feedback_enabled:
            features.append("knowledge")
        return (
            f"{self.task.value} with {self.model_name}, {self.num_candidates} candidates"
            f" [{', '.join(features) or 'no assistance'}]"
        )
