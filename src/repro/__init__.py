"""BenchPress reproduction: human-in-the-loop SQL-to-NL benchmark curation.

The package mirrors the system described in *BenchPress: A Human-in-the-Loop
Annotation System for Rapid Text-to-SQL Benchmark Curation* (CIDR 2026):

* :mod:`repro.core` — the annotation system itself (workspaces, ingestion,
  the annotation loop, feedback, export),
* :mod:`repro.sql` / :mod:`repro.engine` / :mod:`repro.schema` — the SQL
  front-end, in-memory execution engine, and schema substrate,
* :mod:`repro.retrieval` / :mod:`repro.llm` — the RAG component and the
  deterministic simulated LLM,
* :mod:`repro.workloads` — synthetic Spider/Bird/Fiben/Beaver workloads,
* :mod:`repro.study` / :mod:`repro.evaluation` / :mod:`repro.metrics` /
  :mod:`repro.reporting` — the experiment harnesses reproducing the paper's
  tables and figures.

Quickstart::

    from repro.core import Workspace
    workspace = Workspace("analyst")
    project = workspace.create_project_from_benchmark("demo", "Beaver", query_count=10)
    record = project.pipeline.annotate(project.pending_queries[0])
    print(record.nl)
"""

from repro.core import (
    AnnotationPipeline,
    Feedback,
    FeedbackAction,
    TaskConfig,
    Workspace,
    export_benchmark_json,
)
from repro.engine import Database
from repro.llm import KnowledgeBase, SimulatedLLM
from repro.retrieval import ContextRetriever, ExampleStore
from repro.schema import DatabaseSchema
from repro.workloads import build_all_benchmarks, build_benchmark

__version__ = "1.0.0"

__all__ = [
    "AnnotationPipeline",
    "ContextRetriever",
    "Database",
    "DatabaseSchema",
    "ExampleStore",
    "Feedback",
    "FeedbackAction",
    "KnowledgeBase",
    "SimulatedLLM",
    "TaskConfig",
    "Workspace",
    "__version__",
    "build_all_benchmarks",
    "build_benchmark",
    "export_benchmark_json",
]
