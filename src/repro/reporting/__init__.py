"""Text renderers for the paper's tables and figures."""

from repro.reporting.tables import (
    format_table,
    render_figure1,
    render_figure4,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
)

__all__ = [
    "format_table",
    "render_figure1",
    "render_figure4",
    "render_table1",
    "render_table2",
    "render_table3",
    "render_table4",
]
