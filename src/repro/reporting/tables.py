"""Plain-text renderers that print the paper's tables and figures.

Every benchmark harness ends with one of these renderers so that running a
bench prints the same rows/series the paper reports, ready for side-by-side
comparison with the published numbers.
"""

from __future__ import annotations

from repro.metrics.complexity import RelativeRow, TABLE1_METRICS, TABLE2_METRICS
from repro.study.analysis import (
    AccuracyTable,
    BacktranslationFigure,
    CONDITION_ORDER,
    LatencyTable,
)


def format_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Render a simple fixed-width text table."""
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: list[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def _arrow(value: float) -> str:
    if value == 0:
        return "0.0%"
    direction = "^" if value > 0 else "v"
    return f"{direction}{abs(value) * 100:.1f}%"


def render_table1(
    baseline_name: str,
    baseline_averages: dict[str, float],
    rows: list[RelativeRow],
) -> str:
    """Render Table 1 (query-level complexity) in the paper's layout."""
    headers = ["Query Sets", "#Keywords", "#Tokens", "#Tables", "#Columns", "#Agg", "#Nestings"]
    table_rows: list[list[str]] = []
    table_rows.append(
        [f"{baseline_name} (DW)"]
        + [f"{baseline_averages[key]:.1f}" for key in TABLE1_METRICS]
    )
    for row in rows:
        if row.name == baseline_name:
            continue
        table_rows.append([row.name] + [_arrow(row.relative[key]) for key in TABLE1_METRICS])
    return format_table(headers, table_rows, title="Table 1: Query-level complexity metrics")


def render_table2(
    baseline_name: str,
    baseline_profile: dict[str, float],
    rows: list[RelativeRow],
) -> str:
    """Render Table 2 (data-level complexity) in the paper's layout."""
    headers = [
        "Data Sets", "Columns/Table", "Rows/Table", "Table/DB", "Uniqueness", "Sparsity", "Data Types",
    ]
    table_rows: list[list[str]] = []
    baseline_cells = [
        f"{baseline_profile['columns_per_table']:.1f}",
        f"{baseline_profile['rows_per_table']:.0f}",
        f"{baseline_profile['tables_per_db']:.0f}",
        f"{baseline_profile['uniqueness'] * 100:.1f}%",
        f"{baseline_profile['sparsity'] * 100:.1f}%",
        f"{baseline_profile['data_types']:.0f}",
    ]
    table_rows.append([f"{baseline_name} (DW)"] + baseline_cells)
    for row in rows:
        if row.name == baseline_name:
            continue
        table_rows.append([row.name] + [_arrow(row.relative[key]) for key in TABLE2_METRICS])
    return format_table(headers, table_rows, title="Table 2: Data-level complexity metrics")


def render_table3(table: AccuracyTable) -> str:
    """Render Table 3 (annotation accuracy by condition)."""
    headers = ["Avg Accuracy", "BenchPress", "Vanilla LLM", "Manual"]
    rows: list[list[str]] = []
    for dataset, scores in sorted(table.per_dataset.items()):
        rows.append(
            [dataset] + [f"{scores[condition] * 100:.1f}%" for condition in CONDITION_ORDER]
        )
    rows.append(
        ["Overall"] + [f"{table.overall[condition] * 100:.1f}%" for condition in CONDITION_ORDER]
    )
    return format_table(headers, rows, title="Table 3: Annotation accuracy")


def render_table4(table: LatencyTable) -> str:
    """Render Table 4 (annotation latency by condition, minutes)."""
    headers = ["Avg Latency", "BenchPress", "Vanilla LLM", "Manual"]
    rows: list[list[str]] = []
    for dataset, scores in sorted(table.per_dataset.items()):
        rows.append(
            [dataset] + [f"{scores[condition]:.1f} min" for condition in CONDITION_ORDER]
        )
    rows.append(
        ["Total"] + [f"{table.total[condition]:.1f} min" for condition in CONDITION_ORDER]
    )
    return format_table(headers, rows, title="Table 4: Average annotation latency")


def render_figure4(figure: BacktranslationFigure) -> str:
    """Render Figure 4 (backtranslation clarity-level histogram) as text bars."""
    lines = ["Figure 4: Clarity of backtranslation (level 1-5 counts per condition)"]
    for condition in CONDITION_ORDER:
        histogram = figure.distribution.get(condition, {})
        lines.append(f"  {condition.value} (mean level {figure.mean_level.get(condition, 0.0):.2f})")
        for level in range(1, 6):
            count = histogram.get(level, 0)
            lines.append(f"    level {level}: {'#' * count} ({count})")
    return "\n".join(lines)


def render_figure1(
    scores: dict[str, dict[str, float]], best_models: dict[str, str] | None = None
) -> str:
    """Render Figure 1 (execution accuracy per model per benchmark).

    Args:
        scores: model -> benchmark -> accuracy.
        best_models: benchmark -> name of the per-benchmark best model.
    """
    benchmarks: list[str] = []
    for series in scores.values():
        for benchmark in series:
            if benchmark not in benchmarks:
                benchmarks.append(benchmark)
    headers = ["Model"] + benchmarks
    rows = [
        [model] + [f"{series.get(benchmark, 0.0) * 100:.1f}%" for benchmark in benchmarks]
        for model, series in scores.items()
    ]
    title = "Figure 1: Execution accuracy across benchmarks"
    text = format_table(headers, rows, title=title)
    if best_models:
        annotations = ", ".join(f"{bench}: {model}" for bench, model in best_models.items())
        text += f"\nBest model per benchmark: {annotations}"
    return text
