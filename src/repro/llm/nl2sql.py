"""Rule-based NL-to-SQL generation (backtranslation).

The paper evaluates annotation fidelity by asking a *vanilla* LLM to
regenerate SQL from the natural-language description alone and grading the
result on a 5-level rubric (§5.2).  This module plays the role of that
vanilla LLM: it parses the description for the phrasing produced by
:mod:`repro.llm.sql2nl` (and by the simulated human annotators, who use the
same phrase inventory), links the mentioned entities back to the schema, and
assembles a SQL query.

Whatever information was dropped from the description is irrecoverable here,
so round-trip quality is a direct function of annotation completeness —
exactly the property the backtranslation experiment measures.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.schema.linking import split_identifier
from repro.schema.model import ColumnSchema, DatabaseSchema, TableSchema
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    BinaryOperator,
    ColumnRef,
    Expression,
    FunctionCall,
    IsNull,
    InList,
    Join,
    JoinType,
    Like,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    TableRef,
)
from repro.sql.printer import print_select


_AGGREGATE_PATTERNS: list[tuple[str, str]] = [
    (r"the number of distinct ([a-z0-9 ]+?)(?=,| and | from |$)", "COUNT_DISTINCT"),
    (r"the number of (?!distinct )([a-z0-9 ]+?)(?=,| and | from |$)", "COUNT"),
    (r"the total ([a-z0-9 ]+?)(?=,| and | from |$)", "SUM"),
    (r"the average ([a-z0-9 ]+?)(?=,| and | from |$)", "AVG"),
    (r"the maximum ([a-z0-9 ]+?)(?=,| and | from |$)", "MAX"),
    (r"the minimum ([a-z0-9 ]+?)(?=,| and | from |$)", "MIN"),
    (r"the median ([a-z0-9 ]+?)(?=,| and | from |$)", "MEDIAN"),
    (r"the standard deviation of ([a-z0-9 ]+?)(?=,| and | from |$)", "STDDEV"),
]

_COMPARISON_PATTERNS: list[tuple[str, BinaryOperator]] = [
    (r"is not equal to", BinaryOperator.NEQ),
    (r"is at least", BinaryOperator.GTE),
    (r"is at most", BinaryOperator.LTE),
    (r"is greater than", BinaryOperator.GT),
    (r"is less than", BinaryOperator.LT),
    (r"equals", BinaryOperator.EQ),
]


@dataclass
class BacktranslationResult:
    """Result of regenerating SQL from an NL description."""

    sql: str | None
    select: Select | None = None
    matched_tables: list[str] = field(default_factory=list)
    matched_columns: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def produced_sql(self) -> bool:
        """Whether any SQL could be generated at all."""
        return self.sql is not None


class NLToSQLGenerator:
    """Regenerates SQL from NL descriptions against a known schema.

    Args:
        schema: Schema to link entities against.
        skill: In [0, 1]; controls how well ambiguous entity mentions are
            resolved.  At skill 1.0 ties are broken in favour of tables
            already selected by other evidence; at lower skill the generator
            keeps the first lexical match, which on enterprise schemas with
            duplicated column names produces the structural mistakes the
            paper's Level 2–3 categories describe.
    """

    def __init__(self, schema: DatabaseSchema, skill: float = 1.0) -> None:
        self._schema = schema
        self.skill = max(0.0, min(1.0, skill))
        self._literal_case_map: dict[str, str] = {}

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def generate(self, description: str) -> BacktranslationResult:
        """Generate SQL from one NL description."""
        # Structure matching happens on lower-cased text, but string literals
        # must keep their original case (execution comparisons are
        # case-sensitive), so remember the original spelling of every quoted
        # value before lower-casing.
        self._literal_case_map = {
            literal.lower(): literal for literal in re.findall(r"'([^']*)'", description)
        }
        text = " " + re.sub(r"\s+", " ", description.strip().lower()).rstrip(".") + " "
        result = BacktranslationResult(sql=None)

        tables = self._find_tables(text)
        result.matched_tables = [table.name for table in tables]

        group_columns = self._find_group_columns(text, tables)
        aggregates = self._find_aggregates(text, tables)
        projections = self._find_projections(text, tables, aggregates, group_columns)
        filters = self._find_filters(text, tables)
        having = self._find_having(text)
        order_items = self._find_order(text, tables)
        limit = self._find_limit(text)
        distinct = "only distinct results are kept" in text

        if not tables:
            # Without any table evidence the vanilla model cannot produce a
            # runnable query; emit nothing (rubric Level 1).
            result.notes.append("no table could be identified from the description")
            return result

        select = Select()
        select.distinct = distinct
        select.from_relation = self._build_from(tables)

        for column in group_columns:
            select.group_by.append(ColumnRef(name=column.name))
            select.select_items.append(SelectItem(expression=ColumnRef(name=column.name)))

        for function, column in aggregates:
            if function == "COUNT_DISTINCT":
                expression: Expression = FunctionCall(
                    name="COUNT",
                    args=[ColumnRef(name=column.name) if column else Star()],
                    distinct=True,
                )
            else:
                expression = FunctionCall(
                    name=function,
                    args=[ColumnRef(name=column.name)] if column else [Star()],
                )
            select.select_items.append(SelectItem(expression=expression))

        for column in projections:
            select.select_items.append(SelectItem(expression=ColumnRef(name=column.name)))

        if not select.select_items:
            select.select_items.append(SelectItem(expression=Star()))

        where: Expression | None = None
        for condition in filters:
            where = condition if where is None else BinaryOp(
                op=BinaryOperator.AND, left=where, right=condition
            )
        select.where = where
        select.having = having
        select.order_by = order_items
        select.limit = limit

        result.select = select
        result.sql = print_select(select)
        result.matched_columns = [
            column.name for column in group_columns + projections
        ] + [column.name for _, column in aggregates if column is not None]
        return result

    # ------------------------------------------------------------------
    # entity linking helpers
    # ------------------------------------------------------------------

    def _find_tables(self, text: str) -> list[TableSchema]:
        tables: list[TableSchema] = []
        seen: set[str] = set()
        for match in re.finditer(r"the ([a-z0-9 ]+?) tables?", text):
            phrase = match.group(1).strip()
            table = self._match_table(phrase)
            if table is not None and table.name.lower() not in seen:
                seen.add(table.name.lower())
                tables.append(table)
        if not tables:
            # Fall back to fuzzy linking over the whole description.
            from repro.schema.linking import link_text_to_schema

            linked = link_text_to_schema(text, self._schema, max_tables=2)
            for name in linked.tables:
                if name.lower() not in seen:
                    seen.add(name.lower())
                    tables.append(self._schema.table(name))
        return tables

    def _match_table(self, phrase: str) -> TableSchema | None:
        phrase_tokens = set(phrase.split())
        best: TableSchema | None = None
        best_score = 0.0
        for table in self._schema.tables:
            table_tokens = set(split_identifier(table.name))
            if not table_tokens:
                continue
            overlap = len(phrase_tokens & table_tokens)
            if overlap == 0:
                continue
            score = overlap / len(table_tokens | phrase_tokens)
            if score > best_score:
                best_score = score
                best = table
        return best

    def _match_column(
        self, phrase: str, tables: list[TableSchema]
    ) -> ColumnSchema | None:
        phrase_tokens = set(phrase.split()) - {"the", "a", "an", "of"}
        if not phrase_tokens:
            return None

        def score_columns(candidates: list[tuple[TableSchema, ColumnSchema]]):
            best_local: ColumnSchema | None = None
            best_score = 0.0
            for _, column in candidates:
                column_tokens = set(split_identifier(column.name))
                if not column_tokens:
                    continue
                overlap = len(phrase_tokens & column_tokens)
                if overlap == 0:
                    continue
                score = overlap / len(column_tokens | phrase_tokens)
                if score > best_score:
                    best_score = score
                    best_local = column
            return best_local, best_score

        # High skill: prefer columns from the already-identified tables
        # (disambiguates duplicated enterprise column names).
        in_scope = [(table, column) for table in tables for column in table.columns]
        everywhere = [
            (table, column) for table in self._schema.tables for column in table.columns
        ]
        if self.skill >= 0.5:
            column, score = score_columns(in_scope)
            if column is not None and score > 0:
                return column
            column, _ = score_columns(everywhere)
            return column
        column, _ = score_columns(everywhere)
        return column

    # ------------------------------------------------------------------
    # clause extraction
    # ------------------------------------------------------------------

    def _find_group_columns(self, text: str, tables: list[TableSchema]) -> list[ColumnSchema]:
        columns: list[ColumnSchema] = []
        match = re.search(r"for (each [a-z0-9 ,]+?), (?:find|the)", text)
        if not match:
            return columns
        section = match.group(1)
        for phrase in re.findall(r"each ([a-z0-9 ]+?)(?=,| and |$)", section):
            column = self._match_column(phrase.strip(), tables)
            if column is not None and column.name not in [c.name for c in columns]:
                columns.append(column)
        return columns

    @staticmethod
    def _lead_segment(text: str) -> str:
        """The projection segment of the description (before the FROM phrase)."""
        cut = text.find(" from ")
        return text[:cut] if cut >= 0 else text

    def _find_aggregates(
        self, text: str, tables: list[TableSchema]
    ) -> list[tuple[str, ColumnSchema | None]]:
        found: list[tuple[int, str, ColumnSchema | None]] = []
        text = self._lead_segment(text)
        for pattern, function in _AGGREGATE_PATTERNS:
            for match in re.finditer(pattern, text):
                phrase = match.group(1).strip()
                if phrase in ("rows", "distinct rows", "records"):
                    found.append((match.start(), function, None))
                    continue
                column = self._match_column(phrase, tables)
                found.append((match.start(), function, column))
        found.sort(key=lambda item: item[0])
        return [(function, column) for _, function, column in found]

    def _find_projections(
        self,
        text: str,
        tables: list[TableSchema],
        aggregates: list[tuple[str, ColumnSchema | None]],
        group_columns: list[ColumnSchema] | None = None,
    ) -> list[ColumnSchema]:
        projections: list[ColumnSchema] = []
        aggregate_names = {column.name for _, column in aggregates if column is not None}
        aggregate_names.update(column.name for column in (group_columns or []))
        match = re.search(r"find (.*?)(?: from | considering |$)", self._lead_segment(text))
        if not match:
            return projections
        section = match.group(1)
        # Remove aggregate phrases so their argument columns are not re-added.
        for pattern, _ in _AGGREGATE_PATTERNS:
            section = re.sub(pattern, " ", section)
        for phrase in re.findall(r"the ([a-z0-9 ]+?)(?=,| and |$)", section):
            phrase = phrase.strip()
            if not phrase or phrase in ("requested values", "relevant values"):
                continue
            column = self._match_column(phrase, tables)
            if column is None:
                continue
            if column.name in aggregate_names:
                continue
            if column.name not in [c.name for c in projections]:
                projections.append(column)
        return projections

    def _find_filters(self, text: str, tables: list[TableSchema]) -> list[Expression]:
        filters: list[Expression] = []
        match = re.search(
            r"considering only rows where (.*?)"
            r"(?:, only groups where|, sorted by|, limited to|, only distinct|, combined with|$)",
            text,
        )
        if not match:
            return filters
        section = match.group(1)
        for clause in re.split(r"; and ", section):
            condition = self._parse_condition(clause.strip(), tables)
            if condition is not None:
                filters.append(condition)
        return filters

    def _parse_condition(self, clause: str, tables: list[TableSchema]) -> Expression | None:
        clause = clause.strip().rstrip(".")
        if not clause:
            return None

        # IN-subquery: "the X is among the results of a subquery that ...".
        in_subquery = re.search(
            r"the ([a-z0-9 ]+?) is (not )?among the results of a subquery that (.+)$", clause
        )
        if in_subquery:
            column = self._match_column(in_subquery.group(1).strip(), tables)
            inner = self._generate_subquery(in_subquery.group(3))
            if column is not None and inner is not None:
                from repro.sql.ast_nodes import InSubquery

                return InSubquery(
                    operand=ColumnRef(name=column.name),
                    subquery=inner,
                    negated=bool(in_subquery.group(2)),
                )
            return None

        # Scalar-subquery comparison: "the X is greater than the result of a subquery that ...".
        for phrase, operator in _COMPARISON_PATTERNS:
            scalar = re.search(
                rf"the ([a-z0-9 ]+?) {phrase} the result of a subquery that (.+)$", clause
            )
            if scalar:
                column = self._match_column(scalar.group(1).strip(), tables)
                inner = self._generate_subquery(scalar.group(2))
                if column is not None and inner is not None:
                    from repro.sql.ast_nodes import ScalarSubquery

                    return BinaryOp(
                        op=operator,
                        left=ColumnRef(name=column.name),
                        right=ScalarSubquery(query=inner),
                    )
                return None

        # LIKE family.
        like_match = re.search(
            r"the ([a-z0-9 ]+?) (starts with|ends with|contains|does not start with|"
            r"does not end with|does not contain) '([^']*)'",
            clause,
        )
        if like_match:
            column = self._match_column(like_match.group(1).strip(), tables)
            if column is None:
                return None
            verb = like_match.group(2)
            value = like_match.group(3)
            value = self._literal_case_map.get(value, value)
            negated = verb.startswith("does not")
            if "start" in verb:
                pattern = f"{value}%"
            elif "end" in verb:
                pattern = f"%{value}"
            else:
                pattern = f"%{value}%"
            return Like(
                operand=ColumnRef(name=column.name),
                pattern=Literal(pattern),
                negated=negated,
            )

        # BETWEEN.
        between_match = re.search(
            r"the ([a-z0-9 ]+?) is (not )?between ([^ ]+) and ([^ ]+)", clause
        )
        if between_match:
            column = self._match_column(between_match.group(1).strip(), tables)
            if column is None:
                return None
            return Between(
                operand=ColumnRef(name=column.name),
                low=Literal(_parse_value(between_match.group(3), self._literal_case_map)),
                high=Literal(_parse_value(between_match.group(4), self._literal_case_map)),
                negated=bool(between_match.group(2)),
            )

        # IS NULL family.
        null_match = re.search(r"the ([a-z0-9 ]+?) is (not )?missing", clause)
        if null_match:
            column = self._match_column(null_match.group(1).strip(), tables)
            if column is None:
                return None
            return IsNull(operand=ColumnRef(name=column.name), negated=bool(null_match.group(2)))

        # IN-list.
        in_match = re.search(r"the ([a-z0-9 ]+?) is (not )?one of (.+)", clause)
        if in_match:
            column = self._match_column(in_match.group(1).strip(), tables)
            if column is None:
                return None
            values = [
                Literal(_parse_value(value.strip(), self._literal_case_map))
                for value in re.split(r", | and ", in_match.group(3))
                if value.strip()
            ]
            if not values:
                return None
            return InList(
                operand=ColumnRef(name=column.name), values=values, negated=bool(in_match.group(2))
            )

        # Plain comparisons.
        for phrase, operator in _COMPARISON_PATTERNS:
            comparison_match = re.search(
                rf"the ([a-z0-9 ]+?) {phrase} ('[^']*'|[0-9.]+|[a-z0-9 ]+)", clause
            )
            if comparison_match:
                column = self._match_column(comparison_match.group(1).strip(), tables)
                if column is None:
                    return None
                raw_value = comparison_match.group(2).strip()
                right: Expression
                other_column = None
                if not raw_value.startswith("'") and not re.fullmatch(r"[0-9.]+", raw_value):
                    other_column = self._match_column(raw_value, tables)
                if other_column is not None:
                    right = ColumnRef(name=other_column.name)
                else:
                    right = Literal(_parse_value(raw_value, self._literal_case_map))
                return BinaryOp(op=operator, left=ColumnRef(name=column.name), right=right)
        return None

    def _generate_subquery(self, description: str) -> Select | None:
        """Recursively regenerate a subquery from its clause-level description."""
        if getattr(self, "_subquery_depth", 0) >= 3:
            return None
        self._subquery_depth = getattr(self, "_subquery_depth", 0) + 1
        try:
            nested = NLToSQLGenerator(self._schema, skill=self.skill)
            nested._subquery_depth = self._subquery_depth
            result = nested.generate(description)
        finally:
            self._subquery_depth -= 1
        return result.select

    def _find_having(self, text: str) -> Expression | None:
        """Parse the HAVING phrase produced by the describer (COUNT(*) thresholds)."""
        match = re.search(
            r"only groups where (?:the )+number of rows is at least (\d+) are kept", text
        )
        if not match:
            return None
        return BinaryOp(
            op=BinaryOperator.GTE,
            left=FunctionCall(name="COUNT", args=[Star()]),
            right=Literal(int(match.group(1))),
        )

    def _find_order(self, text: str, tables: list[TableSchema]) -> list[OrderItem]:
        items: list[OrderItem] = []
        for match in re.finditer(
            r"sorted by ([a-z0-9 ]+?) in (ascending|descending) order", text
        ):
            column = self._match_column(match.group(1).strip(), tables)
            if column is None:
                continue
            items.append(
                OrderItem(
                    expression=ColumnRef(name=column.name),
                    ascending=match.group(2) == "ascending",
                )
            )
        return items

    @staticmethod
    def _find_limit(text: str) -> int | None:
        match = re.search(r"limited to the first (\d+) rows", text)
        if match:
            return int(match.group(1))
        match = re.search(r"top (\d+)", text)
        if match:
            return int(match.group(1))
        return None

    # ------------------------------------------------------------------
    # FROM construction
    # ------------------------------------------------------------------

    def _build_from(self, tables: list[TableSchema]):
        relation = TableRef(name=tables[0].name)
        current_tables = [tables[0]]
        result = relation
        for table in tables[1:]:
            condition = self._join_condition(current_tables, table)
            result = Join(
                join_type=JoinType.INNER if condition is not None else JoinType.CROSS,
                left=result,
                right=TableRef(name=table.name),
                condition=condition,
            )
            current_tables.append(table)
        return result

    def _join_condition(
        self, existing: list[TableSchema], new_table: TableSchema
    ) -> Expression | None:
        # Use declared foreign keys in either direction.
        for table in existing:
            for foreign_key in table.foreign_keys:
                if foreign_key.referenced_table.lower() == new_table.name.lower():
                    return BinaryOp(
                        op=BinaryOperator.EQ,
                        left=ColumnRef(name=foreign_key.column, table=table.name),
                        right=ColumnRef(name=foreign_key.referenced_column, table=new_table.name),
                    )
            for foreign_key in new_table.foreign_keys:
                if foreign_key.referenced_table.lower() == table.name.lower():
                    return BinaryOp(
                        op=BinaryOperator.EQ,
                        left=ColumnRef(name=foreign_key.column, table=new_table.name),
                        right=ColumnRef(name=foreign_key.referenced_column, table=table.name),
                    )
        # Fall back to equating identically named columns (common enterprise idiom).
        for table in existing:
            for column in table.columns:
                if new_table.has_column(column.name):
                    return BinaryOp(
                        op=BinaryOperator.EQ,
                        left=ColumnRef(name=column.name, table=table.name),
                        right=ColumnRef(name=column.name, table=new_table.name),
                    )
        return None


def _parse_value(raw: str, case_map: dict[str, str] | None = None) -> object:
    raw = raw.strip()
    if raw in ("true", "false"):
        return raw == "true"
    if raw.startswith("'") and raw.endswith("'"):
        inner = raw[1:-1]
        if case_map and inner in case_map:
            return case_map[inner]
        return inner
    try:
        if "." in raw:
            return float(raw)
        return int(raw)
    except ValueError:
        if case_map and raw in case_map:
            return case_map[raw]
        return raw
