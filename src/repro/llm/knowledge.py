"""Domain-knowledge base used by the feedback loop (paper step 6).

Annotators can inject external domain knowledge ("Moira is the mailing system
for newsletters", "J-term is the one-month January term") and highlight common
failure patterns.  Captured knowledge is automatically re-used in every later
prompt, so the same fact never has to be looked up twice — one of the explicit
contributions discussed in §6 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.retrieval.text import tokenize_text


@dataclass
class KnowledgeEntry:
    """One piece of injected domain knowledge."""

    term: str
    explanation: str
    source: str = "annotator"  # "annotator" or "seed"
    uses: int = 0

    def matches(self, text: str) -> bool:
        """Whether the knowledge term occurs in (tokenised) text."""
        term_tokens = set(tokenize_text(self.term))
        if not term_tokens:
            return False
        text_tokens = set(tokenize_text(text))
        return term_tokens.issubset(text_tokens)


@dataclass
class FailurePattern:
    """A recurring mistake the model makes, highlighted by an annotator."""

    description: str
    guidance: str


class KnowledgeBase:
    """Accumulates domain knowledge and failure patterns across a session."""

    def __init__(self) -> None:
        self._entries: list[KnowledgeEntry] = []
        self._failure_patterns: list[FailurePattern] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> list[KnowledgeEntry]:
        """All knowledge entries in insertion order."""
        return list(self._entries)

    @property
    def failure_patterns(self) -> list[FailurePattern]:
        """All recorded failure patterns."""
        return list(self._failure_patterns)

    def add(self, term: str, explanation: str, source: str = "annotator") -> KnowledgeEntry:
        """Add (or update) a knowledge entry for a domain term."""
        term = term.strip()
        explanation = explanation.strip()
        for entry in self._entries:
            if entry.term.lower() == term.lower():
                entry.explanation = explanation
                return entry
        entry = KnowledgeEntry(term=term, explanation=explanation, source=source)
        self._entries.append(entry)
        return entry

    def add_failure_pattern(self, description: str, guidance: str) -> FailurePattern:
        """Record a failure pattern with guidance on how to avoid it."""
        pattern = FailurePattern(description=description.strip(), guidance=guidance.strip())
        self._failure_patterns.append(pattern)
        return pattern

    def lookup(self, term: str) -> KnowledgeEntry | None:
        """Exact (case-insensitive) lookup of a term."""
        for entry in self._entries:
            if entry.term.lower() == term.lower():
                return entry
        return None

    def relevant_entries(self, text: str, limit: int = 5) -> list[KnowledgeEntry]:
        """Knowledge entries whose term appears in ``text`` (SQL or NL)."""
        matches = [entry for entry in self._entries if entry.matches(text)]
        for entry in matches:
            entry.uses += 1
        return matches[:limit]

    def render_for_prompt(self, text: str) -> str:
        """Render the relevant knowledge as prompt lines ('' when none apply)."""
        entries = self.relevant_entries(text)
        lines = [f"- {entry.term}: {entry.explanation}" for entry in entries]
        lines.extend(
            f"- Avoid: {pattern.description} ({pattern.guidance})"
            for pattern in self._failure_patterns
        )
        return "\n".join(lines)

    def state_dict(self) -> dict:
        """JSON-safe state of the knowledge base (snapshot support)."""
        return {
            "entries": [
                {
                    "term": entry.term,
                    "explanation": entry.explanation,
                    "source": entry.source,
                    "uses": entry.uses,
                }
                for entry in self._entries
            ],
            "failure_patterns": [
                {"description": pattern.description, "guidance": pattern.guidance}
                for pattern in self._failure_patterns
            ],
        }

    def load_state(self, state: dict) -> None:
        """Restore a snapshotted knowledge base in place."""
        self._entries = [
            KnowledgeEntry(
                term=entry["term"],
                explanation=entry["explanation"],
                source=entry.get("source", "annotator"),
                uses=entry.get("uses", 0),
            )
            for entry in state["entries"]
        ]
        self._failure_patterns = [
            FailurePattern(
                description=pattern["description"], guidance=pattern["guidance"]
            )
            for pattern in state["failure_patterns"]
        ]

    def coverage(self, text: str) -> float:
        """Fraction of domain-specific tokens in ``text`` explained by the KB.

        Used by the simulated LLM to decide how much the injected knowledge
        improves candidate fidelity for a particular query.
        """
        if not self._entries:
            return 0.0
        text_tokens = set(tokenize_text(text))
        if not text_tokens:
            return 0.0
        explained: set[str] = set()
        for entry in self._entries:
            term_tokens = set(tokenize_text(entry.term))
            if term_tokens & text_tokens:
                explained.update(term_tokens & text_tokens)
        return len(explained) / len(text_tokens)
