"""Prompt construction for candidate generation (paper steps 4–5).

BenchPress builds a retrieval-augmented few-shot prompt for each SQL query:
the relevant tables are always included, the top-k retrieved examples are
offered as few-shot guidance, and any injected domain knowledge or annotator
priorities are appended.  The structured :class:`Prompt` object is what the
simulated LLM consumes; :meth:`Prompt.render` produces the equivalent textual
prompt (useful for inspection, tests and prompt-length accounting).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.llm.knowledge import KnowledgeBase
from repro.retrieval.retriever import RetrievedContext


@dataclass
class Prompt:
    """A structured prompt for SQL-to-NL candidate generation."""

    sql: str
    task: str = "sql_to_nl"
    schema_text: str = ""
    table_names: list[str] = field(default_factory=list)
    examples: list[tuple[str, str]] = field(default_factory=list)  # (sql, nl)
    knowledge: str = ""
    priorities: list[str] = field(default_factory=list)
    num_candidates: int = 4
    ambiguous_columns: dict[str, list[str]] = field(default_factory=dict)
    #: Optional pre-parsed AST of :attr:`sql`.  Purely an optimisation hint
    #: (backends may use it to skip re-parsing); excluded from equality so
    #: prompts compare on content alone.
    ast: object | None = field(default=None, compare=False, repr=False)

    def render(self) -> str:
        """Render the prompt as text (few-shot, instruction-first)."""
        sections: list[str] = [
            "You are helping annotate enterprise SQL logs.",
            "Write a natural language description of the SQL query below.",
            "Describe every selected column, every calculation, and every filter,",
            "grouping and ordering operation, so a reader could reconstruct the query.",
        ]
        if self.schema_text:
            sections.append("Relevant schema:\n" + self.schema_text)
        if self.ambiguous_columns:
            notes = ", ".join(
                f"{column} (appears in {', '.join(tables)})"
                for column, tables in sorted(self.ambiguous_columns.items())
            )
            sections.append("Ambiguous column names to disambiguate: " + notes)
        if self.knowledge:
            sections.append("Domain knowledge:\n" + self.knowledge)
        if self.priorities:
            sections.append("Annotator priorities:\n" + "\n".join(f"- {p}" for p in self.priorities))
        for index, (sql, nl) in enumerate(self.examples, start=1):
            sections.append(f"Example {index}:\nSQL: {sql}\nDescription: {nl}")
        sections.append(f"SQL: {self.sql}")
        sections.append(f"Produce {self.num_candidates} alternative descriptions.")
        return "\n\n".join(sections)

    @property
    def length_tokens(self) -> int:
        """Approximate prompt length in whitespace tokens."""
        return len(self.render().split())

    @property
    def has_schema_context(self) -> bool:
        """Whether relevant tables were included."""
        return bool(self.schema_text.strip())

    @property
    def has_examples(self) -> bool:
        """Whether few-shot examples were included."""
        return bool(self.examples)

    @property
    def has_knowledge(self) -> bool:
        """Whether domain knowledge was included."""
        return bool(self.knowledge.strip())


class PromptBuilder:
    """Builds prompts from retrieval context, knowledge and feedback state."""

    def __init__(self, num_candidates: int = 4, max_examples: int = 3) -> None:
        self.num_candidates = num_candidates
        self.max_examples = max_examples

    def build(
        self,
        sql: str,
        context: RetrievedContext | None = None,
        knowledge: KnowledgeBase | None = None,
        priorities: list[str] | None = None,
        ast: object | None = None,
    ) -> Prompt:
        """Build a SQL-to-NL prompt.

        When ``context`` is None the prompt degrades to the "vanilla LLM"
        condition of the user study: no schema tables and no examples.
        """
        schema_text = ""
        table_names: list[str] = []
        examples: list[tuple[str, str]] = []
        ambiguous: dict[str, list[str]] = {}
        if context is not None:
            schema_text = context.schema_text()
            table_names = context.table_names
            examples = [
                (example.sql, example.nl) for example in context.examples[: self.max_examples]
            ]
            ambiguous = dict(context.ambiguous_columns)

        knowledge_text = knowledge.render_for_prompt(sql) if knowledge is not None else ""

        return Prompt(
            sql=sql,
            schema_text=schema_text,
            table_names=table_names,
            examples=examples,
            knowledge=knowledge_text,
            priorities=list(priorities or []),
            num_candidates=self.num_candidates,
            ambiguous_columns=ambiguous,
            ast=ast,
        )

    def build_backtranslation(self, nl: str, schema_text: str = "") -> Prompt:
        """Build an NL-to-SQL prompt for the backtranslation evaluation.

        The paper uses a *vanilla* LLM here (no examples, no chain-of-thought)
        so the result reflects the information content of the NL alone.
        """
        return Prompt(
            sql=nl,
            task="nl_to_sql",
            schema_text=schema_text,
            num_candidates=1,
        )
