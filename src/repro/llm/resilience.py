"""Fault-domain hardening primitives for the LLM tier.

Three cooperating pieces, all deterministic and clock-injectable so the
chaos/resilience suites can drive them without real time passing:

* :class:`Deadline` — a monotonic-clock budget carried from
  ``AnnotationService.drain(deadline=...)`` through scheduler rounds into
  every LLM call, shrinking per-call timeouts so a drain never overshoots
  the time it was given.
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine over a rolling failure-rate window.  While open, calls fast-fail
  with :class:`~repro.errors.CircuitOpenError` instead of burning the retry
  budget against a backend that is known to be down; after a recovery
  period a bounded *probe budget* of trial calls decides whether to close
  again.
* :class:`HedgePolicy` — configuration for hedged requests: once the
  primary call has been in flight longer than a latency-percentile-derived
  delay, a backup call is fired and the first answer wins (the loser is
  cancelled or ignored).  Hedging trades duplicate work for tail latency,
  so it is opt-in per project.

The degradation ladder the service builds out of these: retry (transient
error, backoff) → hedge (slow call, duplicate) → breaker-open defer (dead
backend, re-queue the project's jobs) → journaled-read-only degraded mode
(dead disk, stop mutating but keep serving reads).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.errors import PipelineError

__all__ = ["CircuitBreaker", "Deadline", "HedgePolicy"]

#: Breaker state names (also the label values telemetry exposes).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class Deadline:
    """A fixed point in monotonic time that work must finish by.

    Cheap, immutable-after-construction and safe to share across the worker
    threads of a concurrent drain: every reader just compares against the
    clock.  ``clock`` is injectable so tests can step virtual time.
    """

    __slots__ = ("_expires_at", "_clock", "budget")

    def __init__(
        self, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        if seconds < 0:
            raise PipelineError("deadline budget cannot be negative")
        self._clock = clock
        self.budget = float(seconds)
        self._expires_at = clock() + seconds

    @classmethod
    def coerce(
        cls, value: "Deadline | float | int | None"
    ) -> "Deadline | None":
        """Accept ``None``, a seconds budget, or an existing deadline."""
        if value is None or isinstance(value, Deadline):
            return value
        return cls(float(value))

    def remaining(self) -> float:
        """Seconds left before expiry (never negative)."""
        return max(0.0, self._expires_at - self._clock())

    @property
    def expired(self) -> bool:
        """Whether the deadline has passed."""
        return self._clock() >= self._expires_at

    def clamp(self, timeout: float | None) -> float:
        """Shrink a per-call timeout so it cannot outlive the deadline."""
        remaining = self.remaining()
        if timeout is None:
            return remaining
        return min(timeout, remaining)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.3f}s of {self.budget:.3f}s)"


class CircuitBreaker:
    """Per-backend closed → open → half-open breaker with a rate window.

    * **closed** — calls flow; the last ``window`` outcomes are kept and the
      breaker trips open once at least ``min_calls`` of them exist and the
      failure fraction reaches ``failure_rate``.
    * **open** — calls are refused (:meth:`allow` is ``False``) until
      ``recovery_timeout`` seconds have passed since the trip.
    * **half-open** — up to ``probe_budget`` trial calls are admitted; that
      many consecutive successes close the breaker (window cleared), any
      failure re-opens it and restarts the recovery clock.

    All transitions run under an internal lock, so one breaker may guard a
    client shared by several drain workers.  ``on_transition(old, new)`` is
    invoked (outside the hot path but inside the lock) for telemetry.
    """

    def __init__(
        self,
        window: int = 16,
        failure_rate: float = 0.5,
        min_calls: int = 4,
        recovery_timeout: float = 1.0,
        probe_budget: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ) -> None:
        if window < 1:
            raise PipelineError("breaker window must be at least 1")
        if not 0.0 < failure_rate <= 1.0:
            raise PipelineError("breaker failure_rate must be within (0, 1]")
        if min_calls < 1:
            raise PipelineError("breaker min_calls must be at least 1")
        if recovery_timeout < 0:
            raise PipelineError("breaker recovery_timeout cannot be negative")
        if probe_budget < 1:
            raise PipelineError("breaker probe_budget must be at least 1")
        self.window = window
        self.failure_rate = failure_rate
        self.min_calls = min_calls
        self.recovery_timeout = recovery_timeout
        self.probe_budget = probe_budget
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._outcomes: list[bool] = []  # True = failure, bounded by window
        self._opened_at = 0.0
        self._probes_issued = 0
        self._probe_successes = 0
        #: Lifetime transition/outcome accounting (reads are unlocked).
        self.opens = 0
        self.fast_fails = 0

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state name, advancing open → half-open when due."""
        with self._lock:
            self._maybe_enter_half_open()
            return self._state

    def would_allow(self) -> bool:
        """Whether :meth:`allow` would admit a call — without consuming a
        half-open probe slot.  The service uses this to decide up front
        whether a project's waves should even be scheduled."""
        with self._lock:
            self._maybe_enter_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN:
                return self._probes_issued < self.probe_budget
            return False

    def allow(self) -> bool:
        """Admit or refuse one call (refusals bump ``fast_fails``)."""
        with self._lock:
            self._maybe_enter_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and self._probes_issued < self.probe_budget:
                self._probes_issued += 1
                return True
            self.fast_fails += 1
            return False

    def record_success(self) -> None:
        """Fold a successful call outcome into the breaker."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._probe_successes += 1
                if self._probe_successes >= self.probe_budget:
                    self._outcomes.clear()
                    self._transition(CLOSED)
            elif self._state == CLOSED:
                self._push_outcome(False)

    def record_failure(self) -> None:
        """Fold a failed call outcome into the breaker (may trip it)."""
        with self._lock:
            if self._state == HALF_OPEN:
                self._trip()
            elif self._state == CLOSED:
                self._push_outcome(True)
                failures = sum(self._outcomes)
                if (
                    len(self._outcomes) >= self.min_calls
                    and failures / len(self._outcomes) >= self.failure_rate
                ):
                    self._trip()

    # ------------------------------------------------------------------
    # internals (all called with the lock held)
    # ------------------------------------------------------------------

    def _push_outcome(self, failed: bool) -> None:
        self._outcomes.append(failed)
        if len(self._outcomes) > self.window:
            del self._outcomes[0]

    def _trip(self) -> None:
        self._opened_at = self._clock()
        self.opens += 1
        self._transition(OPEN)

    def _maybe_enter_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.recovery_timeout
        ):
            self._probes_issued = 0
            self._probe_successes = 0
            self._transition(HALF_OPEN)

    def _transition(self, new_state: str) -> None:
        old_state = self._state
        if old_state == new_state:
            return
        self._state = new_state
        if self._on_transition is not None:
            self._on_transition(old_state, new_state)


@dataclass(frozen=True)
class HedgePolicy:
    """When and how to fire a backup request behind a slow primary call.

    Attributes:
        delay_s: Fixed hedge delay in seconds.  When ``None`` the delay is
            derived from the client's observed latency distribution.
        percentile: Latency percentile used to derive the delay when
            ``delay_s`` is not fixed — hedge once the primary has been in
            flight longer than this fraction of historical calls.
        min_samples: Observed-latency samples required before a derived
            delay is trusted; until then (and with no fixed delay) calls are
            not hedged.
    """

    delay_s: float | None = None
    percentile: float = 0.95
    min_samples: int = 8

    def __post_init__(self) -> None:
        if self.delay_s is not None and self.delay_s < 0:
            raise PipelineError("hedge delay cannot be negative")
        if not 0.0 < self.percentile < 1.0:
            raise PipelineError("hedge percentile must be within (0, 1)")
        if self.min_samples < 1:
            raise PipelineError("hedge min_samples must be at least 1")

    def resolve_delay(self, latency_samples: list[float]) -> float | None:
        """The hedge delay to use right now, or ``None`` to not hedge."""
        if self.delay_s is not None:
            return self.delay_s
        if len(latency_samples) < self.min_samples:
            return None
        ordered = sorted(latency_samples)
        index = min(len(ordered) - 1, int(self.percentile * len(ordered)))
        return ordered[index]
