"""Deterministic simulated LLM.

The simulation's contract with the rest of the system:

* given a *richer prompt* (relevant schema tables, retrieved examples,
  injected domain knowledge), the generated descriptions retain more of the
  query's facts,
* given a *harder query* (more tables, nesting, aggregation — the enterprise
  profile of Table 1), fidelity degrades,
* everything is deterministic given (model name, SQL text, candidate index),
  so experiments are exactly reproducible.

This mirrors the causal structure behind the paper's findings without calling
any external API.
"""

from __future__ import annotations

import time

from repro.llm.base import (
    GenerationResult,
    LLMClient,
    ModelProfile,
    _stable_unit,
    get_profile,
)
from repro.llm.knowledge import KnowledgeBase
from repro.llm.nl2sql import NLToSQLGenerator
from repro.llm.prompts import Prompt
from repro.llm.sql2nl import describe_facts, describe_query, extract_facts
from repro.schema.ddl_parser import parse_ddl_script
from repro.sql.ast_nodes import Select
from repro.sql.printer import print_select
from repro.schema.model import DatabaseSchema
from repro.sql.analyzer import analyze_query
from repro.sql.parser import parse_select


class SimulatedLLM(LLMClient):
    """Offline stand-in for GPT-4o / GPT-3.5 Turbo / DeepSeek.

    Args:
        model_name: One of the profiles in :data:`repro.llm.base.MODEL_PROFILES`
            (unknown names get a generic mid-tier profile).
        schema: Schema used when backtranslating NL to SQL.  May also be
            derived lazily from the ``schema_text`` passed to
            :meth:`backtranslate`.
        knowledge: Optional knowledge base consulted during generation.
    """

    #: The simulated fidelity model uses the few-shot examples only through
    #: ``min(1, len(examples) / 3)`` — never their text — so batch schedulers
    #: may revalidate speculative generations on example count alone.
    example_content_sensitive = False

    def __init__(
        self,
        model_name: str = "gpt-4o",
        schema: DatabaseSchema | None = None,
        knowledge: KnowledgeBase | None = None,
    ) -> None:
        self.profile: ModelProfile = get_profile(model_name)
        self.name = self.profile.name
        self._schema = schema
        self._knowledge = knowledge
        self.call_count = 0

    # ------------------------------------------------------------------
    # SQL -> NL
    # ------------------------------------------------------------------

    def generate(self, prompt: Prompt) -> GenerationResult:
        """Generate candidate descriptions for the SQL in the prompt."""
        started = time.perf_counter()
        self.call_count += 1
        result = self._generate_one(prompt)
        self.usage.record(
            prompts=1,
            prompt_tokens=result.prompt_tokens,
            candidates=len(result.candidates),
            latency_seconds=time.perf_counter() - started,
        )
        return result

    def generate_batch(self, prompts: list[Prompt]) -> list[GenerationResult]:
        """Generate candidates for a whole wave of prompts in one call.

        This is the genuinely batched path: the call counts as *one* model
        round trip, prompts with identical content are generated once and the
        per-prompt SQL parse is shared across all of that prompt's candidates.
        Outputs are bit-identical to calling :meth:`generate` per prompt.
        """
        if not prompts:
            return []
        started = time.perf_counter()
        self.call_count += 1
        results: list[GenerationResult] = []
        memo: dict[tuple[object, ...], GenerationResult] = {}
        for prompt in prompts:
            key = self._prompt_key(prompt)
            cached = memo.get(key)
            if cached is None:
                cached = self._generate_one(prompt)
                memo[key] = cached
            # Re-wrap so callers mutating one result cannot corrupt another.
            results.append(
                GenerationResult(
                    candidates=list(cached.candidates),
                    model_name=cached.model_name,
                    prompt_tokens=cached.prompt_tokens,
                    metadata=dict(cached.metadata),
                )
            )
        self.usage.record(
            prompts=len(prompts),
            prompt_tokens=sum(result.prompt_tokens for result in results),
            candidates=sum(len(result.candidates) for result in results),
            latency_seconds=time.perf_counter() - started,
            batched=True,
        )
        return results

    @staticmethod
    def _prompt_key(prompt: Prompt) -> tuple[object, ...]:
        """Hashable identity of everything that influences generation."""
        return (
            prompt.sql,
            prompt.task,
            prompt.schema_text,
            tuple(prompt.examples),
            prompt.knowledge,
            tuple(prompt.priorities),
            prompt.num_candidates,
            tuple(sorted((k, tuple(v)) for k, v in prompt.ambiguous_columns.items())),
        )

    def _generate_one(self, prompt: Prompt) -> GenerationResult:
        """Candidate generation shared by the single and batched entry points."""
        fidelity = self.effective_fidelity(prompt)
        candidates: list[str] = []
        knowledge = self._knowledge if prompt.has_knowledge else None
        try:
            # Parse and extract facts once, reused by every candidate; parsing
            # and fact extraction are deterministic, so candidates are
            # identical to the parse-per-candidate path.  A pre-parsed AST on
            # the prompt (attached by the batch scheduler) skips the parse.
            select = prompt.ast if isinstance(prompt.ast, Select) else parse_select(prompt.sql)
            facts = extract_facts(select)
        except Exception:
            select = None
            facts = None
        sql_text = ""
        if facts is not None and knowledge is not None:
            sql_text = print_select(select)
        for index in range(max(1, prompt.num_candidates)):
            # Later candidates explore lower-fidelity paraphrases; the first
            # candidate is the model's best effort.
            candidate_fidelity = max(0.05, fidelity - 0.06 * index)
            jitter = (_stable_unit(self.name, prompt.sql, index) - 0.5) * 0.06
            candidate_fidelity = min(1.0, max(0.05, candidate_fidelity + jitter))
            if facts is not None:
                text = describe_facts(
                    facts,
                    fidelity=candidate_fidelity,
                    seed=(self.name, index),
                    knowledge=knowledge,
                    sql_text=sql_text,
                )
            else:
                # Unparseable SQL: preserve the original (raising) behaviour.
                text = describe_query(
                    prompt.sql,
                    fidelity=candidate_fidelity,
                    seed=(self.name, index),
                    knowledge=knowledge,
                )
            if text not in candidates:
                candidates.append(text)
        return GenerationResult(
            candidates=candidates,
            model_name=self.name,
            prompt_tokens=prompt.length_tokens,
            metadata={"fidelity": fidelity},
        )

    def effective_fidelity(self, prompt: Prompt) -> float:
        """Compute the fact-retention probability for a prompt.

        Combines the model's base fidelity with prompt-context boosts and a
        complexity penalty derived from the query's static profile.
        """
        profile = self.profile
        fidelity = profile.base_fidelity
        if prompt.has_schema_context:
            fidelity += profile.context_boost
        if prompt.has_examples:
            fidelity += profile.example_boost * min(1.0, len(prompt.examples) / 3.0)
        if prompt.has_knowledge and self._knowledge is not None:
            coverage = self._knowledge.coverage(prompt.sql)
            fidelity += profile.knowledge_boost * min(1.0, coverage * 4.0)

        fidelity -= self._complexity_penalty(prompt.sql)

        # Ambiguous column names confuse the model unless schema context is
        # present to disambiguate them.
        if prompt.ambiguous_columns and not prompt.has_schema_context:
            fidelity -= 0.05 * min(3, len(prompt.ambiguous_columns))

        return min(1.0, max(0.05, fidelity))

    def _complexity_penalty(self, sql: str) -> float:
        try:
            profile = analyze_query(sql)
        except Exception:
            return 0.25 * self.profile.complexity_sensitivity
        complexity = profile.complexity
        load = (
            0.8 * complexity.nestings
            + 0.5 * max(0, complexity.tables - 1)
            + 0.25 * complexity.aggregations
            + 0.15 * complexity.predicates
            + 0.02 * complexity.keywords
        )
        penalty = 0.022 * load * self.profile.complexity_sensitivity
        return min(0.45, penalty)

    # ------------------------------------------------------------------
    # NL -> SQL (backtranslation)
    # ------------------------------------------------------------------

    def backtranslate(self, description: str, schema_text: str = "") -> str | None:
        """Regenerate SQL from an NL description using a vanilla configuration."""
        self.call_count += 1
        schema = self._schema
        if schema is None and schema_text.strip():
            schema = self._schema_from_text(schema_text)
        if schema is None:
            return None
        generator = NLToSQLGenerator(schema, skill=self.profile.backtranslation_skill)
        result = generator.generate(description)
        return result.sql

    @staticmethod
    def _schema_from_text(schema_text: str) -> DatabaseSchema | None:
        try:
            return parse_ddl_script(schema_text, schema_name="prompt")
        except Exception:
            return None

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------

    def expected_fact_count(self, sql: str) -> int:
        """Number of facts a complete description of ``sql`` would contain."""
        return len(extract_facts(parse_select(sql)))
