"""Simulated LLM subsystem: prompts, SQL<->NL generation, domain knowledge."""

from repro.llm.base import (
    GenerationResult,
    LLMClient,
    MODEL_PROFILES,
    ModelProfile,
    RetryPolicy,
    UsageStats,
    get_profile,
    is_transient_error,
)
from repro.llm.knowledge import FailurePattern, KnowledgeBase, KnowledgeEntry
from repro.llm.nl2sql import BacktranslationResult, NLToSQLGenerator
from repro.llm.resilience import CircuitBreaker, Deadline, HedgePolicy
from repro.llm.prompts import Prompt, PromptBuilder
from repro.llm.simulated import SimulatedLLM
from repro.llm.sql2nl import (
    ESSENTIAL_KINDS,
    FACT_WEIGHTS,
    QueryFact,
    describe_query,
    extract_facts,
    fact_coverage,
    humanize,
    render_facts,
    select_facts,
)

__all__ = [
    "BacktranslationResult",
    "CircuitBreaker",
    "Deadline",
    "ESSENTIAL_KINDS",
    "FACT_WEIGHTS",
    "FailurePattern",
    "GenerationResult",
    "HedgePolicy",
    "KnowledgeBase",
    "KnowledgeEntry",
    "LLMClient",
    "MODEL_PROFILES",
    "ModelProfile",
    "NLToSQLGenerator",
    "Prompt",
    "PromptBuilder",
    "QueryFact",
    "RetryPolicy",
    "SimulatedLLM",
    "UsageStats",
    "describe_query",
    "extract_facts",
    "fact_coverage",
    "get_profile",
    "humanize",
    "is_transient_error",
    "render_facts",
    "select_facts",
]
