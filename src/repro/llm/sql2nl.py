"""Rule-based SQL-to-NL generation.

This module is the linguistic core of the simulated LLM.  A query is first
broken into *facts* — atomic pieces of meaning such as "projects the column
X", "filters rows where Y > 3", "groups by Z" — and the facts are then
rendered into a natural-language description.

The fidelity knob is what makes the simulation faithful to the paper's
observations: high-context prompts (schema + retrieved examples + injected
knowledge) yield complete descriptions, while low-context prompts omit or
blur facts.  Every downstream metric (annotation accuracy, backtranslation
clarity, execution accuracy of regenerated SQL) is driven by which facts
survive into the NL.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.llm.knowledge import KnowledgeBase
from repro.schema.linking import split_identifier
from repro.sql.analyzer import AGGREGATE_FUNCTIONS
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    BinaryOperator,
    Cast,
    CaseWhen,
    ColumnRef,
    Exists,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Join,
    Like,
    Literal,
    Relation,
    ScalarSubquery,
    Select,
    Star,
    SubqueryRef,
    TableRef,
    UnaryOp,
    UnaryOperator,
)
from repro.sql.parser import parse_select


# ---------------------------------------------------------------------------
# facts
# ---------------------------------------------------------------------------


#: Relative importance of each fact kind when scoring annotation coverage.
FACT_WEIGHTS: dict[str, float] = {
    "projection": 1.0,
    "aggregate": 1.2,
    "table": 1.0,
    "filter": 1.1,
    "group": 1.0,
    "having": 0.9,
    "order": 0.6,
    "limit": 0.6,
    "distinct": 0.4,
    "subquery": 1.0,
    "set_operation": 0.8,
}

#: Facts that are essential for an annotation to count as structurally accurate.
ESSENTIAL_KINDS: frozenset[str] = frozenset(
    {"projection", "aggregate", "table", "filter", "group"}
)


@dataclass
class QueryFact:
    """One atomic piece of query meaning."""

    kind: str
    text: str
    weight: float = 1.0
    essential: bool = False
    payload: dict[str, object] = field(default_factory=dict)


def humanize(identifier: str) -> str:
    """Turn an identifier into a readable phrase (``MOIRA_LIST_NAME`` -> ``moira list name``)."""
    words = split_identifier(identifier)
    return " ".join(words) if words else identifier.lower()


def _expression_phrase(expression: Expression) -> str:
    """Describe a scalar expression for use inside a fact."""
    if isinstance(expression, ColumnRef):
        return humanize(expression.name)
    if isinstance(expression, Star):
        return "rows"
    if isinstance(expression, Literal):
        if isinstance(expression.value, str):
            return f"'{expression.value}'"
        if expression.value is None:
            return "null"
        if expression.value is True:
            return "true"
        if expression.value is False:
            return "false"
        return str(expression.value)
    if isinstance(expression, FunctionCall):
        return _aggregate_phrase(expression)
    if isinstance(expression, BinaryOp):
        left = _expression_phrase(expression.left)
        right = _expression_phrase(expression.right)
        symbol = {
            BinaryOperator.ADD: "plus",
            BinaryOperator.SUB: "minus",
            BinaryOperator.MUL: "times",
            BinaryOperator.DIV: "divided by",
        }.get(expression.op, expression.op.value)
        return f"{left} {symbol} {right}"
    if isinstance(expression, Cast):
        return _expression_phrase(expression.operand)
    if isinstance(expression, CaseWhen):
        return "a conditional value"
    if isinstance(expression, ScalarSubquery):
        inner = describe_query(expression.query, fidelity=1.0)
        return f"the result of a subquery that {_as_clause(inner)}"
    if isinstance(expression, UnaryOp):
        if expression.op is UnaryOperator.NEG:
            return f"negative {_expression_phrase(expression.operand)}"
        return _expression_phrase(expression.operand)
    return "an expression"


_AGGREGATE_TEMPLATES = {
    "COUNT": "the number of {arg}",
    "SUM": "the total {arg}",
    "AVG": "the average {arg}",
    "MIN": "the minimum {arg}",
    "MAX": "the maximum {arg}",
    "GROUP_CONCAT": "the concatenated list of {arg}",
    "STDDEV": "the standard deviation of {arg}",
    "VARIANCE": "the variance of {arg}",
    "MEDIAN": "the median {arg}",
}


def _aggregate_phrase(call: FunctionCall) -> str:
    name = call.upper_name
    if name in _AGGREGATE_TEMPLATES:
        if not call.args or isinstance(call.args[0], Star):
            arg = "rows"
        else:
            arg = _expression_phrase(call.args[0])
        if call.distinct:
            arg = f"distinct {arg}"
        return _AGGREGATE_TEMPLATES[name].format(arg=arg)
    args = ", ".join(_expression_phrase(arg) for arg in call.args)
    return f"{name.lower()} of {args}" if args else name.lower()


_COMPARISON_PHRASES = {
    BinaryOperator.EQ: "equals",
    BinaryOperator.NEQ: "is not equal to",
    BinaryOperator.LT: "is less than",
    BinaryOperator.LTE: "is at most",
    BinaryOperator.GT: "is greater than",
    BinaryOperator.GTE: "is at least",
}


def _condition_phrases(expression: Expression) -> list[str]:
    """Split a predicate into conjunct phrases (top-level ANDs become separate facts)."""
    if isinstance(expression, BinaryOp) and expression.op is BinaryOperator.AND:
        return _condition_phrases(expression.left) + _condition_phrases(expression.right)
    return [_single_condition_phrase(expression)]


def _single_condition_phrase(expression: Expression) -> str:
    if isinstance(expression, BinaryOp):
        if expression.op is BinaryOperator.OR:
            left = _single_condition_phrase(expression.left)
            right = _single_condition_phrase(expression.right)
            return f"either {left} or {right}"
        if expression.op in _COMPARISON_PHRASES:
            left = _expression_phrase(expression.left)
            right = _expression_phrase(expression.right)
            return f"the {left} {_COMPARISON_PHRASES[expression.op]} {right}"
        return f"the {_expression_phrase(expression)} holds"
    if isinstance(expression, Like):
        operand = _expression_phrase(expression.operand)
        pattern = ""
        if isinstance(expression.pattern, Literal) and isinstance(expression.pattern.value, str):
            pattern = expression.pattern.value
        negation = "does not match" if expression.negated else ""
        if pattern.endswith("%") and not pattern.startswith("%"):
            verb = "does not start with" if expression.negated else "starts with"
            return f"the {operand} {verb} '{pattern.rstrip('%')}'"
        if pattern.startswith("%") and not pattern.endswith("%"):
            verb = "does not end with" if expression.negated else "ends with"
            return f"the {operand} {verb} '{pattern.lstrip('%')}'"
        if pattern.startswith("%") and pattern.endswith("%"):
            verb = "does not contain" if expression.negated else "contains"
            return f"the {operand} {verb} '{pattern.strip('%')}'"
        verb = negation or "matches"
        return f"the {operand} {verb} the pattern '{pattern}'"
    if isinstance(expression, Between):
        operand = _expression_phrase(expression.operand)
        low = _expression_phrase(expression.low)
        high = _expression_phrase(expression.high)
        negation = "is not" if expression.negated else "is"
        return f"the {operand} {negation} between {low} and {high}"
    if isinstance(expression, InList):
        operand = _expression_phrase(expression.operand)
        values = ", ".join(_expression_phrase(value) for value in expression.values)
        negation = "is not one of" if expression.negated else "is one of"
        return f"the {operand} {negation} {values}"
    if isinstance(expression, InSubquery):
        operand = _expression_phrase(expression.operand)
        inner = describe_query(expression.subquery, fidelity=1.0)
        negation = "is not" if expression.negated else "is"
        return f"the {operand} {negation} among the results of a subquery that {_as_clause(inner)}"
    if isinstance(expression, Exists):
        inner = describe_query(expression.subquery, fidelity=1.0)
        negation = "no" if expression.negated else "at least one"
        return f"there exists {negation} related row such that {_as_clause(inner)}"
    if isinstance(expression, IsNull):
        operand = _expression_phrase(expression.operand)
        negation = "is not missing" if expression.negated else "is missing"
        return f"the {operand} {negation}"
    if isinstance(expression, UnaryOp) and expression.op is UnaryOperator.NOT:
        return f"it is not the case that {_single_condition_phrase(expression.operand)}"
    return f"the condition {_expression_phrase(expression)} holds"


def _as_clause(description: str) -> str:
    text = description.strip().rstrip(".?!")
    if not text:
        return text
    lowered = text[0].lower() + text[1:]
    for prefix in ("list ", "show ", "find ", "report ", "return "):
        if lowered.startswith(prefix):
            lowered = lowered[len(prefix):]
            break
    return lowered


def _relation_tables(relation: Relation | None) -> list[str]:
    tables: list[str] = []
    if relation is None:
        return tables
    if isinstance(relation, TableRef):
        tables.append(relation.name)
    elif isinstance(relation, SubqueryRef):
        tables.append(relation.alias)
    elif isinstance(relation, Join):
        tables.extend(_relation_tables(relation.left))
        tables.extend(_relation_tables(relation.right))
    return tables


# ---------------------------------------------------------------------------
# fact extraction
# ---------------------------------------------------------------------------


def extract_facts(select: Select) -> list[QueryFact]:
    """Extract the atomic meaning facts of a query (outer block + conditions).

    Nested subqueries in FROM/WHERE contribute condensed ``subquery`` facts;
    the decomposition pathway in the pipeline handles deep nesting separately.
    A trivial CTE wrapper (``WITH x AS (...) SELECT * FROM x``) is unwrapped
    so the description talks about the actual computation rather than the
    wrapper.
    """
    unwrapped = _unwrap_trivial_cte(select)
    if unwrapped is not select:
        return extract_facts(unwrapped)
    facts: list[QueryFact] = []

    if select.distinct:
        facts.append(QueryFact(kind="distinct", text="only distinct results are kept",
                               weight=FACT_WEIGHTS["distinct"]))

    # Projection facts.
    for item in select.select_items:
        expression = item.expression
        if isinstance(expression, Star):
            facts.append(
                QueryFact(
                    kind="projection",
                    text="all columns",
                    weight=FACT_WEIGHTS["projection"],
                    essential=True,
                    payload={"column": "*"},
                )
            )
        elif isinstance(expression, FunctionCall) and expression.upper_name in AGGREGATE_FUNCTIONS:
            facts.append(
                QueryFact(
                    kind="aggregate",
                    text=_aggregate_phrase(expression),
                    weight=FACT_WEIGHTS["aggregate"],
                    essential=True,
                    payload={
                        "function": expression.upper_name,
                        "argument": _argument_name(expression),
                        "distinct": expression.distinct,
                        "alias": item.alias or "",
                    },
                )
            )
        else:
            facts.append(
                QueryFact(
                    kind="projection",
                    text=f"the {_expression_phrase(expression)}",
                    weight=FACT_WEIGHTS["projection"],
                    essential=True,
                    payload={
                        "column": expression.name if isinstance(expression, ColumnRef) else "",
                        "alias": item.alias or "",
                    },
                )
            )

    # Table facts.
    tables = _relation_tables(select.from_relation)
    for table in tables:
        facts.append(
            QueryFact(
                kind="table",
                text=f"the {humanize(table)} table",
                weight=FACT_WEIGHTS["table"],
                essential=True,
                payload={"table": table},
            )
        )

    # Filter facts.
    if select.where is not None:
        for phrase in _condition_phrases(select.where):
            facts.append(
                QueryFact(
                    kind="filter",
                    text=phrase,
                    weight=FACT_WEIGHTS["filter"],
                    essential=True,
                    payload={"phrase": phrase},
                )
            )

    # Grouping facts.
    for expression in select.group_by:
        facts.append(
            QueryFact(
                kind="group",
                text=f"each {_expression_phrase(expression)}",
                weight=FACT_WEIGHTS["group"],
                essential=True,
                payload={
                    "column": expression.name if isinstance(expression, ColumnRef) else "",
                },
            )
        )

    if select.having is not None:
        for phrase in _condition_phrases(select.having):
            facts.append(
                QueryFact(
                    kind="having",
                    text=f"only groups where {phrase} are kept",
                    weight=FACT_WEIGHTS["having"],
                    payload={"phrase": phrase},
                )
            )

    for order_item in select.order_by:
        direction = "ascending" if order_item.ascending else "descending"
        facts.append(
            QueryFact(
                kind="order",
                text=f"sorted by {_expression_phrase(order_item.expression)} in {direction} order",
                weight=FACT_WEIGHTS["order"],
                payload={
                    "column": order_item.expression.name
                    if isinstance(order_item.expression, ColumnRef)
                    else "",
                    "ascending": order_item.ascending,
                },
            )
        )

    if select.limit is not None:
        facts.append(
            QueryFact(
                kind="limit",
                text=f"limited to the first {select.limit} rows",
                weight=FACT_WEIGHTS["limit"],
                payload={"limit": select.limit},
            )
        )

    if select.set_operator is not None:
        facts.append(
            QueryFact(
                kind="set_operation",
                text=f"combined with another result set using {select.set_operator.value}",
                weight=FACT_WEIGHTS["set_operation"],
                payload={"operator": select.set_operator.value},
            )
        )

    # Condensed facts for CTEs / derived tables so non-decomposed annotation
    # still acknowledges the nested structure.
    for cte in select.ctes:
        facts.append(
            QueryFact(
                kind="subquery",
                text=f"an intermediate result named {humanize(cte.name)} is computed first",
                weight=FACT_WEIGHTS["subquery"],
                payload={"name": cte.name},
            )
        )

    return facts


def _unwrap_trivial_cte(select: Select) -> Select:
    """Return the CTE body when the outer query is just ``SELECT * FROM cte``."""
    if len(select.ctes) != 1:
        return select
    cte = select.ctes[0]
    outer_is_star = (
        len(select.select_items) == 1
        and isinstance(select.select_items[0].expression, Star)
        and select.where is None
        and not select.group_by
        and select.having is None
        and not select.order_by
        and select.limit is None
        and isinstance(select.from_relation, TableRef)
        and select.from_relation.name.lower() == cte.name.lower()
    )
    if outer_is_star:
        return cte.query
    return select


def _argument_name(call: FunctionCall) -> str:
    if not call.args or isinstance(call.args[0], Star):
        return "*"
    argument = call.args[0]
    if isinstance(argument, ColumnRef):
        return argument.name
    return _expression_phrase(argument)


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def render_facts(facts: list[QueryFact]) -> str:
    """Render a list of facts into a fluent description.

    The sentence structure intentionally mirrors what the NL-to-SQL
    backtranslator can parse, so information loss (dropped facts) — not
    phrasing — determines round-trip fidelity.
    """
    projections = [fact.text for fact in facts if fact.kind == "projection"]
    aggregates = [fact.text for fact in facts if fact.kind == "aggregate"]
    tables = [fact.text for fact in facts if fact.kind == "table"]
    filters = [fact.text for fact in facts if fact.kind == "filter"]
    groups = [fact.text for fact in facts if fact.kind == "group"]
    havings = [fact.text for fact in facts if fact.kind == "having"]
    orders = [fact.text for fact in facts if fact.kind == "order"]
    limits = [fact.text for fact in facts if fact.kind == "limit"]
    distinct = [fact.text for fact in facts if fact.kind == "distinct"]
    subqueries = [fact.text for fact in facts if fact.kind == "subquery"]
    set_operations = [fact.text for fact in facts if fact.kind == "set_operation"]

    targets = aggregates + projections
    sentence_parts: list[str] = []

    lead = "Find " + _join_phrases(targets) if targets else "Find the requested values"
    if groups:
        lead = f"For {_join_phrases(groups)}, " + lead[0].lower() + lead[1:]
    sentence_parts.append(lead)

    if tables:
        sentence_parts.append("from " + _join_phrases(tables))
    if filters:
        sentence_parts.append("considering only rows where " + "; and ".join(filters))
    if havings:
        sentence_parts.append(", ".join(havings))
    if distinct:
        sentence_parts.append(distinct[0])
    if orders:
        sentence_parts.append(", ".join(orders))
    if limits:
        sentence_parts.append(", ".join(limits))
    if set_operations:
        sentence_parts.append(", ".join(set_operations))

    text = ", ".join(sentence_parts) + "."
    if subqueries:
        text = _join_phrases(subqueries).capitalize() + ". Then, " + text[0].lower() + text[1:]
    return text


def _join_phrases(phrases: list[str]) -> str:
    if not phrases:
        return ""
    if len(phrases) == 1:
        return phrases[0]
    return ", ".join(phrases[:-1]) + " and " + phrases[-1]


# ---------------------------------------------------------------------------
# fidelity-controlled description
# ---------------------------------------------------------------------------


def _stable_fraction(*parts: object) -> float:
    """Deterministic pseudo-random fraction in [0, 1) derived from the inputs."""
    digest = hashlib.blake2b("|".join(str(part) for part in parts).encode("utf-8"),
                             digest_size=8).digest()
    return int.from_bytes(digest, "little") / 2**64


def select_facts(
    facts: list[QueryFact],
    fidelity: float,
    seed: object = 0,
) -> list[QueryFact]:
    """Keep each fact with probability ``fidelity`` (deterministic per seed).

    Projection/table facts are the most robust (annotators rarely forget what
    is being selected), so their keep-probability is boosted; fine-grained
    facts (orders, limits, having) are dropped first — matching the paper's
    observation that Level-4 backtranslations typically miss ordering or
    nuance rather than structure.
    """
    if fidelity >= 1.0:
        return list(facts)
    kept: list[QueryFact] = []
    for index, fact in enumerate(facts):
        keep_probability = fidelity
        if fact.kind in ("projection", "table"):
            keep_probability = min(1.0, fidelity + 0.25)
        elif fact.kind in ("order", "limit", "distinct", "having"):
            keep_probability = max(0.0, fidelity - 0.15)
        draw = _stable_fraction(seed, index, fact.kind, fact.text)
        if draw < keep_probability:
            kept.append(fact)
    if not kept and facts:
        # Even the weakest annotation mentions *something*: keep the first
        # projection or table fact.
        for fact in facts:
            if fact.kind in ("projection", "aggregate", "table"):
                kept.append(fact)
                break
        else:
            kept.append(facts[0])
    return kept


def describe_query(
    query: Select | str,
    fidelity: float = 1.0,
    seed: object = 0,
    knowledge: KnowledgeBase | None = None,
) -> str:
    """Generate an NL description of a query at the requested fidelity.

    Args:
        query: SQL text or parsed SELECT.
        fidelity: Probability that each extracted fact survives into the
            description (1.0 = complete description).
        seed: Any hashable seed; different seeds give different candidate
            wordings/omissions for the same fidelity.
        knowledge: Optional knowledge base; matched domain terms append a
            clarifying clause (mirrors how injected knowledge makes
            descriptions more precise).
    """
    select = parse_select(query) if isinstance(query, str) else query
    facts = extract_facts(select)
    sql_text = ""
    if knowledge is not None:
        from repro.sql.printer import print_select

        sql_text = print_select(select)
    return describe_facts(facts, fidelity=fidelity, seed=seed, knowledge=knowledge, sql_text=sql_text)


def describe_facts(
    facts: list[QueryFact],
    fidelity: float = 1.0,
    seed: object = 0,
    knowledge: KnowledgeBase | None = None,
    sql_text: str = "",
) -> str:
    """:func:`describe_query` over pre-extracted facts.

    Lets callers that generate several candidates from one query (at varying
    fidelity/seed) parse and extract facts once instead of per candidate.
    ``sql_text`` is only consulted for knowledge-term matching.
    """
    kept = select_facts(facts, fidelity, seed)
    text = render_facts(kept)

    if knowledge is not None:
        entries = knowledge.relevant_entries(sql_text, limit=2)
        if entries:
            clarifications = "; ".join(
                f"{humanize(entry.term)} refers to {entry.explanation.rstrip('.')}"
                for entry in entries
            )
            text = text.rstrip(".") + f" (here, {clarifications})."
    return text


def fact_coverage(reference_facts: list[QueryFact], description: str) -> float:
    """Weighted fraction of reference facts whose content appears in ``description``.

    This is the automatic stand-in for the paper's manual accuracy inspection:
    a description is accurate when the key SQL components (selections,
    calculations, grouping/ordering) are "clearly and distinguishably
    described".
    """
    from repro.retrieval.text import tokenize_text

    description_tokens = set(tokenize_text(description))
    if not reference_facts:
        return 1.0
    total_weight = 0.0
    covered_weight = 0.0
    for fact in reference_facts:
        total_weight += fact.weight
        fact_tokens = set(tokenize_text(fact.text)) - {"the", "a", "an", "of", "in"}
        if not fact_tokens:
            covered_weight += fact.weight
            continue
        overlap = len(fact_tokens & description_tokens) / len(fact_tokens)
        if overlap >= 0.6:
            covered_weight += fact.weight
    return covered_weight / total_weight if total_weight else 1.0
