"""LLM client abstraction.

BenchPress lets users choose a language model for candidate generation
(paper step 3: GPT-4o, GPT-3.5 Turbo, or DeepSeek).  The reproduction keeps
that seam: :class:`LLMClient` is the interface, and
:class:`repro.llm.simulated.SimulatedLLM` is the offline implementation whose
behaviour is parameterised per model profile.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.llm.prompts import Prompt


@dataclass
class GenerationResult:
    """Candidates returned by an LLM call."""

    candidates: list[str]
    model_name: str
    prompt_tokens: int = 0
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def best(self) -> str:
        """The first (highest-ranked) candidate."""
        return self.candidates[0] if self.candidates else ""


class LLMClient(abc.ABC):
    """Interface every candidate-generation backend implements."""

    name: str = "llm"

    @abc.abstractmethod
    def generate(self, prompt: Prompt) -> GenerationResult:
        """Generate ``prompt.num_candidates`` natural-language candidates."""

    @abc.abstractmethod
    def backtranslate(self, description: str, schema_text: str = "") -> str | None:
        """Regenerate SQL from an NL description (vanilla, no examples).

        Returns ``None`` when no SQL can be produced at all.
        """


@dataclass(frozen=True)
class ModelProfile:
    """Behavioural parameters of one simulated model.

    Attributes:
        name: Model identifier shown in task configuration.
        base_fidelity: Baseline probability that a query fact survives into a
            generated description when no context is provided.
        context_boost: Additional fidelity when relevant schema tables are in
            the prompt.
        example_boost: Additional fidelity (at full few-shot budget) from
            retrieved prior annotations.
        knowledge_boost: Maximum additional fidelity from injected domain
            knowledge (scaled by knowledge coverage of the query).
        complexity_sensitivity: How strongly query complexity erodes fidelity.
        backtranslation_skill: Entity-disambiguation skill used when acting as
            the backtranslation model.
    """

    name: str
    base_fidelity: float = 0.72
    context_boost: float = 0.14
    example_boost: float = 0.08
    knowledge_boost: float = 0.12
    complexity_sensitivity: float = 1.0
    backtranslation_skill: float = 0.8


#: Profiles for the models the paper's task-configuration step offers.
MODEL_PROFILES: dict[str, ModelProfile] = {
    "gpt-4o": ModelProfile(
        name="gpt-4o",
        base_fidelity=0.78,
        context_boost=0.16,
        example_boost=0.09,
        knowledge_boost=0.14,
        complexity_sensitivity=0.9,
        backtranslation_skill=0.9,
    ),
    "gpt-3.5-turbo": ModelProfile(
        name="gpt-3.5-turbo",
        base_fidelity=0.66,
        context_boost=0.13,
        example_boost=0.07,
        knowledge_boost=0.10,
        complexity_sensitivity=1.15,
        backtranslation_skill=0.7,
    ),
    "deepseek": ModelProfile(
        name="deepseek",
        base_fidelity=0.74,
        context_boost=0.15,
        example_boost=0.08,
        knowledge_boost=0.12,
        complexity_sensitivity=1.0,
        backtranslation_skill=0.85,
    ),
}


def get_profile(name: str) -> ModelProfile:
    """Look up a model profile, falling back to a generic mid-tier profile."""
    return MODEL_PROFILES.get(name.lower(), ModelProfile(name=name))
