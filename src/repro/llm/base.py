"""LLM client abstraction.

BenchPress lets users choose a language model for candidate generation
(paper step 3: GPT-4o, GPT-3.5 Turbo, or DeepSeek).  The reproduction keeps
that seam: :class:`LLMClient` is the interface, and
:class:`repro.llm.simulated.SimulatedLLM` is the offline implementation whose
behaviour is parameterised per model profile.
"""

from __future__ import annotations

import abc
import hashlib
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro.errors import (
    CircuitOpenError,
    DeadlineExceededError,
    LLMTimeoutError,
    TransientLLMError,
)
from repro.llm.prompts import Prompt
from repro.llm.resilience import CircuitBreaker, Deadline, HedgePolicy
from repro.obs import NULL_TELEMETRY, Telemetry

_T = TypeVar("_T")


def is_transient_error(exc: BaseException) -> bool:
    """Classify an LLM-call failure as retryable or terminal.

    Transient: explicit :class:`~repro.errors.TransientLLMError` (and its
    timeout subclass), OS-level connection/timeout failures, and any exception
    carrying a truthy ``transient`` attribute (the escape hatch for backend
    SDK exception types the library does not know about).  Everything else —
    bad prompts, parse errors, programming bugs — fails fast.
    """
    if isinstance(exc, (TransientLLMError, ConnectionError, TimeoutError)):
        return True
    return bool(getattr(exc, "transient", False))


def _join_salt(prefix: str, base: str) -> str:
    """Combine a caller-supplied jitter salt (e.g. a project name) with the
    call-derived one."""
    return f"{prefix}|{base}" if prefix else base


def _stable_unit(*parts: object) -> float:
    """Deterministic pseudo-random number in [0, 1) derived from the inputs."""
    digest = hashlib.blake2b(
        "|".join(str(part) for part in parts).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered-exponential retry/backoff/timeout discipline for LLM calls.

    Attributes:
        max_attempts: Total attempts per call (1 disables retries).
        base_delay: Backoff before the first retry, in seconds.
        max_delay: Ceiling on the exponential backoff.
        jitter: Fraction of each delay randomised away (0..1).  Jitter is
            *deterministic* given (salt, attempt) so reruns of the same
            workload back off identically — the same reproducibility contract
            as the simulated LLM itself.
        call_timeout: Per-call wall-clock budget in seconds (``None`` = no
            limit).  Timeouts are enforced by running the call on a worker
            thread; an abandoned call may still run to completion in the
            background, but the caller regains control at the deadline.
        retry_budget_s: Total elapsed-time cap across *all* attempts and
            backoff sleeps of one logical call (``None`` = no cap).  With a
            high ``max_attempts`` the worst-case sleep of plain jittered
            backoff is unbounded in practice; the budget guarantees a call
            gives up (re-raising the last transient error) once it has spent
            its share of the caller's time, instead of sleeping past it.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    call_timeout: float | None = None
    retry_budget_s: float | None = None

    def delay(self, attempt: int, salt: str = "") -> float:
        """Backoff before retry ``attempt`` (0-based), jitter applied."""
        raw = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        if self.jitter <= 0.0 or raw <= 0.0:
            return raw
        return raw * (1.0 - self.jitter * _stable_unit("retry", salt, attempt))


@dataclass
class GenerationResult:
    """Candidates returned by an LLM call."""

    candidates: list[str]
    model_name: str
    prompt_tokens: int = 0
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def best(self) -> str:
        """The first (highest-ranked) candidate."""
        return self.candidates[0] if self.candidates else ""


@dataclass
class UsageStats:
    """Per-model accounting of generation traffic.

    ``requests`` counts API round trips, so a batched call that processes
    twenty prompts adds twenty to ``prompts`` but only one to ``requests`` —
    the ratio is exactly the amortisation a batch endpoint buys.

    Mutation is thread-safe: one LLM client (and therefore one tracker) may
    serve several projects whose waves are drained concurrently, so
    :meth:`record` and :meth:`merge` hold an internal lock while they bump
    the counters.  Reads are plain attribute access — individual fields are
    always internally consistent, and callers that need a consistent
    cross-field view should read while no drain is in flight.
    """

    model_name: str = ""
    requests: int = 0
    batches: int = 0
    prompts: int = 0
    prompt_tokens: int = 0
    candidates: int = 0
    latency_seconds: float = 0.0

    def __post_init__(self) -> None:
        # Not a dataclass field: locks are process-local and must never leak
        # into asdict()/serialised views of the stats.
        self._lock = threading.Lock()

    def record(
        self,
        prompts: int,
        prompt_tokens: int,
        candidates: int,
        latency_seconds: float,
        batched: bool = False,
    ) -> None:
        """Fold one generation call (single or batched) into the totals."""
        with self._lock:
            self.requests += 1
            self.prompts += prompts
            self.prompt_tokens += prompt_tokens
            self.candidates += candidates
            self.latency_seconds += latency_seconds
            if batched:
                self.batches += 1

    def merge(self, other: "UsageStats") -> None:
        """Accumulate another tracker's totals into this one."""
        with self._lock:
            self.requests += other.requests
            self.batches += other.batches
            self.prompts += other.prompts
            self.prompt_tokens += other.prompt_tokens
            self.candidates += other.candidates
            self.latency_seconds += other.latency_seconds

    def mark_batch(self) -> None:
        """Count one batch-shaped call without touching the request totals."""
        with self._lock:
            self.batches += 1

    @property
    def mean_batch_size(self) -> float:
        """Average prompts per request (1.0 for a purely sequential client)."""
        return self.prompts / self.requests if self.requests else 0.0

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view for reports and service stats."""
        return {
            "model_name": self.model_name,
            "requests": self.requests,
            "batches": self.batches,
            "prompts": self.prompts,
            "prompt_tokens": self.prompt_tokens,
            "candidates": self.candidates,
            "latency_seconds": self.latency_seconds,
        }


#: Guards lazy creation of per-client usage trackers under concurrent drains.
_USAGE_INIT_LOCK = threading.Lock()


class LLMClient(abc.ABC):
    """Interface every candidate-generation backend implements."""

    name: str = "llm"

    #: Observability sink for the retry/timeout/token accounting on the
    #: ``*_with_retry`` entry points.  A class-level no-op default means
    #: existing subclasses need no ``__init__`` changes; services overwrite
    #: it per instance when telemetry is enabled.
    telemetry: Telemetry = NULL_TELEMETRY

    #: Whether :meth:`generate` output depends on the *content* of the few-shot
    #: examples in the prompt (and not just on how many there are).  Batch
    #: schedulers use this to decide how strictly a speculatively-generated
    #: result must be re-validated after the example archive has grown: a
    #: ``False`` here lets them revalidate on example count alone.  Leave
    #: ``True`` unless the implementation provably ignores example text.
    example_content_sensitive: bool = True

    @property
    def usage(self) -> UsageStats:
        """Aggregated token/latency accounting for this client.

        Created lazily so existing subclasses need no ``__init__`` changes.
        The double-checked creation is guarded by a class-level lock so two
        threads racing the first access share one tracker.
        """
        stats = getattr(self, "_usage_stats", None)
        if stats is None:
            with _USAGE_INIT_LOCK:
                stats = getattr(self, "_usage_stats", None)
                if stats is None:
                    stats = UsageStats(model_name=self.name)
                    self._usage_stats = stats
        return stats

    @abc.abstractmethod
    def generate(self, prompt: Prompt) -> GenerationResult:
        """Generate ``prompt.num_candidates`` natural-language candidates."""

    def generate_batch(self, prompts: list[Prompt]) -> list[GenerationResult]:
        """Generate candidates for several prompts in one logical call.

        The default falls back to sequential :meth:`generate` calls so every
        backend supports the batch entry point; backends with a real batch
        API (or work worth amortising) should override it.  Results are
        positionally aligned with ``prompts``.

        Accounting convention: :meth:`generate` implementations record their
        own per-request usage, so the fallback leaves ``requests`` to them
        (a fallback "batch" of twenty prompts really is twenty round trips)
        and only marks that a batch-shaped call happened.
        """
        results = [self.generate(prompt) for prompt in prompts]
        self.usage.mark_batch()
        return results

    # ------------------------------------------------------------------
    # resilience wrappers
    # ------------------------------------------------------------------

    def generate_with_retry(
        self,
        prompt: Prompt,
        policy: RetryPolicy | None = None,
        salt: str = "",
        deadline: Deadline | None = None,
        breaker: CircuitBreaker | None = None,
        hedge: HedgePolicy | None = None,
    ) -> GenerationResult:
        """:meth:`generate` hardened with retry/backoff/timeout.

        Transient failures (see :func:`is_transient_error`) are retried up to
        ``policy.max_attempts`` times with jittered exponential backoff;
        terminal errors and exhausted retries propagate.  With no policy this
        is exactly :meth:`generate`.

        ``salt`` namespaces the deterministic backoff jitter (callers pass
        their tenant/project name): when several tenants hit the same
        transient backend error on the same SQL at the same moment, distinct
        salts spread their retries apart instead of letting the whole fleet
        hammer the backend again in lockstep.

        ``deadline`` shrinks the per-call timeout so the attempt sequence
        cannot outlive the caller's drain budget; ``breaker`` fast-fails with
        :class:`~repro.errors.CircuitOpenError` while its backend is
        considered down; ``hedge`` fires a backup call behind a slow primary
        and takes the first answer.
        """
        result = self._resilient_call(
            lambda: self.generate(prompt),
            policy,
            salt=_join_salt(salt, prompt.sql),
            deadline=deadline,
            breaker=breaker,
            hedge=hedge,
        )
        tel = self.telemetry
        if tel.enabled:
            tel.count("llm_requests_total", model=self.name)
            tel.count(
                "llm_prompt_tokens_total", result.prompt_tokens, model=self.name
            )
        return result

    def generate_batch_with_retry(
        self,
        prompts: list[Prompt],
        policy: RetryPolicy | None = None,
        salt: str = "",
        deadline: Deadline | None = None,
        breaker: CircuitBreaker | None = None,
        hedge: HedgePolicy | None = None,
    ) -> list[GenerationResult]:
        """:meth:`generate_batch` hardened with retry/backoff/timeout.

        ``salt`` de-synchronises backoff across tenants exactly as in
        :meth:`generate_with_retry`; ``deadline``/``breaker``/``hedge``
        behave identically too (a hedged batch duplicates the whole batched
        call — the usual hedging cost/latency trade).
        """
        base = prompts[0].sql if prompts else ""
        results = self._resilient_call(
            lambda: self.generate_batch(prompts),
            policy,
            salt=_join_salt(salt, f"batch:{len(prompts)}:{base}"),
            deadline=deadline,
            breaker=breaker,
            hedge=hedge,
        )
        tel = self.telemetry
        if tel.enabled:
            tel.count("llm_requests_total", model=self.name)
            tel.count(
                "llm_prompt_tokens_total",
                sum(result.prompt_tokens for result in results),
                model=self.name,
            )
        return results

    def _resilient_call(
        self,
        call: Callable[[], _T],
        policy: RetryPolicy | None,
        salt: str,
        deadline: Deadline | None = None,
        breaker: CircuitBreaker | None = None,
        hedge: HedgePolicy | None = None,
    ) -> _T:
        tel = self.telemetry

        def breaker_gate() -> None:
            # Checked before *every* attempt, not just the first: a breaker
            # tripped by an earlier attempt in this very retry loop must stop
            # the remaining attempts (fast-fail into deferral) instead of
            # letting them burn the attempt budget into a terminal error.
            if breaker is not None and not breaker.allow():
                if tel.enabled:
                    tel.count("llm_breaker_fastfail_total", model=self.name)
                raise CircuitOpenError(
                    f"circuit breaker for {self.name!r} is open; call fast-failed"
                )

        breaker_gate()
        if policy is None and deadline is None and breaker is None and hedge is None:
            if not tel.enabled:
                return call()
            started = time.perf_counter()
            result = call()
            tel.observe(
                "llm_call_seconds", time.perf_counter() - started, model=self.name
            )
            return result

        attempts = policy.max_attempts if policy is not None else 1
        call_timeout = policy.call_timeout if policy is not None else None
        budget = (
            Deadline(policy.retry_budget_s)
            if policy is not None and policy.retry_budget_s is not None
            else None
        )
        started = time.perf_counter() if tel.enabled else 0.0
        for attempt in range(attempts):
            if attempt > 0:
                breaker_gate()
            timeout, clamped = self._effective_timeout(
                call_timeout, deadline, budget, tel
            )
            call_started = time.perf_counter()
            try:
                result = self._execute(call, timeout, hedge, tel)
            except Exception as exc:
                if isinstance(exc, LLMTimeoutError):
                    if tel.enabled:
                        tel.count("llm_timeouts_total", model=self.name)
                    if clamped:
                        # The timeout that cut this call was the *deadline's*,
                        # not the per-call policy's: the backend was given less
                        # than its usual budget, so don't blame it (no breaker
                        # failure) — report deadline exhaustion instead.
                        if tel.enabled:
                            tel.count("llm_deadline_exhausted_total", model=self.name)
                        raise DeadlineExceededError(
                            f"LLM call on {self.name!r} was cut at the caller's "
                            f"deadline ({timeout:.3f}s remaining)"
                        ) from exc
                if breaker is not None:
                    breaker.record_failure()
                if not is_transient_error(exc) or attempt + 1 >= attempts:
                    if tel.enabled:
                        tel.count(
                            "llm_errors_total",
                            model=self.name,
                            error_type=type(exc).__name__,
                        )
                    raise
                delay = policy.delay(attempt, salt)
                if not self._delay_fits(delay, deadline, budget):
                    if tel.enabled:
                        tel.count("llm_retry_budget_exhausted_total", model=self.name)
                    raise
                if tel.enabled:
                    tel.count("llm_retries_total", model=self.name)
                    tel.observe("llm_backoff_seconds", delay, model=self.name)
                if delay > 0:
                    time.sleep(delay)
            else:
                self._note_latency(time.perf_counter() - call_started)
                if breaker is not None:
                    breaker.record_success()
                if tel.enabled:
                    tel.observe(
                        "llm_call_seconds",
                        time.perf_counter() - started,
                        model=self.name,
                    )
                return result
        raise AssertionError("unreachable: retry loop returns or raises")

    def _effective_timeout(
        self,
        call_timeout: float | None,
        deadline: Deadline | None,
        budget: Deadline | None,
        tel: Telemetry,
    ) -> tuple[float | None, bool]:
        """Shrink the per-call timeout under the deadline/retry budget.

        Returns ``(timeout, clamped)`` where ``clamped`` records that the
        deadline (not the policy) is the binding constraint; raises
        :class:`DeadlineExceededError` when no time is left at all.
        """
        timeout = call_timeout
        clamped = False
        for bound in (deadline, budget):
            if bound is None:
                continue
            remaining = bound.remaining()
            if remaining <= 0:
                if tel.enabled:
                    tel.count("llm_deadline_exhausted_total", model=self.name)
                raise DeadlineExceededError(
                    f"no time remaining to call {self.name!r} "
                    f"(deadline budget exhausted)"
                )
            if timeout is None or remaining < timeout:
                timeout = remaining
                clamped = True
        return timeout, clamped

    @staticmethod
    def _delay_fits(
        delay: float, deadline: Deadline | None, budget: Deadline | None
    ) -> bool:
        """Whether a backoff sleep still fits inside every active budget."""
        for bound in (deadline, budget):
            if bound is not None and delay >= bound.remaining():
                return False
        return True

    # -- hedged / timed execution --------------------------------------

    #: Bounded reservoir of recent successful call latencies, feeding the
    #: percentile-derived hedge delay.
    _LATENCY_RESERVOIR = 256

    def _note_latency(self, seconds: float) -> None:
        samples = getattr(self, "_latency_samples", None)
        if samples is None:
            samples = []
            self._latency_samples = samples
        samples.append(seconds)
        if len(samples) > self._LATENCY_RESERVOIR:
            del samples[: len(samples) - self._LATENCY_RESERVOIR]

    @property
    def latency_samples(self) -> list[float]:
        """Recent successful call latencies (most recent last)."""
        return list(getattr(self, "_latency_samples", []))

    def _execute(
        self,
        call: Callable[[], _T],
        timeout: float | None,
        hedge: HedgePolicy | None,
        tel: Telemetry,
    ) -> _T:
        if hedge is not None:
            hedge_delay = hedge.resolve_delay(
                getattr(self, "_latency_samples", [])
            )
            if hedge_delay is not None and (
                timeout is None or hedge_delay < timeout
            ):
                return self._call_hedged(call, timeout, hedge_delay, tel)
        return self._call_with_timeout(call, timeout)

    def _call_with_timeout(self, call: Callable[[], _T], timeout: float | None) -> _T:
        if timeout is None:
            return call()
        executor = self._executor()
        future = executor.submit(call)
        try:
            return future.result(timeout)
        except _FutureTimeout:
            future.cancel()
            raise LLMTimeoutError(
                f"LLM call on {self.name!r} exceeded its {timeout:.3f}s budget"
            ) from None

    def _call_hedged(
        self,
        call: Callable[[], _T],
        timeout: float | None,
        hedge_delay: float,
        tel: Telemetry,
    ) -> _T:
        """Primary call, then a backup after ``hedge_delay``; first answer wins.

        The loser is cancelled if it never started, and ignored otherwise —
        deterministically: when both futures complete in the same wait batch
        the primary wins, so a fast backend never changes the result.
        """
        expires_at = None if timeout is None else time.monotonic() + timeout
        executor = self._executor()
        primary = executor.submit(call)
        try:
            return primary.result(hedge_delay)
        except _FutureTimeout:
            pass  # primary is slow: hedge it
        if tel.enabled:
            tel.count("llm_hedges_total", model=self.name)
        backup = executor.submit(call)
        pending = {primary, backup}
        last_error: BaseException | None = None
        while pending:
            remaining = (
                None if expires_at is None else expires_at - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                break
            done, pending = wait(
                pending, timeout=remaining, return_when=FIRST_COMPLETED
            )
            if not done:
                break  # overall timeout
            # Deterministic winner order: primary before backup.
            for future in sorted(done, key=lambda f: f is backup):
                error = future.exception()
                if error is not None:
                    last_error = error
                    continue
                if tel.enabled:
                    tel.count(
                        "llm_hedge_wins_total",
                        model=self.name,
                        winner="backup" if future is backup else "primary",
                    )
                for loser in pending:
                    loser.cancel()
                return future.result()
        if last_error is not None and not pending:
            raise last_error
        for future in pending:
            future.cancel()
        raise LLMTimeoutError(
            f"hedged LLM call on {self.name!r} exceeded its "
            f"{timeout if timeout is not None else float('inf'):.3f}s budget"
        ) from None

    def _executor(self) -> ThreadPoolExecutor:
        """Lazily-created worker pool for timed and hedged calls."""
        executor = getattr(self, "_timeout_executor", None)
        if executor is None:
            executor = ThreadPoolExecutor(
                max_workers=2, thread_name_prefix=f"{self.name}-llm-timeout"
            )
            self._timeout_executor = executor
        return executor

    @abc.abstractmethod
    def backtranslate(self, description: str, schema_text: str = "") -> str | None:
        """Regenerate SQL from an NL description (vanilla, no examples).

        Returns ``None`` when no SQL can be produced at all.
        """


@dataclass(frozen=True)
class ModelProfile:
    """Behavioural parameters of one simulated model.

    Attributes:
        name: Model identifier shown in task configuration.
        base_fidelity: Baseline probability that a query fact survives into a
            generated description when no context is provided.
        context_boost: Additional fidelity when relevant schema tables are in
            the prompt.
        example_boost: Additional fidelity (at full few-shot budget) from
            retrieved prior annotations.
        knowledge_boost: Maximum additional fidelity from injected domain
            knowledge (scaled by knowledge coverage of the query).
        complexity_sensitivity: How strongly query complexity erodes fidelity.
        backtranslation_skill: Entity-disambiguation skill used when acting as
            the backtranslation model.
    """

    name: str
    base_fidelity: float = 0.72
    context_boost: float = 0.14
    example_boost: float = 0.08
    knowledge_boost: float = 0.12
    complexity_sensitivity: float = 1.0
    backtranslation_skill: float = 0.8


#: Profiles for the models the paper's task-configuration step offers.
MODEL_PROFILES: dict[str, ModelProfile] = {
    "gpt-4o": ModelProfile(
        name="gpt-4o",
        base_fidelity=0.78,
        context_boost=0.16,
        example_boost=0.09,
        knowledge_boost=0.14,
        complexity_sensitivity=0.9,
        backtranslation_skill=0.9,
    ),
    "gpt-3.5-turbo": ModelProfile(
        name="gpt-3.5-turbo",
        base_fidelity=0.66,
        context_boost=0.13,
        example_boost=0.07,
        knowledge_boost=0.10,
        complexity_sensitivity=1.15,
        backtranslation_skill=0.7,
    ),
    "deepseek": ModelProfile(
        name="deepseek",
        base_fidelity=0.74,
        context_boost=0.15,
        example_boost=0.08,
        knowledge_boost=0.12,
        complexity_sensitivity=1.0,
        backtranslation_skill=0.85,
    ),
}


def get_profile(name: str) -> ModelProfile:
    """Look up a model profile, falling back to a generic mid-tier profile."""
    return MODEL_PROFILES.get(name.lower(), ModelProfile(name=name))
