"""Simulated user study: participants, conditions, runner, analysis."""

from repro.study.analysis import (
    AccuracyTable,
    BacktranslationFigure,
    CONDITION_ORDER,
    LatencyTable,
    accuracy_table,
    backtranslation_figure,
    latency_table,
    rouge_by_condition,
)
from repro.study.conditions import (
    BenchPressCondition,
    Condition,
    ConditionOutput,
    ConditionRunner,
    ManualCondition,
    VanillaLLMCondition,
    make_condition_runner,
)
from repro.study.participants import Expertise, Participant, make_participants
from repro.study.runner import StudyAnnotation, StudyResult, StudyRunner, assign_conditions

__all__ = [
    "AccuracyTable",
    "BacktranslationFigure",
    "BenchPressCondition",
    "CONDITION_ORDER",
    "Condition",
    "ConditionOutput",
    "ConditionRunner",
    "Expertise",
    "LatencyTable",
    "ManualCondition",
    "Participant",
    "StudyAnnotation",
    "StudyResult",
    "StudyRunner",
    "VanillaLLMCondition",
    "accuracy_table",
    "assign_conditions",
    "backtranslation_figure",
    "latency_table",
    "make_condition_runner",
    "make_participants",
    "rouge_by_condition",
]
