"""Between-subjects study runner (paper §5.1).

The runner reproduces the experimental design: 18 participants, stratified by
SQL expertise, assigned to exactly one condition via a balanced Latin-square
rotation within each stratum, all annotating the same 30 queries sampled from
the Beaver and Bird workloads, starting from a cold example store.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StudyError
from repro.study.conditions import Condition, ConditionOutput, make_condition_runner
from repro.study.participants import Expertise, Participant, make_participants
from repro.workloads.base import Workload, WorkloadQuery


@dataclass
class StudyAnnotation:
    """One (participant, query) annotation produced during the study."""

    participant_id: str
    expertise: str
    condition: Condition
    dataset: str
    query_id: str
    sql: str
    gold_nl: str
    nl: str
    latency_minutes: float
    fidelity: float


@dataclass
class StudyResult:
    """All annotations produced by one study run."""

    annotations: list[StudyAnnotation] = field(default_factory=list)
    participants: list[Participant] = field(default_factory=list)
    assignment: dict[str, Condition] = field(default_factory=dict)
    queries_per_dataset: dict[str, int] = field(default_factory=dict)

    def by_condition(self, condition: Condition) -> list[StudyAnnotation]:
        """Annotations of one condition."""
        return [a for a in self.annotations if a.condition is condition]

    def by_dataset(self, dataset: str) -> list[StudyAnnotation]:
        """Annotations over one dataset."""
        return [a for a in self.annotations if a.dataset.lower() == dataset.lower()]


def assign_conditions(participants: list[Participant]) -> dict[str, Condition]:
    """Balanced Latin-square assignment of participants to conditions.

    Within each expertise stratum, participants are rotated through the three
    conditions so every condition receives the same number of advanced and
    non-advanced users (counterbalancing).
    """
    conditions = [Condition.BENCHPRESS, Condition.MANUAL, Condition.VANILLA_LLM]
    assignment: dict[str, Condition] = {}
    for stratum in (Expertise.ADVANCED, Expertise.NON_ADVANCED):
        members = [p for p in participants if p.expertise is stratum]
        for offset, participant in enumerate(members):
            assignment[participant.participant_id] = conditions[offset % len(conditions)]
    return assignment


class StudyRunner:
    """Runs the full between-subjects study over two workloads."""

    def __init__(
        self,
        beaver: Workload,
        bird: Workload,
        participant_count: int = 18,
        queries_per_dataset: int = 15,
        model_name: str = "gpt-4o",
        seed: int = 0,
    ) -> None:
        if participant_count < 3:
            raise StudyError("the between-subjects design needs at least 3 participants")
        self.beaver = beaver
        self.bird = bird
        self.queries_per_dataset = queries_per_dataset
        self.model_name = model_name
        self.seed = seed
        self.participants = make_participants(participant_count, seed=seed)
        self.assignment = assign_conditions(self.participants)

    def _study_queries(self) -> list[tuple[Workload, WorkloadQuery]]:
        tasks: list[tuple[Workload, WorkloadQuery]] = []
        for workload in (self.beaver, self.bird):
            sampled = workload.sample_queries(self.queries_per_dataset, seed=self.seed)
            tasks.extend((workload, query) for query in sampled)
        if not tasks:
            raise StudyError("no study queries could be sampled from the workloads")
        return tasks

    def run(self) -> StudyResult:
        """Execute the study and return every produced annotation."""
        tasks = self._study_queries()
        result = StudyResult(
            participants=self.participants,
            assignment=dict(self.assignment),
            queries_per_dataset={
                self.beaver.name: min(self.queries_per_dataset, len(self.beaver.queries)),
                self.bird.name: min(self.queries_per_dataset, len(self.bird.queries)),
            },
        )

        for participant in self.participants:
            condition = self.assignment[participant.participant_id]
            # Fresh runners per participant: the paper's cold-start condition
            # (the example store starts empty for every session).
            runners = {
                self.beaver.name: make_condition_runner(
                    condition, self.beaver.schema, self.beaver.name, self.model_name
                ),
                self.bird.name: make_condition_runner(
                    condition, self.bird.schema, self.bird.name, self.model_name
                ),
            }
            for session_index, (workload, query) in enumerate(tasks):
                output: ConditionOutput = runners[workload.name].annotate(
                    query, participant, session_index
                )
                result.annotations.append(
                    StudyAnnotation(
                        participant_id=participant.participant_id,
                        expertise=participant.expertise.value,
                        condition=condition,
                        dataset=workload.name,
                        query_id=query.query_id,
                        sql=query.sql,
                        gold_nl=query.gold_nl,
                        nl=output.nl,
                        latency_minutes=output.latency_minutes,
                        fidelity=output.fidelity,
                    )
                )
        return result
