"""Aggregate analysis of a study run: Tables 3–4 and Figure 4.

* **Table 3** — annotation accuracy per condition and dataset (fraction of
  annotations whose key SQL components are clearly described).
* **Table 4** — average annotation latency per condition and dataset, in
  minutes per participant (summed over the queries of that dataset).
* **Figure 4** — distribution of backtranslation clarity levels (1–5) per
  condition: each NL annotation is round-tripped to SQL by a vanilla
  simulated LLM and graded on the paper's rubric against the gold query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean

from repro.llm.simulated import SimulatedLLM
from repro.metrics.annotation import judge_annotation
from repro.metrics.rubric import RubricJudgement, grade_backtranslation
from repro.metrics.textgen import rouge_l
from repro.study.conditions import Condition
from repro.study.runner import StudyAnnotation, StudyResult
from repro.workloads.base import Workload

#: Canonical condition order used in the paper's tables.
CONDITION_ORDER: tuple[Condition, ...] = (
    Condition.BENCHPRESS,
    Condition.VANILLA_LLM,
    Condition.MANUAL,
)


@dataclass
class AccuracyTable:
    """Table 3: accuracy per (dataset, condition) plus the overall row."""

    per_dataset: dict[str, dict[Condition, float]] = field(default_factory=dict)
    overall: dict[Condition, float] = field(default_factory=dict)


@dataclass
class LatencyTable:
    """Table 4: average minutes per participant per (dataset, condition)."""

    per_dataset: dict[str, dict[Condition, float]] = field(default_factory=dict)
    total: dict[Condition, float] = field(default_factory=dict)


@dataclass
class BacktranslationFigure:
    """Figure 4: clarity-level histogram per condition."""

    distribution: dict[Condition, dict[int, int]] = field(default_factory=dict)
    mean_level: dict[Condition, float] = field(default_factory=dict)
    judgements: dict[Condition, list[RubricJudgement]] = field(default_factory=dict)


def accuracy_table(result: StudyResult) -> AccuracyTable:
    """Compute Table 3 from a study result."""
    table = AccuracyTable()
    datasets = sorted({annotation.dataset for annotation in result.annotations})
    for dataset in datasets:
        table.per_dataset[dataset] = {}
        for condition in CONDITION_ORDER:
            annotations = [
                a
                for a in result.annotations
                if a.dataset == dataset and a.condition is condition
            ]
            table.per_dataset[dataset][condition] = _accuracy(annotations)
    for condition in CONDITION_ORDER:
        annotations = [a for a in result.annotations if a.condition is condition]
        table.overall[condition] = _accuracy(annotations)
    return table


def _accuracy(annotations: list[StudyAnnotation]) -> float:
    if not annotations:
        return 0.0
    accurate = sum(
        1 for a in annotations if judge_annotation(a.sql, a.nl).accurate
    )
    return accurate / len(annotations)


def rouge_by_condition(result: StudyResult) -> dict[Condition, float]:
    """Mean ROUGE-L F1 of annotations against the gold NL, per condition."""
    scores: dict[Condition, float] = {}
    for condition in CONDITION_ORDER:
        annotations = result.by_condition(condition)
        if not annotations:
            scores[condition] = 0.0
            continue
        scores[condition] = mean(
            rouge_l(a.nl, a.gold_nl).f1 for a in annotations if a.gold_nl
        )
    return scores


def latency_table(result: StudyResult) -> LatencyTable:
    """Compute Table 4: per-participant total minutes, averaged per condition."""
    table = LatencyTable()
    datasets = sorted({annotation.dataset for annotation in result.annotations})
    for dataset in datasets:
        table.per_dataset[dataset] = {}
        for condition in CONDITION_ORDER:
            table.per_dataset[dataset][condition] = _mean_participant_minutes(
                [a for a in result.annotations if a.dataset == dataset], condition
            )
    for condition in CONDITION_ORDER:
        table.total[condition] = sum(
            table.per_dataset[dataset].get(condition, 0.0) for dataset in datasets
        )
    return table


def _mean_participant_minutes(
    annotations: list[StudyAnnotation], condition: Condition
) -> float:
    per_participant: dict[str, float] = {}
    for annotation in annotations:
        if annotation.condition is not condition:
            continue
        per_participant.setdefault(annotation.participant_id, 0.0)
        per_participant[annotation.participant_id] += annotation.latency_minutes
    if not per_participant:
        return 0.0
    return mean(per_participant.values())


def backtranslation_figure(
    result: StudyResult,
    workloads: dict[str, Workload],
    model_name: str = "gpt-4o",
    max_per_condition: int | None = None,
) -> BacktranslationFigure:
    """Compute Figure 4: backtranslate each annotation and grade it.

    Args:
        result: The study result.
        workloads: Mapping from dataset name to its workload (for schema and
            database access).
        model_name: Vanilla model used for backtranslation.
        max_per_condition: Optional cap on graded annotations per condition
            (keeps benchmark runtime bounded); ``None`` grades everything.
    """
    figure = BacktranslationFigure()
    backtranslators = {
        name: SimulatedLLM(model_name, schema=workload.schema)
        for name, workload in workloads.items()
    }
    for condition in CONDITION_ORDER:
        annotations = result.by_condition(condition)
        if max_per_condition is not None:
            annotations = annotations[:max_per_condition]
        judgements: list[RubricJudgement] = []
        for annotation in annotations:
            workload = workloads.get(annotation.dataset)
            if workload is None:
                continue
            predicted_sql = backtranslators[annotation.dataset].backtranslate(annotation.nl)
            judgements.append(
                grade_backtranslation(workload.database, annotation.sql, predicted_sql)
            )
        histogram = {level: 0 for level in range(1, 6)}
        for judgement in judgements:
            histogram[judgement.level] += 1
        figure.distribution[condition] = histogram
        figure.mean_level[condition] = (
            mean(j.level for j in judgements) if judgements else 0.0
        )
        figure.judgements[condition] = judgements
    return figure
