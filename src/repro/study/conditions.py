"""The three experimental conditions of the user study (paper §5.1).

* **Group A — BenchPress**: schema information, example tables, logs, and four
  LLM-generated suggestions per query, with the feedback loop enabled.
* **Group B — Manual**: only schema files and logs; the participant writes the
  description from scratch.
* **Group C — Vanilla LLM**: a general-purpose LLM through its plain UI — no
  RAG, no schema grounding, no task-specific integration.

Each condition produces, for one (participant, query) pair, the final NL
description and the time it took.  The behavioural model is deliberately
simple and fully deterministic; its parameters are calibrated so the aggregate
latency and accuracy land in the ranges Tables 3–4 report.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum

from repro.core.config import TaskConfig
from repro.core.pipeline import AnnotationPipeline
from repro.llm.knowledge import KnowledgeBase
from repro.llm.prompts import PromptBuilder
from repro.llm.simulated import SimulatedLLM
from repro.llm.sql2nl import describe_query
from repro.schema.model import DatabaseSchema
from repro.sql.analyzer import analyze_query
from repro.workloads.base import WorkloadQuery


class Condition(Enum):
    """Study condition identifiers."""

    BENCHPRESS = "BenchPress"
    MANUAL = "Manual"
    VANILLA_LLM = "Vanilla LLM"


@dataclass
class ConditionOutput:
    """What one condition produced for one (participant, query) pair."""

    nl: str
    latency_minutes: float
    fidelity: float
    candidates: list[str]


def _stable_unit(*parts: object) -> float:
    digest = hashlib.blake2b("|".join(str(p) for p in parts).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little") / 2**64


def _complexity_tokens(sql: str) -> float:
    try:
        return float(analyze_query(sql).complexity.tokens)
    except Exception:
        return 40.0


def _domain_penalty(dataset: str, familiarity: float, assisted: bool) -> float:
    """Extra fidelity loss from enterprise-specific terminology.

    The penalty applies to the enterprise (Beaver) dataset and is largely
    neutralised when the tool surfaces schema usage and domain knowledge
    (the BenchPress condition).
    """
    if dataset.lower() != "beaver":
        return 0.0
    base = 0.12 * (1.0 - familiarity)
    if assisted:
        return base * 0.25
    return base


class ConditionRunner:
    """Base class: one instance per (condition, participant, dataset schema)."""

    condition: Condition

    def annotate(self, query: WorkloadQuery, participant, session_index: int) -> ConditionOutput:
        """Produce the final description and latency for one query."""
        raise NotImplementedError


class BenchPressCondition(ConditionRunner):
    """Group A: the full BenchPress pipeline plus annotator review."""

    condition = Condition.BENCHPRESS

    def __init__(self, schema: DatabaseSchema, dataset: str, model_name: str = "gpt-4o",
                 config: TaskConfig | None = None) -> None:
        self.dataset = dataset
        self.pipeline = AnnotationPipeline(
            schema=schema,
            config=config or TaskConfig(model_name=model_name),
            dataset_name=dataset,
        )

    def annotate(self, query: WorkloadQuery, participant, session_index: int) -> ConditionOutput:
        candidate_set = self.pipeline.generate_candidates(query.sql, query_id=query.query_id)
        prompt = candidate_set.prompt
        llm_fidelity = (
            self.pipeline.llm.effective_fidelity(prompt) if prompt is not None else 0.7
        )
        # Reviewing the four candidates lets the annotator repair most of the
        # remaining gaps; the repair strength follows their review skill.
        repair = participant.review_skill * 0.85
        fidelity = 1.0 - (1.0 - llm_fidelity) * (1.0 - repair)
        fidelity -= _domain_penalty(self.dataset, participant.domain_familiarity, assisted=True)
        # The growing example store helps after the cold start.
        if session_index > 3:
            fidelity += 0.02
        fidelity = min(1.0, max(0.1, fidelity))

        nl = describe_query(
            query.sql, fidelity=fidelity, seed=(participant.participant_id, query.query_id)
        )
        # Feed the accepted annotation back so retrieval improves over the session.
        self.pipeline.retriever.record_annotation(query.sql, nl, dataset=self.dataset)

        tokens = _complexity_tokens(query.sql)
        latency = (0.55 + 0.0050 * tokens) * participant.speed_factor
        latency *= 0.92 if participant.is_advanced else 1.08
        return ConditionOutput(
            nl=nl,
            latency_minutes=latency,
            fidelity=fidelity,
            candidates=candidate_set.candidates,
        )


class VanillaLLMCondition(ConditionRunner):
    """Group C: a general-purpose LLM without retrieval or schema grounding."""

    condition = Condition.VANILLA_LLM

    def __init__(self, schema: DatabaseSchema, dataset: str, model_name: str = "gpt-4o") -> None:
        self.dataset = dataset
        self._llm = SimulatedLLM(model_name, schema=schema)
        self._prompt_builder = PromptBuilder(num_candidates=1)

    def annotate(self, query: WorkloadQuery, participant, session_index: int) -> ConditionOutput:
        prompt = self._prompt_builder.build(query.sql, context=None, knowledge=None)
        llm_fidelity = self._llm.effective_fidelity(prompt)
        result = self._llm.generate(prompt)
        # Without schema/context in front of them the participant can only
        # partially verify the output against the raw SQL.
        repair = participant.review_skill * 0.40
        fidelity = 1.0 - (1.0 - llm_fidelity) * (1.0 - repair)
        fidelity -= _domain_penalty(self.dataset, participant.domain_familiarity, assisted=False)
        fidelity = min(1.0, max(0.1, fidelity))

        nl = describe_query(
            query.sql, fidelity=fidelity, seed=(participant.participant_id, query.query_id, "v")
        )
        tokens = _complexity_tokens(query.sql)
        # Copying the query into a chat UI and reading the answer has a higher
        # fixed cost than BenchPress but is largely complexity-insensitive.
        latency = (0.95 + 0.0012 * tokens) * participant.speed_factor
        latency *= 0.95 if participant.is_advanced else 1.05
        return ConditionOutput(
            nl=nl,
            latency_minutes=latency,
            fidelity=fidelity,
            candidates=result.candidates,
        )


class ManualCondition(ConditionRunner):
    """Group B: schema files and logs only, no LLM assistance."""

    condition = Condition.MANUAL

    def __init__(self, schema: DatabaseSchema, dataset: str) -> None:
        self.dataset = dataset
        self._knowledge = KnowledgeBase()

    def annotate(self, query: WorkloadQuery, participant, session_index: int) -> ConditionOutput:
        tokens = _complexity_tokens(query.sql)
        # Writing from scratch: completeness follows writing skill and drops
        # with query size; fatigue sets in late in the session.
        complexity_penalty = min(0.38, 0.0028 * tokens)
        fatigue = 0.02 if session_index >= 20 else 0.0
        fidelity = participant.writing_skill - complexity_penalty - fatigue
        fidelity -= _domain_penalty(self.dataset, participant.domain_familiarity, assisted=False)
        jitter = (_stable_unit(participant.participant_id, query.query_id, "m") - 0.5) * 0.06
        fidelity = min(1.0, max(0.1, fidelity + jitter))

        nl = describe_query(
            query.sql, fidelity=fidelity, seed=(participant.participant_id, query.query_id, "m")
        )
        latency = (4.3 + 0.025 * tokens) * participant.speed_factor
        latency *= 0.85 if participant.is_advanced else 1.15
        return ConditionOutput(nl=nl, latency_minutes=latency, fidelity=fidelity, candidates=[])


def make_condition_runner(
    condition: Condition, schema: DatabaseSchema, dataset: str, model_name: str = "gpt-4o",
    benchpress_config: TaskConfig | None = None,
) -> ConditionRunner:
    """Factory for condition runners."""
    if condition is Condition.BENCHPRESS:
        return BenchPressCondition(schema, dataset, model_name=model_name, config=benchpress_config)
    if condition is Condition.VANILLA_LLM:
        return VanillaLLMCondition(schema, dataset, model_name=model_name)
    return ManualCondition(schema, dataset)
