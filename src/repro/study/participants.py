"""Simulated study participants.

The paper's study uses 18 participants, stratified into *advanced* and
*non-advanced* SQL users by a pre-study questionnaire, and randomly assigns
them to one of three conditions within each stratum.  The simulated
participants capture the behavioural parameters that matter for the measured
outcomes: how completely they can describe a query unaided, how well they can
spot and repair gaps when reviewing LLM candidates, and how fast they work.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from enum import Enum


class Expertise(Enum):
    """SQL expertise stratum."""

    ADVANCED = "advanced"
    NON_ADVANCED = "non_advanced"


@dataclass(frozen=True)
class Participant:
    """One simulated study participant.

    Attributes:
        participant_id: Stable identifier (``P01`` ... ``P18``).
        expertise: Stratum from the pre-study questionnaire.
        writing_skill: Probability that the participant captures a given query
            fact when writing a description from scratch (before complexity
            penalties).
        review_skill: Ability to spot and repair omissions when reviewing
            LLM-generated candidates (0..1).
        speed_factor: Multiplier on per-query latency (1.0 = average speed).
        domain_familiarity: How much enterprise-specific terminology slows the
            participant down / causes misreadings (0 = none, 1 = expert).
    """

    participant_id: str
    expertise: Expertise
    writing_skill: float
    review_skill: float
    speed_factor: float
    domain_familiarity: float

    @property
    def is_advanced(self) -> bool:
        """Whether the participant is in the advanced stratum."""
        return self.expertise is Expertise.ADVANCED


def _stable_unit(*parts: object) -> float:
    digest = hashlib.blake2b("|".join(str(p) for p in parts).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "little") / 2**64


def make_participants(count: int = 18, seed: int = 0) -> list[Participant]:
    """Create a balanced panel of participants (half advanced, half not).

    Parameters are drawn deterministically from (seed, index) so the whole
    study is reproducible; individual differences stay within the ranges
    usability research reports for trained vs. casual SQL users.
    """
    participants: list[Participant] = []
    for index in range(count):
        advanced = index % 2 == 0
        expertise = Expertise.ADVANCED if advanced else Expertise.NON_ADVANCED
        base_writing = 0.80 if advanced else 0.62
        base_review = 0.88 if advanced else 0.70
        writing_jitter = (_stable_unit(seed, index, "w") - 0.5) * 0.10
        review_jitter = (_stable_unit(seed, index, "r") - 0.5) * 0.08
        speed = 0.85 + _stable_unit(seed, index, "s") * 0.4
        familiarity = (0.45 if advanced else 0.25) + _stable_unit(seed, index, "d") * 0.2
        participants.append(
            Participant(
                participant_id=f"P{index + 1:02d}",
                expertise=expertise,
                writing_skill=min(0.95, max(0.4, base_writing + writing_jitter)),
                review_skill=min(0.97, max(0.45, base_review + review_jitter)),
                speed_factor=speed,
                domain_familiarity=min(0.9, familiarity),
            )
        )
    return participants
