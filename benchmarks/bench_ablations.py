"""E7 — ablations of BenchPress's design choices (DESIGN.md §Key design decisions).

Measures the effect on prompt fidelity (the driver of candidate quality) of:

* retrieval-augmented generation (relevant tables + prior examples),
* accumulated domain knowledge injection,
* the number of generated candidates,

on enterprise (Beaver) queries.  Expected direction: each assistance feature
increases effective fidelity; more candidates increase the chance that at
least one candidate is complete.
"""

from repro.core import AnnotationPipeline, TaskConfig
from repro.llm import KnowledgeBase
from repro.metrics import judge_annotation
from repro.reporting import format_table


def _mean_fidelity(pipeline, queries):
    total = 0.0
    for query in queries:
        candidate_set = pipeline.generate_candidates(query.sql)
        total += pipeline.llm.effective_fidelity(candidate_set.prompt)
    return total / len(queries)


def _run_ablation(beaver_workload):
    queries = beaver_workload.queries[:8]
    schema = beaver_workload.schema

    configurations = {
        "full (RAG + knowledge)": TaskConfig(),
        "no RAG": TaskConfig(rag_enabled=False),
        "no knowledge feedback": TaskConfig(knowledge_feedback_enabled=False),
        "no assistance": TaskConfig(rag_enabled=False, knowledge_feedback_enabled=False),
    }

    fidelities = {}
    for label, config in configurations.items():
        pipeline = AnnotationPipeline(schema, config=config, dataset_name="Beaver")
        # Seed domain knowledge and a few prior annotations to emulate an
        # in-progress session (the feedback loop's accumulated state).
        if config.knowledge_feedback_enabled:
            for term, explanation in beaver_workload.spec.domain_terms.items():
                pipeline.feedback_loop.knowledge.add(term, explanation)
        if config.rag_enabled:
            for query in beaver_workload.queries[8:12]:
                pipeline.retriever.record_annotation(query.sql, query.gold_nl, dataset="Beaver")
        fidelities[label] = _mean_fidelity(pipeline, queries)

    # Candidate-count sweep: probability that the best of k candidates is accurate.
    candidate_rates = {}
    for k in (1, 2, 4):
        pipeline = AnnotationPipeline(
            schema, config=TaskConfig(num_candidates=k), dataset_name="Beaver"
        )
        accurate = 0
        for query in queries:
            candidate_set = pipeline.generate_candidates(query.sql)
            if any(judge_annotation(query.sql, c).accurate for c in candidate_set.candidates):
                accurate += 1
        candidate_rates[k] = accurate / len(queries)

    return fidelities, candidate_rates


def test_ablations(benchmark, beaver_workload):
    fidelities, candidate_rates = benchmark.pedantic(
        _run_ablation, args=(beaver_workload,), rounds=1, iterations=1
    )

    print()
    print(format_table(
        ["Configuration", "Mean prompt fidelity"],
        [[label, f"{value:.3f}"] for label, value in fidelities.items()],
        title="Ablation: assistance features (Beaver queries)",
    ))
    print(format_table(
        ["Candidates (k)", "Queries with >=1 accurate candidate"],
        [[str(k), f"{rate * 100:.0f}%"] for k, rate in candidate_rates.items()],
        title="Ablation: number of candidates",
    ))

    assert fidelities["full (RAG + knowledge)"] >= fidelities["no RAG"]
    assert fidelities["full (RAG + knowledge)"] >= fidelities["no assistance"]
    assert fidelities["no RAG"] >= fidelities["no assistance"] - 1e-9
    assert candidate_rates[4] >= candidate_rates[1]
