"""E3 / Table 2 — data-level complexity metrics across benchmarks.

Reproduces the paper's Table 2: columns/table, rows/table, tables/DB, schema
uniqueness, sparsity and data-type diversity, relative to Beaver (DW).
Expected shape: Beaver has the widest tables, the most tables per database,
the lowest column-name uniqueness and the highest sparsity; Bird has more rows
per table; the public benchmarks have no sparsity.
"""

from repro.metrics import build_table2, profile_databases
from repro.reporting import render_table2


def _compute(all_workloads):
    profiles = profile_databases(
        {name: workload.database for name, workload in all_workloads.items()}
    )
    rows = build_table2(profiles, "Beaver")
    return profiles, rows


def test_table2_data_complexity(benchmark, all_workloads):
    profiles, rows = benchmark.pedantic(_compute, args=(all_workloads,), rounds=1, iterations=1)

    print()
    print(render_table2("Beaver", profiles["Beaver"].as_dict(), rows))

    beaver = profiles["Beaver"]
    spider = profiles["Spider"]
    bird = profiles["Bird"]
    fiben = profiles["Fiben"]

    # Paper shape: Beaver's tables are the widest and its schema the largest.
    assert beaver.columns_per_table > spider.columns_per_table
    assert beaver.columns_per_table > bird.columns_per_table
    assert beaver.tables_per_db >= max(spider.tables_per_db, bird.tables_per_db)
    # Only the enterprise warehouse has meaningful sparsity.
    assert beaver.sparsity > 0.05
    assert spider.sparsity == 0.0 and bird.sparsity == 0.0 and fiben.sparsity == 0.0
    # Schema ambiguity: Beaver has the least unique column names.
    assert beaver.uniqueness < spider.uniqueness
    assert beaver.uniqueness < bird.uniqueness
    # Bird's tables hold more rows than Beaver's (paper: +328.9%).
    assert bird.rows_per_table > beaver.rows_per_table
