"""Telemetry overhead: instrumented multi-tenant drain vs the no-op baseline.

Four tenant projects — one per workload family (Spider, Bird, Fiben,
Beaver) — submit their queries to one :class:`AnnotationService` and drain
concurrently; every tenant's LLM client is wrapped in a ``SlowLLM`` so the
wall-clock is dominated by (injected) API latency, exactly like production
annotation runs.  The benchmark drains the same job mix twice per round:

* **baseline** — the default :data:`~repro.obs.NULL_TELEMETRY` no-op sink
  (one attribute read + one branch per instrumentation point);
* **instrumented** — a live :class:`~repro.obs.Telemetry` recording every
  counter, histogram, span and structured event the stack emits.

Rounds alternate which condition runs first so scheduler noise hits both
evenly; the reported numbers are the best (least-disturbed) round of each.
The run asserts the ``max_overhead_percent`` ceiling *and* that the
instrumented drain's results are bit-identical to the baseline's — telemetry
must observe, never perturb.

Set ``OBSERVABILITY_BENCH_PROFILE=smoke`` (or run ``python
benchmarks/bench_observability.py --smoke``) for the CI-sized run: fewer
queries, a shorter injected delay and a looser ceiling for noisy shared
runners.  Emits ``BENCH_observability.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import pytest

from repro.core import AnnotationService, TaskConfig
from repro.llm import SimulatedLLM
from repro.obs import Telemetry

# Running as a script (``python benchmarks/bench_observability.py``) puts only
# ``benchmarks/`` on sys.path; the repo root is needed for ``tests.faults``.
_REPO_ROOT = str(Path(__file__).resolve().parents[1])
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from tests.faults import SlowLLM

#: Benchmark profiles: workload size, injected latency, overhead ceiling.
PROFILES = {
    "full": {
        "queries_per_project": 16,
        "llm_delay_seconds": 0.05,
        "rounds": 3,
        "max_overhead_percent": 3.0,
    },
    "smoke": {
        "queries_per_project": 6,
        "llm_delay_seconds": 0.02,
        "rounds": 2,
        # Shared CI runners are noisy and the smoke drain is short, so the
        # ceiling is deliberately loose; the full profile enforces the real
        # <3% acceptance criterion.
        "max_overhead_percent": 15.0,
    },
}

PROFILE = os.environ.get("OBSERVABILITY_BENCH_PROFILE", "full")
PROJECT_WORKLOADS = ["Spider", "Bird", "Fiben", "Beaver"]
CONCURRENCY = len(PROJECT_WORKLOADS)
BATCH_SIZE = 8
#: Fraction of the paper's rows/table (matches benchmarks/conftest.py).
ROW_SCALE = 0.0015
SEED = 7


@pytest.fixture(scope="module")
def tenant_workloads():
    from repro.workloads import build_benchmark

    profile = PROFILES[PROFILE]
    return {
        name: build_benchmark(
            name,
            seed=SEED,
            row_scale=ROW_SCALE,
            query_count=profile["queries_per_project"],
        )
        for name in PROJECT_WORKLOADS
    }


def _fingerprint(completed):
    """Order-sensitive digest of one drain's full result list."""
    return [
        (
            item.job.project,
            item.job.job_id,
            item.job.query_id,
            None
            if item.record is None
            else (item.record.nl, item.record.accepted, tuple(item.record.candidates)),
            item.error,
        )
        for item in completed
    ]


def _drain_round(workloads, delay: float, telemetry: Telemetry | None):
    """Build a fresh 4-tenant service, submit everything, time one drain."""
    service = AnnotationService(max_concurrency=CONCURRENCY, telemetry=telemetry)
    for name, workload in workloads.items():
        service.register_project(
            name,
            workload.schema,
            config=TaskConfig(batch_size=BATCH_SIZE),
            llm=SlowLLM(SimulatedLLM("gpt-4o", schema=workload.schema), delay),
        )
    for name, workload in workloads.items():
        service.submit_many(workload.query_sql, project=name)
    started = time.perf_counter()
    completed = service.drain()
    elapsed = time.perf_counter() - started
    assert service.pending_count == 0
    assert service.stats.failed == 0
    return elapsed, _fingerprint(completed), telemetry


def test_observability_overhead_benchmark(benchmark, tenant_workloads):
    profile = PROFILES[PROFILE]
    rounds = profile["rounds"]
    delay = profile["llm_delay_seconds"]
    queries = sum(len(w.query_sql) for w in tenant_workloads.values())

    baseline_rounds: list[float] = []
    instrumented_rounds: list[float] = []
    baseline_result = instrumented_result = None
    last_telemetry: Telemetry | None = None
    for round_index in range(rounds):
        order = (False, True) if round_index % 2 == 0 else (True, False)
        for instrumented in order:
            telemetry = Telemetry() if instrumented else None
            elapsed, result, telemetry = _drain_round(
                tenant_workloads, delay, telemetry
            )
            if instrumented:
                instrumented_rounds.append(elapsed)
                instrumented_result = result
                last_telemetry = telemetry
            else:
                baseline_rounds.append(elapsed)
                baseline_result = result

    # Parity first: telemetry that changes any drained record, its order, or
    # any error string is a correctness bug, not an overhead question.
    assert instrumented_result == baseline_result
    parity = "bit-identical"

    baseline_elapsed = min(baseline_rounds)
    instrumented_elapsed = min(instrumented_rounds)
    overhead_percent = (instrumented_elapsed / baseline_elapsed - 1.0) * 100.0

    # What the instrumented run actually recorded (sanity + reporting).
    snapshot = last_telemetry.metrics_dict()
    series_count = sum(len(family["series"]) for family in snapshot.values())
    span_count = len(last_telemetry.tracer.finished_spans())
    assert "llm_requests_total" in snapshot
    assert "pipeline_wave_llm_seconds" in snapshot
    assert span_count > 0

    # One extra instrumented round under the harness so the shared benchmark
    # reporting stays comparable with the other bench_* files.
    benchmark.pedantic(
        lambda: _drain_round(tenant_workloads, delay, Telemetry()),
        rounds=1,
        iterations=1,
    )

    print()
    print(
        f"profile: {PROFILE}  projects: {len(tenant_workloads)}  jobs: {queries}"
        f"  llm delay: {delay * 1000:0.0f}ms  rounds: {rounds}"
    )
    print(
        f"drain:  baseline {baseline_elapsed:6.3f}s   "
        f"instrumented {instrumented_elapsed:6.3f}s   "
        f"overhead {overhead_percent:+0.2f}% "
        f"(ceiling {profile['max_overhead_percent']}%)"
    )
    print(
        f"recorded: {len(snapshot)} metric families, {series_count} series, "
        f"{span_count} spans"
    )
    print(f"parity: {parity}")

    report_path = Path(__file__).resolve().parents[1] / "BENCH_observability.json"
    report_path.write_text(
        json.dumps(
            {
                "benchmark": "observability",
                "profile": PROFILE,
                "projects": len(tenant_workloads),
                "jobs": queries,
                "llm_delay_seconds": delay,
                "rounds": rounds,
                "drain": {
                    "baseline_seconds": round(baseline_elapsed, 4),
                    "instrumented_seconds": round(instrumented_elapsed, 4),
                    "overhead_percent": round(overhead_percent, 3),
                    "max_overhead_percent": profile["max_overhead_percent"],
                    "concurrency": CONCURRENCY,
                },
                "recorded": {
                    "metric_families": len(snapshot),
                    "metric_series": series_count,
                    "spans": span_count,
                },
                "parity": parity,
            },
            indent=2,
        )
        + "\n"
    )

    assert overhead_percent <= profile["max_overhead_percent"], (
        f"telemetry overhead {overhead_percent:+0.2f}% on the drain; "
        f"{PROFILE} profile allows <= {profile['max_overhead_percent']}%"
    )


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        os.environ["OBSERVABILITY_BENCH_PROFILE"] = "smoke"
    sys.exit(pytest.main([__file__, "-q", "-s"]))
