"""Engine throughput — compiled closures + hash joins vs the interpreter.

Runs a join/aggregate-heavy workload (50+ queries over 1k+-row tables) through
both executor modes of the same database:

* ``interpreted``: the original per-row tree-walking evaluator with the
  original single-key-only equi hash join,
* ``compiled``: expression-to-closure compilation, multi-key hash joins and
  the statement/plan caches.

Both modes must produce bit-identical results (asserted query-for-query
before timing); the compiled path must then clear the ISSUE's >= 3x speedup
bar on the full profile.  Results are written to ``BENCH_engine.json`` at the
repo root in machine-readable form so CI can track regressions.

Set ``ENGINE_BENCH_PROFILE=smoke`` for the CI-sized run: smaller tables and a
relaxed speedup floor, same query shapes.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.engine import Database

#: Benchmark profiles: table sizes and the speedup the run must clear.
PROFILES = {
    "full": {"customers": 1000, "orders": 2000, "rates": 60, "min_speedup": 3.0},
    "smoke": {"customers": 150, "orders": 300, "rates": 24, "min_speedup": 1.2},
}

PROFILE = os.environ.get("ENGINE_BENCH_PROFILE", "full")
#: Timed passes over the whole query list per mode (caches stay warm).
REPEATS = 2
SEED = 13

STATUSES = ("open", "closed", "pending", "shipped")
SEGMENTS = ("enterprise", "smb", "consumer", "public")
ZONES = ("north", "south", "east", "west")


def build_database(profile: dict) -> Database:
    """Deterministically build the join/aggregate benchmark database."""
    rng = random.Random(SEED)
    database = Database("engine-bench")
    database.create_table(
        "regions", [("id", "INT"), ("name", "TEXT"), ("zone", "TEXT")], primary_key=["id"]
    )
    database.create_table(
        "customers",
        [("id", "INT"), ("region_id", "INT"), ("segment", "TEXT"), ("score", "REAL"),
         ("active", "BOOLEAN"), ("name", "TEXT")],
        primary_key=["id"],
    )
    database.create_table(
        "orders",
        [("id", "INT"), ("customer_id", "INT"), ("region_id", "INT"), ("status", "TEXT"),
         ("amount", "REAL"), ("quantity", "INT")],
        primary_key=["id"],
    )
    database.create_table(
        "rates",
        [("region_id", "INT"), ("status", "TEXT"), ("fee", "REAL")],
    )

    region_count = 40
    database.table("regions").insert_rows(
        [(i + 1, f"region_{i + 1}", ZONES[i % len(ZONES)]) for i in range(region_count)]
    )
    database.table("customers").insert_rows(
        [
            (
                i + 1,
                rng.randint(1, region_count),
                rng.choice(SEGMENTS),
                round(rng.uniform(0, 100), 2),
                rng.random() < 0.8,
                f"customer_{i + 1}",
            )
            for i in range(profile["customers"])
        ]
    )
    database.table("orders").insert_rows(
        [
            (
                i + 1,
                rng.randint(1, profile["customers"]),
                rng.randint(1, region_count) if rng.random() > 0.05 else None,
                rng.choice(STATUSES),
                round(rng.uniform(1, 5000), 2),
                rng.randint(1, 20),
            )
            for i in range(profile["orders"])
        ]
    )
    database.table("rates").insert_rows(
        [
            (rng.randint(1, region_count), rng.choice(STATUSES), round(rng.uniform(0.5, 9.5), 2))
            for _ in range(profile["rates"])
        ]
    )
    return database


def build_queries() -> list[str]:
    """50+ join/aggregate-heavy queries with varied literals."""
    queries: list[str] = []
    # scans with compiled-friendly predicates
    for threshold in (250, 750, 1500, 2500, 3500, 4500):
        queries.append(
            f"SELECT id, amount * 1.07 FROM orders WHERE amount > {threshold} "
            f"AND status IN ('open', 'shipped') ORDER BY amount DESC LIMIT 50"
        )
    for pattern in ("customer_1%", "customer_2%", "customer_3%"):
        queries.append(
            f"SELECT name, score FROM customers WHERE name LIKE '{pattern}' AND active = TRUE"
        )
    # single-key equi joins + aggregation
    for threshold in (250, 500, 1000, 1500, 2000, 3000, 4000):
        queries.append(
            "SELECT c.segment, COUNT(*), SUM(o.amount), AVG(o.quantity) "
            "FROM orders o JOIN customers c ON o.customer_id = c.id "
            f"WHERE o.amount > {threshold} GROUP BY c.segment "
            "HAVING COUNT(*) >= 1 ORDER BY 3 DESC"
        )
    for status in STATUSES:
        queries.append(
            "SELECT r.zone, COUNT(*), SUM(o.amount) "
            "FROM orders o JOIN regions r ON o.region_id = r.id "
            f"WHERE o.status = '{status}' GROUP BY r.zone ORDER BY 2 DESC"
        )
    # three-table join chains
    for segment in SEGMENTS:
        queries.append(
            "SELECT r.zone, COUNT(*), AVG(o.amount) "
            "FROM orders o JOIN customers c ON o.customer_id = c.id "
            "JOIN regions r ON c.region_id = r.id "
            f"WHERE c.segment = '{segment}' GROUP BY r.zone ORDER BY 3 DESC"
        )
    # multi-key hash joins (AND-of-equalities; interpreted mode nested-loops)
    for threshold in (100, 1000, 2500):
        queries.append(
            "SELECT o.id, t.fee, o.amount * t.fee / 100 "
            "FROM orders o JOIN rates t ON o.region_id = t.region_id AND o.status = t.status "
            f"WHERE o.amount > {threshold} ORDER BY 3 DESC LIMIT 25"
        )
    queries.append(
        "SELECT t.status, COUNT(*), SUM(o.amount * t.fee) "
        "FROM orders o JOIN rates t ON o.region_id = t.region_id AND o.status = t.status "
        "GROUP BY t.status ORDER BY 1"
    )
    # equality keys plus residual conjuncts
    queries.append(
        "SELECT COUNT(*) FROM orders o JOIN rates t "
        "ON o.region_id = t.region_id AND o.status = t.status AND o.amount > t.fee * 100"
    )
    # outer joins with equality keys plus a residual conjunct
    for threshold in (1000, 3000):
        queries.append(
            "SELECT t.status, COUNT(o.id) FROM rates t "
            "LEFT JOIN orders o ON o.region_id = t.region_id AND o.status = t.status "
            f"AND o.amount > {threshold} GROUP BY t.status ORDER BY 2 DESC, 1"
        )
    queries.append(
        "SELECT c.segment, COUNT(o.id) FROM customers c "
        "LEFT JOIN orders o ON o.customer_id = c.id "
        "GROUP BY c.segment ORDER BY 2 DESC, 1"
    )
    # grouping on expressions, CASE projections
    for divisor in (500, 1000):
        queries.append(
            f"SELECT CAST(amount / {divisor} AS INT) AS bucket, COUNT(*), AVG(quantity) "
            f"FROM orders GROUP BY CAST(amount / {divisor} AS INT) ORDER BY 1"
        )
    queries.append(
        "SELECT CASE WHEN amount > 2500 THEN 'big' WHEN amount > 500 THEN 'mid' ELSE 'small' END AS band, "
        "COUNT(*) FROM orders "
        "GROUP BY CASE WHEN amount > 2500 THEN 'big' WHEN amount > 500 THEN 'mid' ELSE 'small' END "
        "ORDER BY 2 DESC"
    )
    # subqueries (uncorrelated: cached; correlated scalar: per-row)
    queries.append(
        "SELECT id, amount FROM orders WHERE amount > (SELECT AVG(amount) FROM orders) "
        "ORDER BY amount DESC LIMIT 30"
    )
    queries.append(
        "SELECT name FROM customers WHERE id IN "
        "(SELECT customer_id FROM orders WHERE amount > 4000) ORDER BY name"
    )
    queries.append(
        "SELECT segment, COUNT(*) FROM customers WHERE score > "
        "(SELECT AVG(score) FROM customers) GROUP BY segment ORDER BY 2 DESC"
    )
    # set operations and DISTINCT
    queries.append(
        "SELECT DISTINCT status FROM orders UNION SELECT DISTINCT segment FROM customers ORDER BY 1"
    )
    queries.append("SELECT DISTINCT region_id FROM orders INTERSECT SELECT region_id FROM customers")
    # CTE over an aggregate
    queries.append(
        "WITH totals AS (SELECT customer_id, SUM(amount) AS total FROM orders GROUP BY customer_id) "
        "SELECT COUNT(*), AVG(total) FROM totals"
    )
    # USING join
    queries.append(
        "SELECT COUNT(*) FROM orders JOIN customers USING (region_id)"
    )
    # BETWEEN / IS NULL / arithmetic ordering
    for low, high in ((100, 900), (500, 1500), (1000, 2000), (1500, 3000), (2000, 4000), (2500, 4900)):
        queries.append(
            f"SELECT id, quantity FROM orders WHERE amount BETWEEN {low} AND {high} "
            "AND region_id IS NOT NULL ORDER BY quantity * amount DESC LIMIT 20"
        )
    queries.append("SELECT COUNT(*) FROM orders WHERE region_id IS NULL")
    # per-status scan + expression ordering variations
    for status in STATUSES:
        queries.append(
            f"SELECT id, amount - quantity * 2 FROM orders WHERE status = '{status}' "
            "ORDER BY 2 DESC LIMIT 15"
        )
    return queries


def assert_bit_identical(database: Database, queries: list[str]) -> None:
    """Every query must return identical results (values and types) in both modes."""
    for sql in queries:
        database.executor_mode = "compiled"
        compiled = database.execute(sql)
        database.executor_mode = "interpreted"
        interpreted = database.execute(sql)
        assert compiled.columns == interpreted.columns, sql
        assert compiled.rows == interpreted.rows, sql
        for compiled_row, interpreted_row in zip(compiled.rows, interpreted.rows):
            assert [type(v) for v in compiled_row] == [type(v) for v in interpreted_row], sql


def timed_pass(database: Database, queries: list[str], mode: str, repeats: int) -> float:
    database.executor_mode = mode
    started = time.perf_counter()
    for _ in range(repeats):
        for sql in queries:
            database.execute(sql)
    return time.perf_counter() - started


def emit_report(path: Path, payload: dict) -> None:
    path.write_text(json.dumps(payload, indent=2) + "\n")


def test_engine_throughput_compiled_beats_interpreter(benchmark):
    profile = PROFILES[PROFILE]
    database = build_database(profile)
    queries = build_queries()
    assert len(queries) >= 50
    assert len(database.table("orders")) >= (1000 if PROFILE == "full" else 100)

    # Correctness first: the speedup claim is only meaningful if both modes
    # agree bit-for-bit.  This pass also warms the statement/plan caches so
    # the timed passes measure steady-state execution.
    assert_bit_identical(database, queries)

    interpreted_elapsed = timed_pass(database, queries, "interpreted", REPEATS)
    compiled_elapsed = timed_pass(database, queries, "compiled", REPEATS)
    # One extra compiled pass under the harness so the shared benchmark
    # reporting stays comparable with the other bench_* files.
    benchmark.pedantic(
        timed_pass, args=(database, queries, "compiled", 1), rounds=1, iterations=1
    )

    executions = len(queries) * REPEATS
    interpreted_qps = executions / interpreted_elapsed
    compiled_qps = executions / compiled_elapsed
    speedup = interpreted_elapsed / compiled_elapsed

    print()
    print(f"profile: {PROFILE}  queries: {len(queries)}  repeats: {REPEATS}")
    print(
        f"rows: orders={len(database.table('orders'))} "
        f"customers={len(database.table('customers'))} rates={len(database.table('rates'))}"
    )
    print(f"interpreted: {interpreted_elapsed:7.3f}s  {interpreted_qps:8.1f} q/s")
    print(f"compiled:    {compiled_elapsed:7.3f}s  {compiled_qps:8.1f} q/s")
    print(f"speedup:     {speedup:0.2f}x (floor {profile['min_speedup']}x)")

    emit_report(
        Path(__file__).resolve().parents[1] / "BENCH_engine.json",
        {
            "benchmark": "engine_throughput",
            "profile": PROFILE,
            "queries": len(queries),
            "repeats": REPEATS,
            "table_rows": {
                name: len(database.table(name))
                for name in ("regions", "customers", "orders", "rates")
            },
            "interpreted": {
                "seconds": round(interpreted_elapsed, 4),
                "ops_per_sec": round(interpreted_qps, 2),
            },
            "compiled": {
                "seconds": round(compiled_elapsed, 4),
                "ops_per_sec": round(compiled_qps, 2),
            },
            "speedup_vs_interpreter": round(speedup, 3),
            "min_speedup": profile["min_speedup"],
        },
    )

    assert speedup >= profile["min_speedup"], (
        f"compiled path {speedup:0.2f}x vs interpreter; "
        f"{PROFILE} profile requires >= {profile['min_speedup']}x"
    )
