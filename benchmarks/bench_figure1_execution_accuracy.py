"""E1 / Figure 1 — execution accuracy of text-to-SQL models across benchmarks.

Reproduces the motivating figure: simulated models that are near-saturated on
the public benchmarks (Spider, Bird, Fiben) collapse on the enterprise
benchmark (Beaver).  Absolute numbers differ from the paper (different models,
synthetic workloads); the shape — public high, enterprise dramatically lower —
is the reproduced claim.
"""

from repro.evaluation import run_figure1
from repro.reporting import render_figure1

#: Queries evaluated per (model, benchmark) pair; raise for tighter estimates.
MAX_QUERIES = 12


def _compute(all_workloads):
    return run_figure1(all_workloads, max_queries=MAX_QUERIES)


def test_figure1_execution_accuracy(benchmark, all_workloads):
    result = benchmark.pedantic(_compute, args=(all_workloads,), rounds=1, iterations=1)

    series = {
        model: result.series(model)
        for model in ("GPT-4o", "Llama3.1-70B-lt", "Llama3.1-8B-lt")
    }
    for bench_name, best in result.best_models.items():
        series.setdefault(best, {}).update(result.series(best))

    print()
    print(render_figure1(series, best_models=result.best_models))

    # Shape assertions: every general model drops sharply on Beaver.
    for model in ("GPT-4o", "Llama3.1-70B-lt", "Llama3.1-8B-lt"):
        model_series = result.series(model)
        public_mean = (
            model_series["Spider"] + model_series["Bird"] + model_series["Fiben"]
        ) / 3
        assert model_series["Beaver"] < public_mean, f"{model} should drop on Beaver"
        assert result.enterprise_gap(model) > 0.2, f"{model} gap should exceed 20 points"

    # The strongest public result stays high while the best enterprise result is low.
    assert result.accuracy("miniSeek", "Spider") >= 0.7
    assert result.accuracy("contextModel", "Beaver") <= 0.5
