"""Concurrent multi-tenant drain throughput vs the sequential baseline.

Four tenant projects — one per workload family (Spider, Bird, Fiben,
Beaver) — submit their queries to one :class:`AnnotationService`; every
tenant's LLM client is wrapped in a ``SlowLLM`` that sleeps before each call,
modelling the real API latency that dominates annotation wall-clock.  The
benchmark drains the same job mix twice:

* **sequential** — the classic drain, one project at a time;
* **concurrent** — the round-based :class:`~repro.core.scheduler.WaveScheduler`
  overlapping the four tenants' waves through a worker pool.

Because the injected latency is identical and per-project wave sequences are
preserved, the speedup measures exactly what the scheduler buys.  The run
asserts the ≥``min_speedup`` floor *and* that the concurrent drain's results
are bit-identical to the sequential drain's (the parity half of the
acceptance criteria).

Set ``CONCURRENCY_BENCH_PROFILE=smoke`` (or run ``python
benchmarks/bench_concurrency.py --smoke``) for the CI-sized run: fewer
queries, a shorter injected delay and a looser floor for noisy shared
runners.  Timings take the best of ``rounds`` paired runs.  Emits
``BENCH_concurrency.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path

import pytest

from repro.core import AnnotationService, TaskConfig
from repro.llm import SimulatedLLM

# Running as a script (``python benchmarks/bench_concurrency.py``) puts only
# ``benchmarks/`` on sys.path; the repo root is needed for ``tests.faults``.
_REPO_ROOT = str(Path(__file__).resolve().parents[1])
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from tests.faults import SlowLLM

#: Benchmark profiles: workload size, injected latency, and the speedup floor.
PROFILES = {
    "full": {
        "queries_per_project": 24,
        "llm_delay_seconds": 0.1,
        "rounds": 3,
        "min_speedup": 2.5,
    },
    "smoke": {
        "queries_per_project": 8,
        "llm_delay_seconds": 0.02,
        "rounds": 2,
        "min_speedup": 1.8,
    },
}

PROFILE = os.environ.get("CONCURRENCY_BENCH_PROFILE", "full")
#: One tenant per workload family; 4 projects is the acceptance-criteria point.
PROJECT_WORKLOADS = ["Spider", "Bird", "Fiben", "Beaver"]
CONCURRENCY = len(PROJECT_WORKLOADS)
BATCH_SIZE = 8
#: Fraction of the paper's rows/table (matches benchmarks/conftest.py).
ROW_SCALE = 0.0015
SEED = 7


@pytest.fixture(scope="module")
def tenant_workloads():
    from repro.workloads import build_benchmark

    profile = PROFILES[PROFILE]
    return {
        name: build_benchmark(
            name,
            seed=SEED,
            row_scale=ROW_SCALE,
            query_count=profile["queries_per_project"],
        )
        for name in PROJECT_WORKLOADS
    }


def _fingerprint(completed):
    """Order-sensitive digest of one drain's full result list."""
    return [
        (
            item.job.project,
            item.job.job_id,
            item.job.query_id,
            None
            if item.record is None
            else (item.record.nl, item.record.accepted, tuple(item.record.candidates)),
            item.error,
        )
        for item in completed
    ]


def _drain_round(workloads, delay: float, concurrency: int):
    """Build a fresh 4-tenant service, submit everything, time one drain."""
    service = AnnotationService(max_concurrency=concurrency)
    for name, workload in workloads.items():
        service.register_project(
            name,
            workload.schema,
            config=TaskConfig(batch_size=BATCH_SIZE),
            llm=SlowLLM(SimulatedLLM("gpt-4o", schema=workload.schema), delay),
        )
    for name, workload in workloads.items():
        service.submit_many(workload.query_sql, project=name)
    started = time.perf_counter()
    completed = service.drain()
    elapsed = time.perf_counter() - started
    assert service.pending_count == 0
    assert service.stats.failed == 0
    return elapsed, _fingerprint(completed)


def test_concurrency_benchmark(benchmark, tenant_workloads):
    profile = PROFILES[PROFILE]
    rounds = profile["rounds"]
    delay = profile["llm_delay_seconds"]
    queries = sum(len(w.query_sql) for w in tenant_workloads.values())

    # Each round times both conditions back-to-back (alternating which goes
    # first) so scheduling noise hits them evenly; the reported numbers are
    # the best (least-disturbed) round of each condition.
    sequential_rounds: list[float] = []
    concurrent_rounds: list[float] = []
    sequential_result = concurrent_result = None
    for round_index in range(rounds):
        order = (1, CONCURRENCY) if round_index % 2 == 0 else (CONCURRENCY, 1)
        for concurrency in order:
            elapsed, result = _drain_round(tenant_workloads, delay, concurrency)
            if concurrency == 1:
                sequential_rounds.append(elapsed)
                sequential_result = result
            else:
                concurrent_rounds.append(elapsed)
                concurrent_result = result

    # Parity first: speed means nothing if the answers changed.  The full
    # completed-job stream — per-project order, job ids, records, errors —
    # must be identical between the two drain modes.
    assert concurrent_result == sequential_result
    parity = "bit-identical"

    sequential_elapsed = min(sequential_rounds)
    concurrent_elapsed = min(concurrent_rounds)
    speedup = sequential_elapsed / concurrent_elapsed

    # One extra concurrent round under the harness so the shared benchmark
    # reporting stays comparable with the other bench_* files.
    benchmark.pedantic(
        lambda: _drain_round(tenant_workloads, delay, CONCURRENCY),
        rounds=1,
        iterations=1,
    )

    print()
    print(
        f"profile: {PROFILE}  projects: {len(tenant_workloads)}  jobs: {queries}"
        f"  llm delay: {delay * 1000:0.0f}ms  rounds: {rounds}"
    )
    print(
        f"drain:  sequential {sequential_elapsed:6.3f}s   "
        f"concurrent(x{CONCURRENCY}) {concurrent_elapsed:6.3f}s   "
        f"speedup {speedup:0.2f}x (floor {profile['min_speedup']}x)"
    )
    print(f"parity: {parity}")

    report_path = Path(__file__).resolve().parents[1] / "BENCH_concurrency.json"
    report_path.write_text(
        json.dumps(
            {
                "benchmark": "concurrency",
                "profile": PROFILE,
                "projects": len(tenant_workloads),
                "jobs": queries,
                "llm_delay_seconds": delay,
                "rounds": rounds,
                "drain": {
                    "sequential_seconds": round(sequential_elapsed, 4),
                    "concurrent_seconds": round(concurrent_elapsed, 4),
                    "concurrency": CONCURRENCY,
                    "speedup": round(speedup, 3),
                    "min_speedup": profile["min_speedup"],
                },
                "parity": parity,
            },
            indent=2,
        )
        + "\n"
    )

    assert speedup >= profile["min_speedup"], (
        f"concurrent drain {speedup:0.2f}x vs sequential; "
        f"{PROFILE} profile requires >= {profile['min_speedup']}x"
    )


if __name__ == "__main__":
    import sys

    if "--smoke" in sys.argv:
        os.environ["CONCURRENCY_BENCH_PROFILE"] = "smoke"
    sys.exit(pytest.main([__file__, "-q", "-s"]))
