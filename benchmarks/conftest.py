"""Shared fixtures for the benchmark harnesses.

The workloads are generated once per session at a reduced (but shared) scale so
every harness finishes in seconds while preserving the relative differences
between benchmarks.  Increase ``ROW_SCALE`` / ``QUERY_COUNT`` for a
higher-fidelity run (the shapes do not change, only the statistical noise).
"""

from __future__ import annotations

import pytest

from repro.workloads import build_benchmark

#: Fraction of the paper's rows/table used by the benchmark harnesses.
ROW_SCALE = 0.0015
#: Queries generated per workload.
QUERY_COUNT = 20
#: Seed shared by every harness so numbers are reproducible run-to-run.
SEED = 7


@pytest.fixture(scope="session")
def spider_workload():
    return build_benchmark("Spider", seed=SEED, row_scale=ROW_SCALE, query_count=QUERY_COUNT)


@pytest.fixture(scope="session")
def bird_workload():
    return build_benchmark("Bird", seed=SEED, row_scale=ROW_SCALE, query_count=QUERY_COUNT)


@pytest.fixture(scope="session")
def fiben_workload():
    return build_benchmark("Fiben", seed=SEED, row_scale=ROW_SCALE, query_count=QUERY_COUNT)


@pytest.fixture(scope="session")
def beaver_workload():
    return build_benchmark("Beaver", seed=SEED, row_scale=ROW_SCALE, query_count=QUERY_COUNT)


@pytest.fixture(scope="session")
def all_workloads(spider_workload, bird_workload, fiben_workload, beaver_workload):
    return {
        "Spider": spider_workload,
        "Bird": bird_workload,
        "Fiben": fiben_workload,
        "Beaver": beaver_workload,
    }
