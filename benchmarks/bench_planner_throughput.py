"""Planner throughput — cost-based join reordering vs the plain compiled path.

Runs a join-heavy workload whose queries are deliberately written in the
*worst* textual join order (biggest table first, selective predicates on the
last-named small tables) through two executor modes of the same database:

* ``compiled``: expression-to-closure compilation with hash joins executed in
  textual order, WHERE applied after the full join product,
* ``planned``: the same compiled machinery behind the cost-based source
  planner — single-table predicates pushed below the joins, join order chosen
  smallest-estimated-input-first from the stats catalog.

All three modes (including ``interpreted``) must produce bit-identical
results query-for-query before timing; the planned path must then clear the
ISSUE's >= 1.2x speedup bar over compiled on the full profile.  Results are
written to ``BENCH_planner.json`` at the repo root in machine-readable form
so CI can track regressions.

Set ``PLANNER_BENCH_PROFILE=smoke`` for the CI-sized run: smaller tables and
a relaxed speedup floor, same query shapes.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from repro.engine import Database

#: Benchmark profiles: table sizes and the speedup the run must clear.
PROFILES = {
    "full": {
        "lineitems": 6000, "orders": 1500, "customers": 200, "min_speedup": 1.2,
    },
    "smoke": {
        "lineitems": 900, "orders": 250, "customers": 60, "min_speedup": 1.2,
    },
}

PROFILE = os.environ.get("PLANNER_BENCH_PROFILE", "full")
#: Timed passes over the whole query list per mode (caches stay warm).
REPEATS = 3
SEED = 29

TIERS = ("gold", "silver", "bronze", "basic")
COMMON_STATUSES = ("open", "closed", "shipped")
RARE_STATUSES = ("returned", "cancelled")
ZONES = ("north", "south", "east", "west")
REGION_COUNT = 12


def build_database(profile: dict) -> Database:
    """Deterministically build the join-order benchmark database."""
    rng = random.Random(SEED)
    database = Database("planner-bench")
    database.create_table(
        "regions", [("id", "INT"), ("name", "TEXT"), ("zone", "TEXT")], primary_key=["id"]
    )
    database.create_table(
        "customers",
        [("id", "INT"), ("region_id", "INT"), ("name", "TEXT"), ("tier", "TEXT")],
        primary_key=["id"],
    )
    database.create_table(
        "orders",
        [("id", "INT"), ("customer_id", "INT"), ("status", "TEXT"), ("total", "REAL")],
        primary_key=["id"],
    )
    database.create_table(
        "lineitems",
        [("order_id", "INT"), ("product", "TEXT"), ("qty", "INT"), ("price", "REAL")],
    )

    database.table("regions").insert_rows(
        [(i + 1, f"region_{i + 1}", ZONES[i % len(ZONES)]) for i in range(REGION_COUNT)]
    )
    database.table("customers").insert_rows(
        [
            (
                i + 1,
                rng.randint(1, REGION_COUNT),
                f"customer_{i + 1}",
                "gold" if i % 20 == 0 else rng.choice(TIERS[1:]),
            )
            for i in range(profile["customers"])
        ]
    )
    database.table("orders").insert_rows(
        [
            (
                i + 1,
                rng.randint(1, profile["customers"]),
                RARE_STATUSES[i % 2] if i % 25 == 0 else rng.choice(COMMON_STATUSES),
                round(rng.uniform(10, 2000), 2),
            )
            for i in range(profile["orders"])
        ]
    )
    database.table("lineitems").insert_rows(
        [
            (
                rng.randint(1, profile["orders"]),
                f"prod_{rng.randint(1, 40)}",
                rng.randint(1, 12),
                round(rng.uniform(1, 250), 2),
            )
            for i in range(profile["lineitems"])
        ]
    )
    return database


def build_queries() -> list[str]:
    """Join chains written biggest-table-first with selective late predicates."""
    queries: list[str] = []
    # Three-table chains: the only selective predicate sits on the smallest,
    # last-named table, so the textual order joins the full big tables first.
    for region in range(1, 9):
        queries.append(
            "SELECT COUNT(*), SUM(l.qty) FROM lineitems l "
            "JOIN orders o ON l.order_id = o.id "
            "JOIN customers c ON o.customer_id = c.id "
            f"WHERE c.tier = 'gold' AND c.region_id = {region}"
        )
    # Point lookups on the small table (estimated ~1 row after pushdown).
    for name_id in (5, 50, 95, 140, 185):
        queries.append(
            "SELECT o.id, l.product, l.qty FROM lineitems l "
            "JOIN orders o ON l.order_id = o.id "
            "JOIN customers c ON o.customer_id = c.id "
            f"WHERE c.name = 'customer_{name_id}' ORDER BY o.id, l.product, l.qty LIMIT 40"
        )
    # Selective predicates on *two* late tables (orders and customers).
    for status in RARE_STATUSES:
        for tier in ("gold", "silver"):
            queries.append(
                "SELECT c.name, COUNT(*), SUM(l.qty * l.price) FROM lineitems l "
                "JOIN orders o ON l.order_id = o.id "
                "JOIN customers c ON o.customer_id = c.id "
                f"WHERE o.status = '{status}' AND c.tier = '{tier}' "
                "GROUP BY c.name ORDER BY 2 DESC, c.name LIMIT 10"
            )
    # Four-table chains ending at the tiny regions table.
    for zone in ZONES:
        queries.append(
            "SELECT r.name, COUNT(*), AVG(l.price) FROM lineitems l "
            "JOIN orders o ON l.order_id = o.id "
            "JOIN customers c ON o.customer_id = c.id "
            "JOIN regions r ON c.region_id = r.id "
            f"WHERE r.zone = '{zone}' AND c.tier IN ('gold', 'silver') "
            "GROUP BY r.name ORDER BY 2 DESC, r.name"
        )
    # Already-optimal textual order: the planner should keep the identity
    # order (fast path, no reassembly) and stay on par with compiled.
    for tier in TIERS:
        queries.append(
            "SELECT COUNT(*) FROM customers c "
            "JOIN orders o ON o.customer_id = c.id "
            "JOIN lineitems l ON l.order_id = o.id "
            f"WHERE c.tier = '{tier}'"
        )
    return queries


def assert_bit_identical(database: Database, queries: list[str]) -> None:
    """Every query must return identical results (values and types) in all modes."""
    for sql in queries:
        database.executor_mode = "interpreted"
        reference = database.execute(sql)
        for mode in ("compiled", "planned"):
            database.executor_mode = mode
            result = database.execute(sql)
            assert result.columns == reference.columns, sql
            assert result.rows == reference.rows, f"[{mode}] {sql}"
            for result_row, reference_row in zip(result.rows, reference.rows):
                assert [type(v) for v in result_row] == [
                    type(v) for v in reference_row
                ], f"[{mode}] {sql}"


def timed_pass(database: Database, queries: list[str], mode: str, repeats: int) -> float:
    database.executor_mode = mode
    started = time.perf_counter()
    for _ in range(repeats):
        for sql in queries:
            database.execute(sql)
    return time.perf_counter() - started


def emit_report(path: Path, payload: dict) -> None:
    path.write_text(json.dumps(payload, indent=2) + "\n")


def test_planner_throughput_planned_beats_compiled(benchmark):
    profile = PROFILES[PROFILE]
    database = build_database(profile)
    queries = build_queries()
    assert len(queries) >= 25

    # Correctness first: the speedup claim is only meaningful if all three
    # modes agree bit-for-bit.  This pass also warms the statement, plan and
    # stats caches so the timed passes measure steady-state execution.
    assert_bit_identical(database, queries)

    compiled_elapsed = timed_pass(database, queries, "compiled", REPEATS)
    planned_elapsed = timed_pass(database, queries, "planned", REPEATS)
    # One extra planned pass under the harness so the shared benchmark
    # reporting stays comparable with the other bench_* files.
    benchmark.pedantic(
        timed_pass, args=(database, queries, "planned", 1), rounds=1, iterations=1
    )

    planner = database._executor.planner
    executions = len(queries) * REPEATS
    compiled_qps = executions / compiled_elapsed
    planned_qps = executions / planned_elapsed
    speedup = compiled_elapsed / planned_elapsed

    print()
    print(f"profile: {PROFILE}  queries: {len(queries)}  repeats: {REPEATS}")
    print(
        f"rows: lineitems={len(database.table('lineitems'))} "
        f"orders={len(database.table('orders'))} "
        f"customers={len(database.table('customers'))}"
    )
    print(f"compiled: {compiled_elapsed:7.3f}s  {compiled_qps:8.1f} q/s")
    print(f"planned:  {planned_elapsed:7.3f}s  {planned_qps:8.1f} q/s")
    print(
        f"speedup:  {speedup:0.2f}x (floor {profile['min_speedup']}x)  "
        f"plans built: {planner.plans_built}  cache hits: {planner.cache_hits}"
    )

    emit_report(
        Path(__file__).resolve().parents[1] / "BENCH_planner.json",
        {
            "benchmark": "planner_throughput",
            "profile": PROFILE,
            "queries": len(queries),
            "repeats": REPEATS,
            "table_rows": {
                name: len(database.table(name))
                for name in ("regions", "customers", "orders", "lineitems")
            },
            "compiled": {
                "seconds": round(compiled_elapsed, 4),
                "ops_per_sec": round(compiled_qps, 2),
            },
            "planned": {
                "seconds": round(planned_elapsed, 4),
                "ops_per_sec": round(planned_qps, 2),
            },
            "speedup_vs_compiled": round(speedup, 3),
            "min_speedup": profile["min_speedup"],
            "plans_built": planner.plans_built,
            "plan_cache_hits": planner.cache_hits,
        },
    )

    assert speedup >= profile["min_speedup"], (
        f"planned path {speedup:0.2f}x vs compiled; "
        f"{PROFILE} profile requires >= {profile['min_speedup']}x"
    )
