"""E4 / Table 3 — annotation accuracy by condition (BenchPress / Vanilla LLM / Manual).

Runs the simulated between-subjects user study on the Beaver and Bird
workloads and reports annotation accuracy per condition and dataset.
Expected shape: BenchPress >= Vanilla LLM >= Manual overall, with the gap
concentrated on the enterprise (Beaver) dataset and Bird near-saturated.
"""

import pytest

from repro.reporting import render_table3
from repro.study import Condition, StudyRunner, accuracy_table

PARTICIPANTS = 9
QUERIES_PER_DATASET = 5
SEED = 7


@pytest.fixture(scope="module")
def study_result(beaver_workload, bird_workload):
    runner = StudyRunner(
        beaver_workload,
        bird_workload,
        participant_count=PARTICIPANTS,
        queries_per_dataset=QUERIES_PER_DATASET,
        seed=SEED,
    )
    return runner.run()


def test_table3_annotation_accuracy(benchmark, study_result):
    table = benchmark.pedantic(accuracy_table, args=(study_result,), rounds=1, iterations=1)

    print()
    print(render_table3(table))

    overall = table.overall
    assert overall[Condition.BENCHPRESS] >= overall[Condition.VANILLA_LLM]
    assert overall[Condition.BENCHPRESS] >= overall[Condition.MANUAL]
    assert overall[Condition.BENCHPRESS] > 0.6

    # The enterprise dataset is where unassisted conditions struggle most.
    beaver = table.per_dataset["Beaver"]
    bird = table.per_dataset["Bird"]
    assert beaver[Condition.BENCHPRESS] >= beaver[Condition.MANUAL]
    assert bird[Condition.MANUAL] >= beaver[Condition.MANUAL]
