"""Annotation throughput — sequential loop vs batched wave scheduler.

Measures queries/sec over a 200-query generated workload for

* the *sequential* baseline: one :meth:`AnnotationPipeline.annotate` call per
  query (exactly what ``annotate_many`` was before the batched refactor), and
* the *batched* path: one :meth:`AnnotationPipeline.annotate_many` call
  running the wave scheduler (vectorized retrieval, one LLM round trip per
  wave, per-query commits with staleness validation).

Both paths produce bit-identical annotation records (enforced here and in
``tests/test_batching.py``); the batched path must win on wall-clock time and
use far fewer LLM round trips.  Timings take the best of ``ROUNDS``
interleaved runs to shrug off machine noise.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.core import AnnotationPipeline, TaskConfig
from repro.workloads import build_benchmark

#: Queries in the throughput workload (the ISSUE's 200-query target).
QUERY_COUNT = 200
#: Wave size for the batched condition.
BATCH_SIZE = 25
#: Fraction of the paper's rows/table (matches benchmarks/conftest.py).
ROW_SCALE = 0.0015
SEED = 7
#: Timed repetitions per condition; best-of is reported.
ROUNDS = 2


@pytest.fixture(scope="module")
def throughput_workload():
    return build_benchmark(
        "Spider", seed=SEED, row_scale=ROW_SCALE, query_count=QUERY_COUNT
    )


def _sequential_run(workload):
    pipeline = AnnotationPipeline(
        workload.schema, config=TaskConfig(), dataset_name="Spider"
    )
    records = [pipeline.annotate(sql) for sql in workload.query_sql]
    return pipeline, records


def _batched_run(workload):
    pipeline = AnnotationPipeline(
        workload.schema, config=TaskConfig(batch_size=BATCH_SIZE), dataset_name="Spider"
    )
    records = pipeline.annotate_many(workload.query_sql)
    return pipeline, records


def _best_of(runner, workload, rounds: int):
    best_elapsed = float("inf")
    result = None
    for _ in range(rounds):
        started = time.perf_counter()
        outcome = runner(workload)
        elapsed = time.perf_counter() - started
        if elapsed < best_elapsed:
            best_elapsed = elapsed
            result = outcome
    return best_elapsed, result


def test_pipeline_throughput_batched_beats_sequential(benchmark, throughput_workload):
    sequential_elapsed, (_, sequential_records) = _best_of(
        _sequential_run, throughput_workload, ROUNDS
    )
    batched_elapsed, (batched_pipeline, batched_records) = _best_of(
        _batched_run, throughput_workload, ROUNDS
    )
    # One extra batched run under the harness so the shared benchmark
    # reporting stays comparable with the other bench_* files.
    benchmark.pedantic(_batched_run, args=(throughput_workload,), rounds=1, iterations=1)

    queries = len(throughput_workload.query_sql)
    stats = batched_pipeline.last_run_stats
    usage = batched_pipeline.llm.usage
    print()
    print(f"sequential: {sequential_elapsed:6.3f}s  {queries / sequential_elapsed:7.1f} q/s")
    print(f"batched:    {batched_elapsed:6.3f}s  {queries / batched_elapsed:7.1f} q/s")
    print(f"speedup:    {sequential_elapsed / batched_elapsed:0.2f}x")
    print(
        f"waves: {stats.waves}  batched: {stats.batched_queries}"
        f"  regenerated: {stats.regenerated_queries}"
        f"  llm round trips: {stats.llm_requests} (vs {queries}+ sequential)"
    )
    print(f"mean prompts per llm request: {usage.mean_batch_size:0.1f}")

    # Machine-readable report for CI trend tracking.
    report_path = Path(__file__).resolve().parents[1] / "BENCH_pipeline.json"
    report_path.write_text(
        json.dumps(
            {
                "benchmark": "pipeline_throughput",
                "queries": queries,
                "batch_size": BATCH_SIZE,
                "sequential": {
                    "seconds": round(sequential_elapsed, 4),
                    "ops_per_sec": round(queries / sequential_elapsed, 2),
                },
                "batched": {
                    "seconds": round(batched_elapsed, 4),
                    "ops_per_sec": round(queries / batched_elapsed, 2),
                },
                "speedup_vs_sequential": round(sequential_elapsed / batched_elapsed, 3),
                "waves": stats.waves,
                "llm_round_trips": stats.llm_requests,
                "mean_prompts_per_request": round(usage.mean_batch_size, 2),
            },
            indent=2,
        )
        + "\n"
    )

    # The two paths must agree annotation-for-annotation.
    assert [
        (record.query_id, record.nl, record.accepted) for record in sequential_records
    ] == [(record.query_id, record.nl, record.accepted) for record in batched_records]

    # Batching must amortise LLM round trips dramatically...
    assert stats.llm_requests < queries / 4
    # ...and win on wall-clock throughput.
    assert batched_elapsed < sequential_elapsed
