"""E6 / Figure 4 — backtranslation clarity levels per condition.

Each study annotation is round-tripped back to SQL by a vanilla simulated LLM
and graded on the paper's 5-level rubric against the gold query.  Expected
shape: BenchPress yields the largest share of Level-5 (fully correct) round
trips and the highest mean clarity level; Manual and Vanilla LLM shift mass to
the lower levels.
"""

import pytest

from repro.reporting import render_figure4
from repro.study import Condition, StudyRunner, backtranslation_figure

PARTICIPANTS = 9
QUERIES_PER_DATASET = 4
MAX_PER_CONDITION = 24
SEED = 7


@pytest.fixture(scope="module")
def study_result(beaver_workload, bird_workload):
    runner = StudyRunner(
        beaver_workload,
        bird_workload,
        participant_count=PARTICIPANTS,
        queries_per_dataset=QUERIES_PER_DATASET,
        seed=SEED,
    )
    return runner.run()


def test_figure4_backtranslation_clarity(benchmark, study_result, all_workloads):
    figure = benchmark.pedantic(
        backtranslation_figure,
        args=(study_result, all_workloads),
        kwargs={"max_per_condition": MAX_PER_CONDITION},
        rounds=1,
        iterations=1,
    )

    print()
    print(render_figure4(figure))

    benchpress = figure.distribution[Condition.BENCHPRESS]
    manual = figure.distribution[Condition.MANUAL]
    vanilla = figure.distribution[Condition.VANILLA_LLM]

    def share(histogram, level):
        total = sum(histogram.values())
        return histogram[level] / total if total else 0.0

    # BenchPress produces the largest share of fully correct (Level 5) round trips.
    assert share(benchpress, 5) >= share(manual, 5)
    assert share(benchpress, 5) >= share(vanilla, 5)
    # And the highest mean clarity level.
    assert figure.mean_level[Condition.BENCHPRESS] >= figure.mean_level[Condition.MANUAL]
    assert figure.mean_level[Condition.BENCHPRESS] >= figure.mean_level[Condition.VANILLA_LLM]
