"""E5 / Table 4 — average annotation latency per condition.

Same study run as the Table 3 harness; reports per-participant annotation time
(minutes) per dataset and condition.  Expected shape: Manual is by far the
slowest condition (several times BenchPress), Vanilla LLM is slightly slower
than BenchPress, and enterprise (Beaver) queries take longer than Bird queries
under every condition.
"""

import pytest

from repro.reporting import render_table4
from repro.study import Condition, StudyRunner, latency_table

PARTICIPANTS = 9
QUERIES_PER_DATASET = 5
SEED = 7


@pytest.fixture(scope="module")
def study_result(beaver_workload, bird_workload):
    runner = StudyRunner(
        beaver_workload,
        bird_workload,
        participant_count=PARTICIPANTS,
        queries_per_dataset=QUERIES_PER_DATASET,
        seed=SEED,
    )
    return runner.run()


def test_table4_annotation_latency(benchmark, study_result):
    table = benchmark.pedantic(latency_table, args=(study_result,), rounds=1, iterations=1)

    print()
    print(render_table4(table))

    total = table.total
    # Manual annotation is dramatically slower than both assisted conditions.
    assert total[Condition.MANUAL] > 2.5 * total[Condition.BENCHPRESS]
    assert total[Condition.MANUAL] > 2.5 * total[Condition.VANILLA_LLM]
    # BenchPress is the fastest condition overall.
    assert total[Condition.BENCHPRESS] <= total[Condition.VANILLA_LLM] * 1.15

    # Enterprise queries are slower to annotate than Bird queries when working manually.
    beaver = table.per_dataset["Beaver"]
    bird = table.per_dataset["Bird"]
    assert beaver[Condition.MANUAL] > bird[Condition.MANUAL]
