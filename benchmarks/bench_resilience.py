"""Resilience benchmark: goodput, hedged tail latency and deadline fidelity.

Three measurements, one per degradation mechanism this repo ships:

* **Goodput under failures** — an LLM backend whose transient failures come
  in seeded Markov bursts (~30% of calls fail overall, matching real outages
  where errors are correlated, not i.i.d.).  The *retry-only* arm burns deep
  exponential backoff per job and quarantines whatever exhausts it; the
  *breaker+defer* arm fast-fails through an open circuit breaker, defers the
  batch, probes on a short recovery clock and loses nothing.  Goodput is
  completed annotations per second; the breaker arm must keep ≥
  ``min_goodput_ratio`` times the retry-only arm's.
* **Hedged tail latency** — a backend with injected heavy-tail stalls.
  Hedged calls fire a backup after a fixed delay and take the first answer;
  the p99 call latency must drop by ≥ ``min_p99_cut`` versus unhedged.
* **Deadline fidelity** — ``drain(deadline=...)`` against a slow backend
  must stop within ``max_overshoot`` of the budget, defer the remainder
  intact, and complete it on the next unconstrained drain.

Set ``RESILIENCE_BENCH_PROFILE=smoke`` (or run ``python
benchmarks/bench_resilience.py --smoke``) for the CI-sized run.  Emits
``BENCH_resilience.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import random
import sys
import time
from pathlib import Path

import pytest

from repro.core import AnnotationService, TaskConfig
from repro.errors import TransientLLMError
from repro.llm import HedgePolicy, RetryPolicy, SimulatedLLM
from repro.llm.base import LLMClient
from repro.llm.prompts import Prompt

# Running as a script (``python benchmarks/bench_resilience.py``) puts only
# ``benchmarks/`` on sys.path; the repo root is needed for ``tests.faults``.
_REPO_ROOT = str(Path(__file__).resolve().parents[1])
if _REPO_ROOT not in sys.path:
    sys.path.insert(0, _REPO_ROOT)

from tests.faults import SlowLLM

PROFILES = {
    "full": {
        "goodput_jobs": 60,
        "failure_latency_seconds": 0.03,
        "min_goodput_ratio": 2.0,
        "hedge_calls": 200,
        "stall_seconds": 0.25,
        "hedge_delay_seconds": 0.03,
        "min_p99_cut": 0.30,
        "deadline_jobs": 40,
        "deadline_budget_seconds": 0.5,
        "deadline_llm_delay_seconds": 0.03,
        "max_overshoot": 0.05,
    },
    "smoke": {
        "goodput_jobs": 24,
        "failure_latency_seconds": 0.01,
        "min_goodput_ratio": 1.5,
        "hedge_calls": 60,
        "stall_seconds": 0.08,
        "hedge_delay_seconds": 0.02,
        "min_p99_cut": 0.30,
        "deadline_jobs": 24,
        "deadline_budget_seconds": 0.25,
        "deadline_llm_delay_seconds": 0.025,
        "max_overshoot": 0.10,
    },
}

PROFILE = os.environ.get("RESILIENCE_BENCH_PROFILE", "full")
ROW_SCALE = 0.0015
SEED = 7
BATCH_SIZE = 4


@pytest.fixture(scope="module")
def workload():
    from repro.workloads import build_benchmark

    profile = PROFILES[PROFILE]
    count = max(profile["goodput_jobs"], profile["deadline_jobs"])
    return build_benchmark("Spider", seed=SEED, row_scale=ROW_SCALE, query_count=count)


# ----------------------------------------------------------------------
# fault-injecting backends
# ----------------------------------------------------------------------

class MarkovOutageLLM(LLMClient):
    """Backend whose failures arrive in seeded bursts.

    A two-state Markov chain over calls: after a failure the next call fails
    with ``p_fail_after_fail`` (bursts persist); after a success it fails
    with ``p_fail_after_ok`` (bursts are rare).  The stationary failure rate
    is ~30% with the defaults.  Failed calls cost ``failure_latency`` —
    a real failed request burns a connection/timeout, it is never free —
    which is exactly the cost an open breaker refuses to keep paying.
    """

    def __init__(
        self,
        inner: LLMClient,
        seed: int,
        p_fail_after_fail: float = 0.9,
        p_fail_after_ok: float = 0.045,
        failure_latency: float = 0.03,
    ) -> None:
        self.inner = inner
        self.name = inner.name
        self.rng = random.Random(seed)
        self.p_fail_after_fail = p_fail_after_fail
        self.p_fail_after_ok = p_fail_after_ok
        self.failure_latency = failure_latency
        self.last_failed = False
        self.calls = 0
        self.failures = 0

    @property
    def example_content_sensitive(self) -> bool:  # type: ignore[override]
        return self.inner.example_content_sensitive

    def _maybe_fail(self) -> None:
        self.calls += 1
        threshold = self.p_fail_after_fail if self.last_failed else self.p_fail_after_ok
        if self.rng.random() < threshold:
            self.last_failed = True
            self.failures += 1
            time.sleep(self.failure_latency)
            raise TransientLLMError(f"injected burst failure #{self.failures}")
        self.last_failed = False

    def generate(self, prompt: Prompt):
        self._maybe_fail()
        return self.inner.generate(prompt)

    def generate_batch(self, prompts: list[Prompt]):
        self._maybe_fail()
        return self.inner.generate_batch(prompts)

    def backtranslate(self, description: str, schema_text: str = "") -> str | None:
        return self.inner.backtranslate(description, schema_text)


class HeavyTailLLM(LLMClient):
    """Backend where every ``stall_every``-th call stalls — the hedging target.

    The schedule is deterministic (10% of calls with the default) so the
    benchmark is reproducible; a hedged backup lands on the call index right
    after its stalled primary and therefore never stalls with it, which is
    the "independent replica" assumption hedging relies on in production.
    """

    def __init__(self, inner: LLMClient, stall_every: int, stall_seconds: float) -> None:
        self.inner = inner
        self.name = inner.name
        self.stall_every = stall_every
        self.stall_seconds = stall_seconds
        self.calls = 0
        self.stalls = 0

    @property
    def example_content_sensitive(self) -> bool:  # type: ignore[override]
        return self.inner.example_content_sensitive

    def _maybe_stall(self) -> None:
        self.calls += 1
        if self.calls % self.stall_every == 0:
            self.stalls += 1
            time.sleep(self.stall_seconds)

    def generate(self, prompt: Prompt):
        self._maybe_stall()
        return self.inner.generate(prompt)

    def generate_batch(self, prompts: list[Prompt]):
        self._maybe_stall()
        return self.inner.generate_batch(prompts)

    def backtranslate(self, description: str, schema_text: str = "") -> str | None:
        return self.inner.backtranslate(description, schema_text)


# ----------------------------------------------------------------------
# part A: goodput under burst failures
# ----------------------------------------------------------------------

def _goodput_arm(workload, profile, *, breaker: bool):
    """Submit the job mix against a bursty backend; drive drains to the end.

    Returns (completed, lost, elapsed, failure_rate).  Both arms face the
    same Markov fault process (same seed and parameters); only the coping
    strategy differs — deep retries + quarantine vs shallow retry + breaker
    deferral.
    """
    jobs = workload.query_sql[: profile["goodput_jobs"]]
    llm = MarkovOutageLLM(
        SimulatedLLM("gpt-4o", schema=workload.schema),
        seed=SEED,
        failure_latency=profile["failure_latency_seconds"],
    )
    if breaker:
        # window=4 @ 50% means two consecutive failures always trip the
        # breaker, so the third attempt of any burst-struck job hits an open
        # circuit and the job *defers* — quarantine is impossible here.  Zero
        # backoff: pacing is the breaker's recovery clock, not per-call sleeps
        # (a backoff longer than the recovery window would let the job's own
        # last attempt become the half-open probe and fail it terminally).
        config = TaskConfig(
            batch_size=BATCH_SIZE,
            llm_max_attempts=3,
            llm_retry_base_delay=0.0,
            llm_retry_jitter=0.0,
            breaker_enabled=True,
            breaker_window=4,
            breaker_failure_rate=0.5,
            breaker_min_calls=2,
            breaker_recovery_s=0.02,
        )
    else:
        config = TaskConfig(
            batch_size=BATCH_SIZE,
            llm_max_attempts=3,
            llm_retry_base_delay=0.1,
            llm_retry_jitter=0.0,
        )
    service = AnnotationService()
    service.register_project("bench", workload.schema, config=config, llm=llm)
    service.submit_many(jobs, project="bench")

    started = time.perf_counter()
    guard = 0
    while service.pending_count and guard < 500:
        guard += 1
        service.drain()
        report = service.last_drain_report
        if report is not None and report.deferred and service.pending_count:
            time.sleep(config.breaker_recovery_s + 0.005)
    elapsed = time.perf_counter() - started

    completed = sum(
        1 for record in service.pipeline("bench").annotations
    )
    lost = len(service.quarantine)
    failure_rate = llm.failures / llm.calls if llm.calls else 0.0
    assert service.pending_count == 0
    assert completed + lost == len(jobs)
    return completed, lost, elapsed, failure_rate


# ----------------------------------------------------------------------
# part B: hedged tail latency
# ----------------------------------------------------------------------

def _latency_samples(workload, profile, *, hedge: HedgePolicy | None):
    llm = HeavyTailLLM(
        SimulatedLLM("gpt-4o", schema=workload.schema),
        stall_every=10,
        stall_seconds=profile["stall_seconds"],
    )
    from repro.core.pipeline import AnnotationPipeline

    pipeline = AnnotationPipeline(
        schema=workload.schema, llm=llm, dataset_name="bench"
    )
    prompt = pipeline.generate_candidates(workload.query_sql[0]).prompt
    policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
    samples = []
    for _ in range(profile["hedge_calls"]):
        started = time.perf_counter()
        llm.generate_with_retry(prompt, policy, hedge=hedge)
        sample = time.perf_counter() - started
        samples.append(sample)
        if hedge is not None and sample > profile["hedge_delay_seconds"]:
            # A hedge fired: let the abandoned stalled primary finish so it
            # does not hold an executor worker into the next measured call
            # (latency is the metric here, not throughput).
            time.sleep(profile["stall_seconds"])
    return samples, llm


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


# ----------------------------------------------------------------------
# part C: deadline fidelity
# ----------------------------------------------------------------------

def _deadline_run(workload, profile):
    jobs = workload.query_sql[: profile["deadline_jobs"]]
    service = AnnotationService()
    service.register_project(
        "bench",
        workload.schema,
        config=TaskConfig(batch_size=2),
        llm=SlowLLM(
            SimulatedLLM("gpt-4o", schema=workload.schema),
            profile["deadline_llm_delay_seconds"],
        ),
    )
    service.submit_many(jobs, project="bench")
    budget = profile["deadline_budget_seconds"]
    started = time.perf_counter()
    completed = service.drain(deadline=budget)
    elapsed = time.perf_counter() - started
    report = service.last_drain_report
    assert report is not None and report.deadline_expired
    assert len(completed) + report.deferred == len(jobs)
    overshoot = max(0.0, elapsed - budget) / budget
    # The deferred remainder survives intact and completes unconstrained.
    service.drain()
    assert service.pending_count == 0
    assert len(service.pipeline("bench").annotations) == len(jobs)
    return len(completed), report.deferred, elapsed, overshoot


# ----------------------------------------------------------------------
# the benchmark
# ----------------------------------------------------------------------

def test_resilience_benchmark(benchmark, workload):
    profile = PROFILES[PROFILE]

    # Part A — goodput under burst failures.
    retry_completed, retry_lost, retry_elapsed, retry_rate = _goodput_arm(
        workload, profile, breaker=False
    )
    brk_completed, brk_lost, brk_elapsed, brk_rate = _goodput_arm(
        workload, profile, breaker=True
    )
    retry_goodput = retry_completed / retry_elapsed
    breaker_goodput = brk_completed / brk_elapsed
    goodput_ratio = breaker_goodput / retry_goodput

    # Part B — hedged tail latency.
    plain_samples, plain_llm = _latency_samples(workload, profile, hedge=None)
    hedged_samples, hedged_llm = _latency_samples(
        workload, profile, hedge=HedgePolicy(delay_s=profile["hedge_delay_seconds"])
    )
    plain_p99 = _percentile(plain_samples, 0.99)
    hedged_p99 = _percentile(hedged_samples, 0.99)
    p99_cut = 1.0 - hedged_p99 / plain_p99

    # Part C — deadline fidelity.
    dl_completed, dl_deferred, dl_elapsed, overshoot = _deadline_run(workload, profile)

    # One harness round (the cheap deadline run) so the shared benchmark
    # reporting stays comparable with the other bench_* files.
    benchmark.pedantic(
        lambda: _deadline_run(workload, profile), rounds=1, iterations=1
    )

    print()
    print(f"profile: {PROFILE}")
    print(
        f"goodput:  retry-only {retry_goodput:6.1f} jobs/s "
        f"({retry_completed} done, {retry_lost} lost, "
        f"{retry_rate * 100:0.0f}% calls failed)   "
        f"breaker+defer {breaker_goodput:6.1f} jobs/s "
        f"({brk_completed} done, {brk_lost} lost)   "
        f"ratio {goodput_ratio:0.2f}x (floor {profile['min_goodput_ratio']}x)"
    )
    print(
        f"hedging:  p99 {plain_p99 * 1000:6.1f}ms -> {hedged_p99 * 1000:6.1f}ms "
        f"({p99_cut * 100:0.0f}% cut, floor {profile['min_p99_cut'] * 100:0.0f}%; "
        f"{plain_llm.stalls}/{plain_llm.calls} stalls unhedged, "
        f"{hedged_llm.stalls}/{hedged_llm.calls} hedged)"
    )
    print(
        f"deadline: budget {profile['deadline_budget_seconds']:0.2f}s  "
        f"elapsed {dl_elapsed:0.3f}s  overshoot {overshoot * 100:0.1f}% "
        f"(cap {profile['max_overshoot'] * 100:0.0f}%)  "
        f"{dl_completed} done / {dl_deferred} deferred, all completed after"
    )

    report_path = Path(__file__).resolve().parents[1] / "BENCH_resilience.json"
    report_path.write_text(
        json.dumps(
            {
                "benchmark": "resilience",
                "profile": PROFILE,
                "goodput": {
                    "jobs": profile["goodput_jobs"],
                    "observed_failure_rate": round(retry_rate, 3),
                    "retry_only": {
                        "completed": retry_completed,
                        "lost": retry_lost,
                        "elapsed_seconds": round(retry_elapsed, 4),
                        "jobs_per_second": round(retry_goodput, 2),
                    },
                    "breaker_defer": {
                        "completed": brk_completed,
                        "lost": brk_lost,
                        "elapsed_seconds": round(brk_elapsed, 4),
                        "jobs_per_second": round(breaker_goodput, 2),
                    },
                    "ratio": round(goodput_ratio, 3),
                    "min_ratio": profile["min_goodput_ratio"],
                },
                "hedging": {
                    "calls": profile["hedge_calls"],
                    "stall_seconds": profile["stall_seconds"],
                    "p99_unhedged_seconds": round(plain_p99, 4),
                    "p99_hedged_seconds": round(hedged_p99, 4),
                    "p99_cut": round(p99_cut, 3),
                    "min_p99_cut": profile["min_p99_cut"],
                },
                "deadline": {
                    "jobs": profile["deadline_jobs"],
                    "budget_seconds": profile["deadline_budget_seconds"],
                    "elapsed_seconds": round(dl_elapsed, 4),
                    "completed": dl_completed,
                    "deferred": dl_deferred,
                    "overshoot": round(overshoot, 4),
                    "max_overshoot": profile["max_overshoot"],
                },
            },
            indent=2,
        )
        + "\n"
    )

    assert brk_lost == 0, "breaker+defer must not lose jobs to quarantine"
    assert goodput_ratio >= profile["min_goodput_ratio"], (
        f"breaker+defer goodput {goodput_ratio:0.2f}x retry-only; "
        f"{PROFILE} profile requires >= {profile['min_goodput_ratio']}x"
    )
    assert p99_cut >= profile["min_p99_cut"], (
        f"hedging cut p99 by {p99_cut * 100:0.0f}%; "
        f"{PROFILE} profile requires >= {profile['min_p99_cut'] * 100:0.0f}%"
    )
    assert overshoot <= profile["max_overshoot"], (
        f"deadline overshoot {overshoot * 100:0.1f}%; "
        f"{PROFILE} profile caps it at {profile['max_overshoot'] * 100:0.0f}%"
    )


if __name__ == "__main__":
    if "--smoke" in sys.argv:
        os.environ["RESILIENCE_BENCH_PROFILE"] = "smoke"
    sys.exit(pytest.main([__file__, "-q", "-s"]))
