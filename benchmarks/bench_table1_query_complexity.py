"""E2 / Table 1 — query-level complexity metrics across benchmarks.

Reproduces the paper's Table 1: average #keywords, #tokens, #tables, #columns,
#aggregations and #nestings per query, with every public benchmark expressed
relative to the Beaver (DW) baseline.  Expected shape: Beaver dominates every
dimension; Fiben is the closest public benchmark; Spider and Bird are far
simpler.
"""

from repro.metrics import build_table1, profile_query_set
from repro.reporting import render_table1


def _compute(all_workloads):
    profiles = {
        name: profile_query_set(name, workload.query_sql)
        for name, workload in all_workloads.items()
    }
    rows = build_table1(profiles, "Beaver")
    return profiles, rows


def test_table1_query_complexity(benchmark, all_workloads):
    profiles, rows = benchmark.pedantic(_compute, args=(all_workloads,), rounds=1, iterations=1)

    print()
    print(render_table1("Beaver", profiles["Beaver"].averages, rows))

    beaver = profiles["Beaver"].averages
    for public in ("Spider", "Bird"):
        metrics = profiles[public].averages
        # The paper reports Spider/Bird as strictly simpler than Beaver on every
        # Table 1 dimension.
        for key in ("keywords", "tokens", "tables", "columns", "aggregations", "nestings"):
            assert metrics[key] < beaver[key], f"{public} should be simpler on {key}"
    # Fiben sits between the simple public benchmarks and Beaver.
    assert profiles["Fiben"].averages["tokens"] > profiles["Spider"].averages["tokens"]
    assert profiles["Fiben"].averages["aggregations"] > profiles["Bird"].averages["aggregations"]
