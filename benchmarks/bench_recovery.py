"""Durability cost and recovery speed for the annotation service.

Three claims from the durability layer, measured on a generated Spider
workload:

* **Journaling is cheap.**  Draining with the event journal attached (atomic
  commit records + group-commit fsync at drain boundaries) stays within a few
  percent of a journal-less drain.
* **Recovery is exact.**  A service recovered from the journal — cold or warm
  — reaches the same semantic state as the process that wrote it.
* **Warm start wins.**  Recovering from the latest snapshot plus the journal
  suffix is at least ``min_warm_speedup`` times faster than replaying the
  whole journal, because snapshot restore skips candidate re-scoring and
  re-embedding.

Set ``RECOVERY_BENCH_PROFILE=smoke`` for the CI-sized run: a smaller
workload and a looser overhead ceiling (fixed per-drain costs loom larger
over fewer queries).  Timings take the best of ``rounds`` runs to shrug off
machine noise.  Emits ``BENCH_recovery.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core import AnnotationService, SnapshotManager, TaskConfig
from repro.core.journal import EventJournal
from repro.workloads import build_benchmark

#: Benchmark profiles: workload size and the floors/ceilings the run must clear.
PROFILES = {
    "full": {
        "queries": 120,
        "rounds": 7,
        "max_overhead": 0.05,
        "min_warm_speedup": 2.0,
    },
    "smoke": {
        "queries": 36,
        "rounds": 3,
        "max_overhead": 0.25,
        "min_warm_speedup": 1.5,
    },
}

PROFILE = os.environ.get("RECOVERY_BENCH_PROFILE", "full")
BATCH_SIZE = 25
#: Fraction of the paper's rows/table (matches benchmarks/conftest.py).
ROW_SCALE = 0.0015
SEED = 7
#: Snapshot after this fraction of the workload; warm start replays the rest.
#: With a periodic snapshot cadence the suffix past the newest snapshot is
#: short — this models one cadence interval of un-snapshotted work.
SNAPSHOT_FRACTION = 0.85


@pytest.fixture(scope="module")
def recovery_workload():
    profile = PROFILES[PROFILE]
    return build_benchmark(
        "Spider", seed=SEED, row_scale=ROW_SCALE, query_count=profile["queries"]
    )


#: submit+drain cycles timed together per round — a larger timed region
#: drowns per-drain scheduling noise without changing the workload mix.
DRAIN_CYCLES = 3


def _timed_drains(service, workload) -> float:
    started = time.perf_counter()
    for _ in range(DRAIN_CYCLES):
        service.submit_many(workload.query_sql)
        service.drain()
    return time.perf_counter() - started


def _drain_plain(workload) -> float:
    service = AnnotationService(default_project="Spider")
    service.register_project(
        "Spider", workload.schema, config=TaskConfig(batch_size=BATCH_SIZE)
    )
    return _timed_drains(service, workload)


def _drain_durable(workload, directory: Path) -> float:
    service = AnnotationService.open_durable(
        directory, default_project="Spider", fsync="batch"
    )
    service.register_project(
        "Spider", workload.schema, config=TaskConfig(batch_size=BATCH_SIZE)
    )
    elapsed = _timed_drains(service, workload)
    service.close()
    return elapsed


def _build_recovery_image(workload, directory: Path) -> dict:
    """One durable run with a snapshot part-way through; returns its state."""
    service = AnnotationService.open_durable(
        directory, default_project="Spider", fsync="batch"
    )
    service.register_project(
        "Spider", workload.schema, config=TaskConfig(batch_size=BATCH_SIZE)
    )
    cut = int(len(workload.query_sql) * SNAPSHOT_FRACTION)
    service.submit_many(workload.query_sql[:cut])
    service.drain()
    service.snapshot()
    service.submit_many(workload.query_sql[cut:])
    service.drain()
    state = service.capture_state(include_accounting=False)
    service.close()
    return state


def _best_of(runner, rounds: int):
    best = float("inf")
    result = None
    for _ in range(rounds):
        elapsed, outcome = runner()
        if elapsed < best:
            best, result = elapsed, outcome
    return best, result


def test_recovery_benchmark(benchmark, recovery_workload, tmp_path_factory):
    profile = PROFILES[PROFILE]
    rounds = profile["rounds"]
    queries = len(recovery_workload.query_sql)

    # --- journaling overhead -----------------------------------------
    # Each round times the two conditions back-to-back (alternating which
    # goes first) and yields one durable/plain ratio; the run reports the
    # best (smallest) ratio, timeit-style.  Scheduling noise and GC pauses
    # on a shared machine are strictly additive and dwarf the journaling
    # cost, so the least-disturbed paired round is the faithful estimate —
    # means or medians measure the machine, not the journal.
    plain_rounds: list[float] = []
    durable_rounds: list[float] = []
    for round_index in range(rounds):
        plain_first = round_index % 2 == 0
        for plain_turn in (plain_first, not plain_first):
            if plain_turn:
                plain_rounds.append(_drain_plain(recovery_workload))
            else:
                durable_rounds.append(
                    _drain_durable(
                        recovery_workload, tmp_path_factory.mktemp("durable")
                    )
                )
    ratios = [d / p for d, p in zip(durable_rounds, plain_rounds)]
    overhead = min(ratios) - 1.0
    plain_elapsed = min(plain_rounds)
    durable_elapsed = min(durable_rounds)

    # --- recovery: cold replay vs warm start -------------------------
    image_dir = tmp_path_factory.mktemp("image")
    live_state = _build_recovery_image(recovery_workload, image_dir)
    journal_path = image_dir / "journal.bin"
    snapshot_dir = image_dir / "snapshots"
    journal_records = EventJournal.read_events(journal_path)

    def cold_round():
        started = time.perf_counter()
        service = AnnotationService.recover(journal_path, default_project="Spider")
        elapsed = time.perf_counter() - started
        state = service.capture_state(include_accounting=False)
        service.close()
        return elapsed, state

    def warm_round():
        started = time.perf_counter()
        service = AnnotationService.recover(
            journal_path,
            snapshots=SnapshotManager(snapshot_dir),
            default_project="Spider",
        )
        elapsed = time.perf_counter() - started
        state = service.capture_state(include_accounting=False)
        service.close()
        return elapsed, state

    cold_elapsed, cold_state = _best_of(cold_round, rounds)
    warm_elapsed, warm_state = _best_of(warm_round, rounds)
    # One extra warm recovery under the harness so the shared benchmark
    # reporting stays comparable with the other bench_* files.
    benchmark.pedantic(warm_round, rounds=1, iterations=1)

    speedup = cold_elapsed / warm_elapsed

    print()
    print(
        f"profile: {PROFILE}  queries: {queries}  rounds: {rounds}"
        f"  drain cycles/round: {DRAIN_CYCLES}"
    )
    print(
        f"drain:    plain {plain_elapsed:6.3f}s   durable {durable_elapsed:6.3f}s"
        f"   overhead {overhead * 100:+0.2f}% (ceiling {profile['max_overhead'] * 100:0.0f}%)"
    )
    print(
        f"recover:  cold {cold_elapsed * 1000:7.1f}ms   warm {warm_elapsed * 1000:7.1f}ms"
        f"   speedup {speedup:0.2f}x (floor {profile['min_warm_speedup']}x)"
    )
    print(f"journal records: {len(journal_records)}")

    report_path = Path(__file__).resolve().parents[1] / "BENCH_recovery.json"
    report_path.write_text(
        json.dumps(
            {
                "benchmark": "recovery",
                "profile": PROFILE,
                "queries": queries,
                "rounds": rounds,
                "journal_records": len(journal_records),
                "drain": {
                    "cycles_per_round": DRAIN_CYCLES,
                    "plain_seconds": round(plain_elapsed, 4),
                    "durable_seconds": round(durable_elapsed, 4),
                    "journaling_overhead": round(overhead, 4),
                    "max_overhead": profile["max_overhead"],
                },
                "recovery": {
                    "cold_replay_seconds": round(cold_elapsed, 4),
                    "warm_start_seconds": round(warm_elapsed, 4),
                    "warm_speedup_vs_cold": round(speedup, 3),
                    "min_warm_speedup": profile["min_warm_speedup"],
                    "snapshot_fraction": SNAPSHOT_FRACTION,
                },
            },
            indent=2,
        )
        + "\n"
    )

    # Recovery is only worth timing if it is exact.
    assert cold_state == live_state
    assert warm_state == live_state

    assert overhead <= profile["max_overhead"], (
        f"journaling overhead {overhead * 100:0.2f}% exceeds the "
        f"{PROFILE} ceiling of {profile['max_overhead'] * 100:0.0f}%"
    )
    assert speedup >= profile["min_warm_speedup"], (
        f"warm start {speedup:0.2f}x vs cold replay; "
        f"{PROFILE} profile requires >= {profile['min_warm_speedup']}x"
    )
