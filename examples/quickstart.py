"""Quickstart: annotate a handful of enterprise SQL log queries with BenchPress.

Creates a workspace, loads the built-in Beaver-like enterprise benchmark,
runs the annotation loop (decomposition -> retrieval -> candidate generation ->
feedback), and exports the accepted annotations as a benchmark-ready JSON file.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from pathlib import Path

from repro.core import Feedback, FeedbackAction, Workspace, export_benchmark_json


def main() -> None:
    # 1. Project setup: the API key never leaves the client in the real system;
    #    here it is simply held in memory.
    workspace = Workspace("analyst", api_key="local-only-key")

    # 2. Dataset ingestion: pick one of the supported benchmarks
    #    (Spider, Bird, Fiben, Beaver) or upload your own schema + SQL log.
    project = workspace.create_project_from_benchmark(
        "enterprise-demo", "Beaver", query_count=8, seed=1
    )
    pipeline = project.pipeline
    print(f"Project ready: {len(project.pending_queries)} queries to annotate")
    print(f"Task configuration: {project.config.describe()}\n")

    # 3. Annotation loop: accept the model's top suggestion for the first
    #    queries, then demonstrate editing and knowledge injection.
    for sql in list(project.pending_queries)[:3]:
        record = pipeline.annotate(sql)
        print(f"[{record.query_id}] {record.nl}\n")

    sql = project.pending_queries[0]
    candidate_set = pipeline.generate_candidates(sql)
    print("Candidates for the next query:")
    for index, candidate in enumerate(candidate_set.candidates):
        print(f"  ({index}) {candidate}")

    feedback = Feedback(
        action=FeedbackAction.EDIT,
        edited_text=candidate_set.candidates[0],
        knowledge=[("Moira", "the mailing-list management system used for newsletters")],
        new_priorities=["always spell out filtering logic"],
    )
    record = pipeline.submit_feedback(candidate_set, feedback)
    print(f"\nAccepted after edit: {record.nl}")
    print(f"Knowledge base now holds {len(pipeline.feedback_loop.knowledge)} entries")
    print(f"Example store now holds {pipeline.example_count} annotations for retrieval")

    # 4. Review & export.
    output = Path("benchpress_export.json")
    export_benchmark_json(pipeline.annotations, output)
    print(f"\nExported {len(pipeline.accepted_annotations)} annotations to {output}")


if __name__ == "__main__":
    main()
