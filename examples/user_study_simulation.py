"""Reproduce the paper's user study (Tables 3-4, Figure 4) in one script.

Runs the simulated between-subjects study — 18 participants stratified by SQL
expertise, assigned to BenchPress / Manual / Vanilla-LLM conditions, all
annotating the same queries sampled from the Beaver and Bird workloads — and
prints annotation accuracy, latency, and backtranslation clarity.

Run with:  python examples/user_study_simulation.py
(use --small for a faster, smaller configuration)
"""

from __future__ import annotations

import argparse

from repro.reporting import render_figure4, render_table3, render_table4
from repro.study import StudyRunner, accuracy_table, backtranslation_figure, latency_table
from repro.workloads import build_benchmark


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--small", action="store_true", help="run a reduced configuration")
    args = parser.parse_args()

    participants = 9 if args.small else 18
    queries_per_dataset = 4 if args.small else 10
    row_scale = 0.001 if args.small else 0.0015
    query_count = max(queries_per_dataset + 2, 12)

    print("Building workloads...")
    beaver = build_benchmark("Beaver", seed=7, row_scale=row_scale, query_count=query_count)
    bird = build_benchmark("Bird", seed=7, row_scale=row_scale, query_count=query_count)

    print(f"Running study: {participants} participants, "
          f"{queries_per_dataset} queries per dataset, between-subjects design...\n")
    runner = StudyRunner(
        beaver, bird,
        participant_count=participants,
        queries_per_dataset=queries_per_dataset,
        seed=7,
    )
    result = runner.run()

    print(render_table3(accuracy_table(result)))
    print()
    print(render_table4(latency_table(result)))
    print()
    figure = backtranslation_figure(
        result, {"Beaver": beaver, "Bird": bird},
        max_per_condition=None if not args.small else 16,
    )
    print(render_figure4(figure))


if __name__ == "__main__":
    main()
