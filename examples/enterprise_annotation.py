"""Enterprise scenario: annotate your own SQL logs against your own schema.

Mirrors the paper's motivating workflow: an organisation has abundant SQL logs
but no natural-language annotations.  This example uploads a small warehouse
schema and a raw query log, runs the human-in-the-loop annotation pipeline
(including nested-query decomposition), and verifies round-trip fidelity with
the backtranslation rubric.

Run with:  python examples/enterprise_annotation.py
"""

from __future__ import annotations

from repro.core import Workspace
from repro.engine import Database
from repro.llm import SimulatedLLM
from repro.metrics import grade_backtranslation
from repro.schema import parse_ddl_script

SCHEMA_DDL = """
CREATE TABLE ACADEMIC_TERMS_ALL (TERM_KEY INT PRIMARY KEY, TERM_CODE VARCHAR(10),
    TERM_NAME VARCHAR(40), IS_CURRENT BOOLEAN, START_DATE DATE);
CREATE TABLE STUDENT_ENROLLMENT (ENROLLMENT_KEY INT PRIMARY KEY, MIT_ID INT,
    TERM_KEY INT REFERENCES ACADEMIC_TERMS_ALL (TERM_KEY), SUBJECT_CODE VARCHAR(12),
    UNITS INT, STATUS VARCHAR(10));
CREATE TABLE MOIRA_LIST (MOIRA_LIST_KEY INT PRIMARY KEY, MOIRA_LIST_NAME VARCHAR(40),
    DEPARTMENT VARCHAR(20), MEMBER_COUNT INT);
"""

SQL_LOG = """
SELECT TERM_NAME FROM ACADEMIC_TERMS_ALL WHERE IS_CURRENT = TRUE;
SELECT SUBJECT_CODE, COUNT(*) FROM STUDENT_ENROLLMENT WHERE STATUS = 'ENROLLED' GROUP BY SUBJECT_CODE;
SELECT MOIRA_LIST_NAME FROM MOIRA_LIST WHERE MOIRA_LIST_NAME LIKE 'B%' AND MEMBER_COUNT > 50;
SELECT COUNT(*) FROM STUDENT_ENROLLMENT WHERE TERM_KEY IN (SELECT TERM_KEY FROM ACADEMIC_TERMS_ALL WHERE IS_CURRENT = TRUE);
"""

SAMPLE_DATA = """
INSERT INTO ACADEMIC_TERMS_ALL VALUES (1, '2024FA', 'Fall 2024', FALSE, '2024-09-01'),
    (2, '2025JA', 'January term 2025', FALSE, '2025-01-06'), (3, '2025SP', 'Spring 2025', TRUE, '2025-02-03');
INSERT INTO STUDENT_ENROLLMENT VALUES (1, 901, 3, '6.1040', 12, 'ENROLLED'),
    (2, 902, 3, '6.5830', 12, 'ENROLLED'), (3, 901, 1, '18.06', 12, 'COMPLETED'),
    (4, 903, 3, '6.5830', 12, 'ENROLLED'), (5, 904, 2, '21L.001', 9, 'DROPPED');
INSERT INTO MOIRA_LIST VALUES (1, 'BENCHPRESS-DEV', 'EECS', 64), (2, 'BIO-SEMINAR', 'Biology', 40),
    (3, 'BADMINTON-CLUB', 'DAPER', 120);
"""


def main() -> None:
    schema = parse_ddl_script(SCHEMA_DDL, schema_name="mit_dw_sample")

    workspace = Workspace("dba")
    project = workspace.create_project_from_log("warehouse-logs", schema, SQL_LOG)
    pipeline = project.pipeline

    # Inject institutional knowledge up front (the feedback loop reuses it for
    # every later query).
    pipeline.feedback_loop.knowledge.add(
        "J-term", "the one-month January term in the MIT academic calendar"
    )
    pipeline.feedback_loop.knowledge.add("Moira", "the mailing-list management system")

    print(f"Ingested {len(project.dataset.valid_entries)} log statements\n")

    records = []
    for sql in list(project.pending_queries):
        record = pipeline.annotate(sql)
        records.append(record)
        decomposed = " (decomposed)" if record.was_decomposed else ""
        print(f"SQL{decomposed}: {sql}")
        print(f"  -> {record.nl}\n")

    # Verify annotation fidelity by round-tripping through a vanilla LLM and
    # executing both queries on a populated copy of the warehouse.
    database = Database("mit_dw_sample")
    database.execute_script(SCHEMA_DDL)
    database.execute_script(SAMPLE_DATA)
    backtranslator = SimulatedLLM("gpt-4o", schema=schema)

    print("Backtranslation fidelity (1 = invalid ... 5 = fully correct):")
    for record in records:
        predicted = backtranslator.backtranslate(record.nl)
        judgement = grade_backtranslation(database, record.sql, predicted)
        print(f"  level {judgement.level}  {record.query_id}")


if __name__ == "__main__":
    main()
